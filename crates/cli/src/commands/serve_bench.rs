//! `steady serve-bench` — load-test the query-serving engine and report
//! sustained throughput, latency percentiles, cache behaviour and
//! warm-vs-cold solve costs.
//!
//! With `--baseline <file>` the run doubles as a CI regression gate: the
//! fresh report is compared against a committed previous `BENCH_service.json`
//! and the command fails when sustained queries/sec regresses by more than
//! 20%.  `--snapshot` / `--preload` exercise the cache's warm-set
//! persistence, and `--max-inflight-cold` / `--cold-queue` configure
//! admission control.  With `--trace <file>` the service runs with per-query
//! lifecycle tracing on and writes a Chrome trace-event JSON file (load it at
//! <https://ui.perfetto.dev>) with one track per worker and per client.

use std::io::Write;

use steady_service::{
    chrome_trace_json, run_load, LoadConfig, SchedulerKind, Service, ServiceConfig,
};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "queries",
        "clients",
        "distinct",
        "workers",
        "cache-capacity",
        "shards",
        "seed",
        "out",
        "baseline",
        "snapshot",
        "preload",
        "max-inflight-cold",
        "cold-queue",
        "trace",
        "scheduler",
    ],
    flags: &["schedules"],
};

/// Maximum tolerated relative drop in queries/sec against the baseline.
const MAX_QPS_REGRESSION: f64 = 0.20;

/// Parses the `--scheduler` option (`thread-per-worker`/`tpw`,
/// `work-stealing`/`ws`; defaults to the engine default).
pub fn parse_scheduler(parsed: &mut ParsedArgs) -> Result<SchedulerKind, CliError> {
    match parsed.value("scheduler") {
        None => Ok(SchedulerKind::default()),
        Some(raw) => SchedulerKind::parse(raw).ok_or_else(|| {
            CliError::Usage(format!(
                "--scheduler expects 'thread-per-worker' or 'work-stealing', got '{raw}'"
            ))
        }),
    }
}

/// Extracts the numeric value of `"key":<number>` from a flat JSON object.
pub(crate) fn json_number(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let start = text.find(&tag)? + tag.len();
    let rest = &text[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Runs `steady serve-bench ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let load = LoadConfig {
        queries: parsed.usize_value("queries", 1000)?,
        clients: parsed.usize_value("clients", 4)?,
        distinct: parsed.usize_value("distinct", 24)?,
        seed: parsed.u64_value("seed", 42)?,
    };
    let mut config = ServiceConfig {
        workers: parsed.usize_value("workers", 4)?,
        build_schedules: parsed.flag("schedules"),
        ..ServiceConfig::default()
    };
    config.cache.capacity = parsed.usize_value("cache-capacity", config.cache.capacity)?;
    config.cache.shards = parsed.usize_value("shards", config.cache.shards)?;
    config.max_inflight_cold = parsed.usize_value("max-inflight-cold", config.max_inflight_cold)?;
    config.cold_queue = parsed.usize_value("cold-queue", config.cold_queue)?;
    config.scheduler = parse_scheduler(&mut parsed)?;
    let json_path = parsed.value("out").map(str::to_owned);
    let baseline_path = parsed.value("baseline").map(str::to_owned);
    let snapshot_path = parsed.value("snapshot").map(str::to_owned);
    let preload_path = parsed.value("preload").map(str::to_owned);
    let trace_path = parsed.value("trace").map(str::to_owned);
    config.tracing = trace_path.is_some();

    let service = Service::start(config);
    writeln!(out, "scheduler          : {}", service.scheduler_kind().name())?;
    if let Some(path) = &preload_path {
        let restored = service
            .preload(path)
            .map_err(|e| CliError::Failed(format!("preloading snapshot failed: {e}")))?;
        writeln!(out, "preloaded          : {restored} cache entries from {path}")?;
    }
    let report = run_load(&service, &load)
        .map_err(|e| CliError::Failed(format!("serve-bench load run failed: {e}")))?;

    writeln!(out, "operation          : service load benchmark")?;
    write!(out, "{}", report.render())?;
    if let Some(path) = &trace_path {
        let traces = service.drain_traces();
        let dropped = service.traces_dropped();
        std::fs::write(path, chrome_trace_json(&traces, &report.client_spans))
            .map_err(|e| CliError::Failed(format!("cannot write trace to '{path}': {e}")))?;
        writeln!(
            out,
            "trace              : {} query spans + {} client spans ({} dropped) -> {path}",
            traces.len(),
            report.client_spans.len(),
            dropped,
        )?;
    }
    if let Some(path) = &snapshot_path {
        let written = service
            .snapshot(path)
            .map_err(|e| CliError::Failed(format!("writing snapshot failed: {e}")))?;
        writeln!(out, "snapshot           : {written} cache entries written to {path}")?;
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    if let Some(path) = baseline_path {
        check_against_baseline(&path, report.queries_per_second, report.p99_micros, out)?;
    }
    Ok(())
}

/// Compares this run against a previous `BENCH_service.json` and fails when
/// queries/sec regressed by more than 20% (p99 is reported for context, not
/// gated — it is too noisy on shared CI runners to fail a build on).
fn check_against_baseline(
    path: &str,
    qps: f64,
    p99_micros: f64,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Failed(format!("cannot read baseline '{path}': {e}")))?;
    let base_qps = json_number(&text, "queries_per_second")
        .ok_or_else(|| CliError::Failed(format!("baseline '{path}' has no queries_per_second")))?;
    let base_p99 = json_number(&text, "p99_micros").unwrap_or(0.0);
    let qps_delta = if base_qps > 0.0 { qps / base_qps - 1.0 } else { 0.0 };
    writeln!(
        out,
        "baseline           : {:.1} qps -> {:.1} qps ({:+.1}%), p99 {:.1} -> {:.1} µs",
        base_qps,
        qps,
        qps_delta * 100.0,
        base_p99,
        p99_micros,
    )?;
    if base_qps > 0.0 && qps < base_qps * (1.0 - MAX_QPS_REGRESSION) {
        return Err(CliError::Failed(format!(
            "queries/sec regressed {:.1}% against baseline '{path}' \
             ({qps:.1} vs {base_qps:.1}, tolerance {:.0}%)",
            -qps_delta * 100.0,
            MAX_QPS_REGRESSION * 100.0,
        )));
    }
    Ok(())
}
