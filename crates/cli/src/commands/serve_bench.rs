//! `steady serve-bench` — load-test the query-serving engine and report
//! sustained throughput, latency percentiles and cache behaviour.

use std::io::Write;

use steady_service::{run_load, LoadConfig, Service, ServiceConfig};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "queries",
        "clients",
        "distinct",
        "workers",
        "cache-capacity",
        "shards",
        "seed",
        "out",
    ],
    flags: &["schedules"],
};

/// Runs `steady serve-bench ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let load = LoadConfig {
        queries: parsed.usize_value("queries", 1000)?,
        clients: parsed.usize_value("clients", 4)?,
        distinct: parsed.usize_value("distinct", 24)?,
        seed: parsed.u64_value("seed", 42)?,
    };
    let mut config = ServiceConfig {
        workers: parsed.usize_value("workers", 4)?,
        build_schedules: parsed.flag("schedules"),
        ..ServiceConfig::default()
    };
    config.cache.capacity = parsed.usize_value("cache-capacity", config.cache.capacity)?;
    config.cache.shards = parsed.usize_value("shards", config.cache.shards)?;
    let json_path = parsed.value("out").map(str::to_owned);

    let service = Service::start(config);
    let report = run_load(&service, &load)
        .map_err(|e| CliError::Failed(format!("serve-bench load run failed: {e}")))?;

    writeln!(out, "operation          : service load benchmark")?;
    write!(out, "{}", report.render())?;
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    Ok(())
}
