//! `steady info` — summarize a platform file.

use std::io::Write;

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

use super::load_platform;

const SPEC: OptionSpec = OptionSpec { valued: &["platform"], flags: &["dot"] };

/// Runs `steady info ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let platform = load_platform(parsed.required("platform")?)?;
    let want_dot = parsed.flag("dot");

    writeln!(out, "nodes              : {}", platform.num_nodes())?;
    writeln!(out, "directed edges     : {}", platform.num_edges())?;
    writeln!(out, "compute nodes      : {}", platform.compute_nodes().len())?;
    writeln!(out, "strongly connected : {}", platform.is_strongly_connected())?;
    writeln!(out, "hop diameter       : {}", platform.max_hop_diameter())?;
    for n in platform.node_ids() {
        let node = platform.node(n);
        let kind =
            if node.can_compute() { format!("speed {}", node.speed) } else { "router".into() };
        writeln!(out, "  {n}: {} ({kind}, degree {})", node.name, platform.degree(n))?;
    }
    if want_dot {
        writeln!(out, "--- graphviz ---")?;
        write!(out, "{}", platform.to_dot())?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::figure2;

    #[test]
    fn info_reports_structure_and_dot() {
        let path = std::env::temp_dir().join("steady_cli_info_test.txt");
        std::fs::write(&path, figure2().platform.to_text()).unwrap();
        let args: Vec<String> =
            ["--platform", path.to_str().unwrap(), "--dot"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        std::fs::remove_file(&path).ok();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("nodes              : 5"));
        assert!(text.contains("digraph"));
        assert!(text.contains("Ps"));
    }

    #[test]
    fn missing_platform_file_is_reported() {
        let args: Vec<String> =
            ["--platform", "/nonexistent/steady.txt"].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Failed(_))));
    }
}
