//! `steady forecast-bench` — run the speculative pre-solving scenario
//! through the serving engine and report the prefetch hit rate.
//!
//! Each epoch forecasts the likeliest next platforms of two forecastable
//! random walks (a star scatter and a star gather under a lazy, fine-grained
//! drift), schedules them as prefetch jobs, lets the idle workers pre-solve
//! them, then steps the walks and replays the drifted queries.  The report
//! shows how much of the drift was answered *before* it was asked: the
//! prefetch hit fraction, the wasted speculation, the per-epoch
//! `will-hold`/`may-exit`/`will-exit` classification split — and, with
//! verification on (the default), confirms every drifted answer equals an
//! independent cold solve's exact rational.
//!
//! With `--min-prefetch-hit <fraction>` the run doubles as a CI gate on the
//! forecaster's effectiveness: it fails when fewer than that fraction of
//! the fresh demand work was answered from prefetched entries.

use std::io::Write;

use steady_service::{run_forecast_load, ForecastLoadConfig, Service, ServiceConfig};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "epochs",
        "hits-per-epoch",
        "workers",
        "seed",
        "horizon",
        "plan",
        "out",
        "min-prefetch-hit",
    ],
    flags: &["no-verify"],
};

/// Runs `steady forecast-bench ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let config = ForecastLoadConfig {
        epochs: parsed.usize_value("epochs", 50)?,
        hits_per_epoch: parsed.usize_value("hits-per-epoch", 2)?,
        seed: parsed.u64_value("seed", 42)?,
        horizon: parsed.u64_value("horizon", 1)?,
        plan: parsed.usize_value("plan", 16)?,
        verify: !parsed.flag("no-verify"),
    };
    let service_config =
        ServiceConfig { workers: parsed.usize_value("workers", 4)?, ..ServiceConfig::default() };
    let json_path = parsed.value("out").map(str::to_owned);
    let min_hit: Option<f64> = match parsed.value("min-prefetch-hit") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| {
            CliError::Usage(format!("--min-prefetch-hit expects a fraction in [0, 1], got '{raw}'"))
        })?),
    };

    let service = Service::start(service_config);
    let report = run_forecast_load(&service, &config)
        .map_err(|e| CliError::Failed(format!("forecast-bench run failed: {e}")))?;

    writeln!(out, "operation          : speculative pre-solving benchmark")?;
    write!(out, "{}", report.render())?;
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    if let Some(min_hit) = min_hit {
        let fraction = report.prefetch_hit_fraction();
        writeln!(
            out,
            "prefetch gate      : {:.1}% (minimum {:.1}%)",
            fraction * 100.0,
            min_hit * 100.0
        )?;
        if fraction < min_hit {
            return Err(CliError::Failed(format!(
                "prefetched entries answered only {:.1}% of fresh demand \
                 (minimum {:.1}%): {} prefetch hits vs {} demand solves",
                fraction * 100.0,
                min_hit * 100.0,
                report.stats.prefetch_hits,
                report.stats.solves,
            )));
        }
    }
    Ok(())
}
