//! `steady generate <topology>` — emit platform files for the supported topologies.

use std::io::Write;

use rand::rngs::StdRng;
use rand::SeedableRng;

use steady_platform::generators::{self, RandomConfig, TiersConfig};
use steady_platform::topologies::{self, FatTreeConfig, GeometricConfig};
use steady_platform::Platform;
use steady_rational::rat;

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "out",
        "nodes",
        "leaves",
        "rows",
        "cols",
        "dimensions",
        "cost",
        "seed",
        "hosts",
        "hosts-per-side",
        "spines",
    ],
    flags: &[],
};

/// Runs `steady generate ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let Some(topology) = parsed.positional().first().cloned() else {
        return Err(CliError::Usage("generate needs a topology name".into()));
    };
    let cost = parsed.ratio_value("cost", rat(1, 1))?;
    let seed = parsed.u64_value("seed", 42)?;

    let (platform, comment) = match topology.as_str() {
        "star" => {
            let leaves = parsed.usize_value("leaves", 4)?;
            let (p, center, leaf_ids) = generators::star(leaves, cost);
            (p, format!("star: center {center}, leaves {}", describe(&leaf_ids)))
        }
        "chain" => {
            let nodes = parsed.usize_value("nodes", 4)?;
            let (p, ids) = generators::chain(nodes, cost);
            (p, format!("chain: nodes {}", describe(&ids)))
        }
        "clique" => {
            let nodes = parsed.usize_value("nodes", 4)?;
            let (p, ids) = generators::clique(nodes, cost);
            (p, format!("clique: nodes {}", describe(&ids)))
        }
        "grid" => {
            let rows = parsed.usize_value("rows", 3)?;
            let cols = parsed.usize_value("cols", 3)?;
            let (p, _) = generators::grid(rows, cols, cost);
            (p, format!("grid: {rows} x {cols}"))
        }
        "ring" => {
            let nodes = parsed.usize_value("nodes", 5)?;
            let (p, ids) = topologies::ring(nodes, cost);
            (p, format!("ring: nodes {}", describe(&ids)))
        }
        "torus" => {
            let rows = parsed.usize_value("rows", 3)?;
            let cols = parsed.usize_value("cols", 3)?;
            let (p, _) = topologies::torus(rows, cols, cost);
            (p, format!("torus: {rows} x {cols}"))
        }
        "hypercube" => {
            let dims = parsed.usize_value("dimensions", 3)?;
            let (p, ids) = topologies::hypercube(dims, cost);
            (p, format!("hypercube: dimension {dims}, nodes {}", describe(&ids)))
        }
        "fat-tree" => {
            let config = FatTreeConfig {
                leaf_switches: parsed.usize_value("leaves", 3)?,
                spine_switches: parsed.usize_value("spines", 2)?,
                hosts_per_leaf: parsed.usize_value("hosts", 2)?,
                ..FatTreeConfig::default()
            };
            let ft = topologies::fat_tree(&config);
            (ft.platform, format!("fat-tree: hosts {}", describe(&ft.hosts)))
        }
        "dumbbell" => {
            let hosts = parsed.usize_value("hosts-per-side", 3)?;
            let (p, left, right) = topologies::dumbbell(hosts, cost, rat(1, 1));
            (p, format!("dumbbell: left {}, right {}", describe(&left), describe(&right)))
        }
        "random" => {
            let config =
                RandomConfig { nodes: parsed.usize_value("nodes", 8)?, ..RandomConfig::default() };
            let mut rng = StdRng::seed_from_u64(seed);
            let p = generators::random_connected(&config, &mut rng);
            (p, format!("random connected platform, seed {seed}"))
        }
        "geometric" => {
            let config = GeometricConfig {
                nodes: parsed.usize_value("nodes", 10)?,
                ..GeometricConfig::default()
            };
            let mut rng = StdRng::seed_from_u64(seed);
            let (p, ids) = topologies::random_geometric(&config, &mut rng);
            (p, format!("random geometric platform, seed {seed}, nodes {}", describe(&ids)))
        }
        "tiers" => {
            let mut rng = StdRng::seed_from_u64(seed);
            let t = generators::tiers(&TiersConfig::default(), &mut rng);
            (
                t.platform,
                format!("tiers platform, seed {seed}, compute hosts {}", describe(&t.hosts)),
            )
        }
        other => return Err(CliError::Usage(format!("unknown topology '{other}'"))),
    };

    let text = render(&platform, &comment);
    match parsed.value("out") {
        Some(path) => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Failed(format!("cannot write '{path}': {e}")))?;
            writeln!(
                out,
                "wrote {} nodes / {} edges to {path}",
                platform.num_nodes(),
                platform.num_edges()
            )?;
        }
        None => {
            write!(out, "{text}")?;
        }
    }
    Ok(())
}

fn describe(nodes: &[steady_platform::NodeId]) -> String {
    nodes.iter().map(|n| n.index().to_string()).collect::<Vec<_>>().join(",")
}

fn render(platform: &Platform, comment: &str) -> String {
    format!("# {comment}\n{}", platform.to_text())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(words: &[&str]) -> String {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn every_topology_round_trips_through_the_text_format() {
        for words in [
            vec!["star", "--leaves", "3"],
            vec!["chain", "--nodes", "4"],
            vec!["clique", "--nodes", "4"],
            vec!["grid", "--rows", "2", "--cols", "3"],
            vec!["ring", "--nodes", "5"],
            vec!["torus", "--rows", "2", "--cols", "3"],
            vec!["hypercube", "--dimensions", "3"],
            vec!["fat-tree", "--leaves", "2", "--spines", "2", "--hosts", "2"],
            vec!["dumbbell", "--hosts-per-side", "2"],
            vec!["random", "--nodes", "6", "--seed", "1"],
            vec!["geometric", "--nodes", "6", "--seed", "1"],
            vec!["tiers", "--seed", "1"],
        ] {
            let text = generate(&words);
            let parsed = Platform::from_text(&text)
                .unwrap_or_else(|e| panic!("{words:?} produced an unparsable platform: {e}"));
            assert!(parsed.num_nodes() > 0, "{words:?} produced an empty platform");
        }
    }

    #[test]
    fn unknown_topology_is_rejected() {
        let args = vec!["moebius".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn writes_to_a_file_when_requested() {
        let path = std::env::temp_dir().join("steady_cli_generate_test.txt");
        let path_str = path.to_str().unwrap().to_string();
        let args: Vec<String> =
            ["star", "--leaves", "2", "--out", &path_str].iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(Platform::from_text(&text).is_ok());
        std::fs::remove_file(&path).ok();
        let summary = String::from_utf8(out).unwrap();
        assert!(summary.contains("wrote"));
    }
}
