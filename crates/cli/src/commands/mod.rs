//! Subcommand implementations.

pub mod demo;
pub mod drift_bench;
pub mod explain;
pub mod forecast_bench;
pub mod generate;
pub mod info;
pub mod obs_overhead;
pub mod scaling_sweep;
pub mod sched_bench;
pub mod serve_bench;
pub mod solve;
pub mod trace;

use std::path::Path;

use steady_platform::Platform;

use crate::CliError;

/// Loads a platform from the text format, reporting a readable error.
pub fn load_platform(path: &str) -> Result<Platform, CliError> {
    let text = std::fs::read_to_string(Path::new(path))
        .map_err(|e| CliError::Failed(format!("cannot read platform file '{path}': {e}")))?;
    Platform::from_text(&text)
        .map_err(|e| CliError::Failed(format!("invalid platform file '{path}': {e}")))
}
