//! `steady sched-bench` — run the same mixed demand+prefetch load on both
//! schedulers and gate the work-stealing executor against the
//! thread-per-worker baseline.
//!
//! The command replays one loadgen mix twice — once per [`SchedulerKind`] —
//! with a speculative prefetch plan scheduled up front so the priority
//! lanes actually compete, then:
//!
//! * **parity** (always on): re-serves every query of the mix on both
//!   services and fails unless every answer is `Ratio`-equal — the
//!   scheduler seam must never change what is computed;
//! * **p99 gate** (always on): fails when the work-stealing demand p99
//!   exceeds the thread-per-worker p99 by more than `--p99-margin`
//!   (default 1.25×);
//! * **qps gate** (`--baseline <file>`): fails when work-stealing
//!   queries/sec regressed more than 20% against a committed
//!   `BENCH_sched.json`.
//!
//! With `--out <file>` the run writes `BENCH_sched.json` (`schema_version`
//! 1): a flat JSON object with per-scheduler throughput, end-to-end
//! percentiles, per-lane wait breakdowns, and the scheduler's own steal /
//! timeout / cancellation counters.

use std::fmt::Write as _;
use std::io::Write;
use std::time::Duration;

use steady_service::{
    query_mix, run_load, LoadConfig, LoadReport, MetricsSnapshot, PrefetchJob, SchedulerKind,
    Service, ServiceConfig, ServiceStats,
};

use super::serve_bench::json_number;
use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "queries",
        "clients",
        "distinct",
        "workers",
        "prefetch",
        "seed",
        "out",
        "baseline",
        "p99-margin",
    ],
    flags: &[],
};

/// Maximum tolerated relative drop in work-stealing queries/sec against the
/// committed `BENCH_sched.json` baseline.
const MAX_QPS_REGRESSION: f64 = 0.20;

/// One scheduler's half of the benchmark.
struct SchedRun {
    kind: SchedulerKind,
    report: LoadReport,
    metrics: MetricsSnapshot,
    stats: ServiceStats,
    /// Exact served values (rendered rationals), in replay order — the
    /// parity fingerprint.
    answers: Vec<String>,
}

/// Replays the mixed demand+prefetch load on one scheduler.
fn run_one(
    kind: SchedulerKind,
    workers: usize,
    load: &LoadConfig,
    prefetch: usize,
) -> Result<SchedRun, CliError> {
    let service =
        Service::start(ServiceConfig { workers, scheduler: kind, ..ServiceConfig::default() });
    // Speculative plan scheduled up front, so the prefetch lane competes
    // with demand for the whole replay instead of draining into idle air.
    let plan = query_mix(load.distinct.max(1), load.seed ^ 0x73_70_65_63);
    let jobs = plan
        .iter()
        .cycle()
        .take(prefetch)
        .map(|q| PrefetchJob { query: q.clone(), predicted_exit: false });
    service.schedule_prefetch(jobs);
    let report = run_load(&service, load)
        .map_err(|e| CliError::Failed(format!("sched-bench load run failed: {e}")))?;
    service.await_prefetch_idle(Duration::from_secs(60));
    // Parity fingerprint: serve the whole mix once more, sequentially, and
    // record the exact rational answers.
    let mut answers = Vec::new();
    for query in query_mix(load.distinct.max(1), load.seed) {
        let served = service
            .query(query)
            .map_err(|e| CliError::Failed(format!("parity replay failed on {kind:?}: {e:?}")))?;
        answers.push(served.answer.throughput.to_string());
    }
    let metrics = service.metrics();
    let stats = service.stats();
    Ok(SchedRun { kind, report, metrics, stats, answers })
}

/// Appends one scheduler's flat JSON fields under a `tpw_`/`ws_` prefix.
fn push_json(json: &mut String, prefix: &str, run: &SchedRun) {
    let _ = write!(
        json,
        "\"{prefix}_queries_per_second\":{:.3},\
         \"{prefix}_p50_micros\":{:.3},\
         \"{prefix}_p95_micros\":{:.3},\
         \"{prefix}_p99_micros\":{:.3},\
         \"{prefix}_steals\":{},\
         \"{prefix}_demand_timeouts\":{},\
         \"{prefix}_prefetch_cancelled\":{},\
         \"{prefix}_prefetched\":{}",
        run.report.queries_per_second,
        run.report.p50_micros,
        run.report.p95_micros,
        run.report.p99_micros,
        run.stats.steals,
        run.stats.demand_timeouts,
        run.stats.prefetch_cancelled,
        run.stats.prefetched,
    );
    for lane in ["demand", "revalidation", "prefetch"] {
        let name = format!("lane_{lane}_wait_nanos");
        let (count, p50, p99) = match run.metrics.histogram(&name) {
            Some(h) if h.count() > 0 => {
                (h.count(), h.quantile(0.50) as f64 / 1_000.0, h.quantile(0.99) as f64 / 1_000.0)
            }
            _ => (0, 0.0, 0.0),
        };
        let _ = write!(
            json,
            ",\"{prefix}_lane_{lane}_waits\":{count},\
             \"{prefix}_lane_{lane}_wait_p50_micros\":{p50:.3},\
             \"{prefix}_lane_{lane}_wait_p99_micros\":{p99:.3}"
        );
    }
}

/// Renders one scheduler's human-readable summary block.
fn render_run(out: &mut dyn Write, run: &SchedRun) -> Result<(), CliError> {
    writeln!(
        out,
        "{:>18} : {:.1} qps, p50/p95/p99 {:.1}/{:.1}/{:.1} µs, \
         {} steals, {} demand timeouts, {} prefetch cancelled",
        run.kind.name(),
        run.report.queries_per_second,
        run.report.p50_micros,
        run.report.p95_micros,
        run.report.p99_micros,
        run.stats.steals,
        run.stats.demand_timeouts,
        run.stats.prefetch_cancelled,
    )?;
    for lane in ["demand", "revalidation", "prefetch"] {
        let name = format!("lane_{lane}_wait_nanos");
        if let Some(h) = run.metrics.histogram(&name) {
            if h.count() > 0 {
                writeln!(
                    out,
                    "{:>18} : {} waits, p50 {:.1} µs, p99 {:.1} µs",
                    format!("lane {lane}"),
                    h.count(),
                    h.quantile(0.50) as f64 / 1_000.0,
                    h.quantile(0.99) as f64 / 1_000.0,
                )?;
            }
        }
    }
    Ok(())
}

/// Runs `steady sched-bench ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let load = LoadConfig {
        queries: parsed.usize_value("queries", 600)?,
        clients: parsed.usize_value("clients", 4)?,
        distinct: parsed.usize_value("distinct", 24)?,
        seed: parsed.u64_value("seed", 42)?,
    };
    let workers = parsed.usize_value("workers", 4)?;
    let prefetch = parsed.usize_value("prefetch", 96)?;
    let p99_margin: f64 = match parsed.value("p99-margin") {
        None => 1.25,
        Some(raw) => raw.parse().map_err(|_| {
            CliError::Usage(format!("--p99-margin expects a factor like 1.25, got '{raw}'"))
        })?,
    };
    let json_path = parsed.value("out").map(str::to_owned);
    let baseline_path = parsed.value("baseline").map(str::to_owned);

    writeln!(out, "operation          : scheduler comparison benchmark")?;
    writeln!(
        out,
        "load               : {} queries, {} clients, {} distinct, {} prefetch jobs, {} workers",
        load.queries, load.clients, load.distinct, prefetch, workers,
    )?;

    let tpw = run_one(SchedulerKind::ThreadPerWorker, workers, &load, prefetch)?;
    let ws = run_one(SchedulerKind::WorkStealing, workers, &load, prefetch)?;
    render_run(out, &tpw)?;
    render_run(out, &ws)?;

    // Parity: the scheduler seam must never change a served value.
    if tpw.answers != ws.answers {
        let diverged =
            tpw.answers.iter().zip(ws.answers.iter()).position(|(a, b)| a != b).unwrap_or(0);
        return Err(CliError::Failed(format!(
            "scheduler parity violated: query {diverged} served '{}' under thread-per-worker \
             but '{}' under work-stealing",
            tpw.answers[diverged], ws.answers[diverged],
        )));
    }
    writeln!(out, "parity             : {} served values Ratio-equal across schedulers", {
        tpw.answers.len()
    })?;

    // Demand p99 gate: work-stealing must not trade demand latency away.
    let (tpw_p99, ws_p99) = (tpw.report.p99_micros, ws.report.p99_micros);
    writeln!(
        out,
        "demand p99         : {tpw_p99:.1} µs (tpw) vs {ws_p99:.1} µs (ws), margin {p99_margin}x",
    )?;
    if tpw_p99 > 0.0 && ws_p99 > tpw_p99 * p99_margin {
        return Err(CliError::Failed(format!(
            "work-stealing demand p99 {ws_p99:.1} µs exceeds thread-per-worker \
             {tpw_p99:.1} µs by more than {p99_margin}x"
        )));
    }

    let mut json = String::from("{\"schema_version\":1,\"benchmark\":\"sched\",");
    let _ = write!(
        json,
        "\"queries\":{},\"clients\":{},\"distinct\":{},\"prefetch\":{},\"workers\":{},\"seed\":{},",
        load.queries, load.clients, load.distinct, prefetch, workers, load.seed,
    );
    push_json(&mut json, "tpw", &tpw);
    json.push(',');
    push_json(&mut json, "ws", &ws);
    json.push('}');
    if let Some(path) = &json_path {
        std::fs::write(path, &json)
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }

    if let Some(path) = &baseline_path {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Failed(format!("cannot read baseline '{path}': {e}")))?;
        let base_qps = json_number(&text, "ws_queries_per_second").ok_or_else(|| {
            CliError::Failed(format!("baseline '{path}' has no ws_queries_per_second"))
        })?;
        let qps = ws.report.queries_per_second;
        let delta = if base_qps > 0.0 { qps / base_qps - 1.0 } else { 0.0 };
        writeln!(
            out,
            "baseline           : {base_qps:.1} qps -> {qps:.1} qps ({:+.1}%)",
            delta * 100.0,
        )?;
        if base_qps > 0.0 && qps < base_qps * (1.0 - MAX_QPS_REGRESSION) {
            return Err(CliError::Failed(format!(
                "work-stealing queries/sec regressed {:.1}% against baseline '{path}' \
                 ({qps:.1} vs {base_qps:.1}, tolerance {:.0}%)",
                -delta * 100.0,
                MAX_QPS_REGRESSION * 100.0,
            )));
        }
    }
    Ok(())
}
