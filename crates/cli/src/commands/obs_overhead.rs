//! `steady obs-overhead` — measure (and gate) the cost of the observability
//! layer: per-query tracing *and* per-solve event recording.
//!
//! Runs the same load twice per round — once with the layer off, once with
//! tracing and solver events on — against fresh services with identical
//! seeds.  Each round's
//! back-to-back pair shares runner conditions, so its overhead ratio
//! `1 - on/off` cancels slow drift (CPU frequency scaling, co-tenant load)
//! that cross-round comparisons cannot; shared-runner noise landing inside
//! one run of a pair only ever distorts that pair, so the gate scores the
//! *least-inflated* pair — the minimum paired overhead across rounds.  A
//! genuinely expensive tracing path inflates every pair and still trips the
//! gate.  With `--max-overhead <fraction>` (CI default: `0.05`) the command
//! fails when tracing costs more than that fraction of throughput — the
//! "tracing is cheap enough to leave on" contract.
//!
//! `--out` writes a machine-readable `BENCH_obs.json`; `--trace-out` saves
//! the traced run's Perfetto file as a build artifact.

use std::io::Write;

use steady_service::{
    chrome_trace_json, run_load, LoadConfig, LoadReport, Service, ServiceConfig,
    METRICS_SCHEMA_VERSION,
};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "queries",
        "clients",
        "distinct",
        "workers",
        "seed",
        "rounds",
        "max-overhead",
        "out",
        "trace-out",
    ],
    flags: &[],
};

/// Runs `steady obs-overhead ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let load = LoadConfig {
        queries: parsed.usize_value("queries", 2000)?,
        clients: parsed.usize_value("clients", 4)?,
        distinct: parsed.usize_value("distinct", 24)?,
        seed: parsed.u64_value("seed", 42)?,
    };
    let workers = parsed.usize_value("workers", 4)?;
    let rounds = parsed.usize_value("rounds", 3)?.max(1);
    let max_overhead: Option<f64> = match parsed.value("max-overhead") {
        None => None,
        Some(raw) => Some(raw.parse::<f64>().map_err(|_| {
            CliError::Usage(format!("--max-overhead expects a fraction in [0, 1], got '{raw}'"))
        })?),
    };
    let json_path = parsed.value("out").map(str::to_owned);
    let trace_path = parsed.value("trace-out").map(str::to_owned);

    let run_once = |traced: bool| -> Result<(LoadReport, Service), CliError> {
        let mut config = ServiceConfig { workers, ..ServiceConfig::default() };
        config.tracing = traced;
        // The "on" runs carry the *full* observability stack: per-query
        // tracing plus per-solve event recording and the anomalous-solve
        // flight recorder, so the gate prices the whole layer at once.
        config.solver_events = traced;
        let service = Service::start(config);
        let report = run_load(&service, &load)
            .map_err(|e| CliError::Failed(format!("obs-overhead load run failed: {e}")))?;
        Ok((report, service))
    };

    // One unmeasured warmup run soaks up first-touch costs (page-in, lazy
    // allocator growth) so they don't bias whichever mode runs first.
    run_once(false)?;

    let (mut best_off, mut best_on) = (0.0f64, 0.0f64);
    let mut overhead = f64::INFINITY;
    let mut last_traced: Option<(LoadReport, Service)> = None;
    for _ in 0..rounds {
        let (off, _) = run_once(false)?;
        best_off = best_off.max(off.queries_per_second);
        let (on, service) = run_once(true)?;
        best_on = best_on.max(on.queries_per_second);
        // Paired ratio: both runs of this round shared runner conditions.
        let paired = if off.queries_per_second > 0.0 {
            1.0 - on.queries_per_second / off.queries_per_second
        } else {
            0.0
        };
        overhead = overhead.min(paired);
        last_traced = Some((on, service));
    }
    // lint: allow(panics) — rounds >= 1, so a traced run always happened.
    let (traced_report, traced_service) = last_traced.expect("at least one round ran");
    let traces = traced_service.drain_traces();
    let dropped = traced_service.traces_dropped();
    let solve_records = traced_service.drain_solve_records();
    let records_pushed = traced_service.solve_records_pushed();

    writeln!(out, "operation          : tracing overhead gate")?;
    writeln!(
        out,
        "queries            : {} x {} rounds ({} clients, {} workers)",
        load.queries, rounds, load.clients, workers
    )?;
    writeln!(out, "qps (tracing off)  : {best_off:.1}")?;
    writeln!(out, "qps (tracing on)   : {best_on:.1}")?;
    writeln!(
        out,
        "overhead           : {:+.1}% (min paired over {} rounds; {} traces, {} dropped)",
        overhead * 100.0,
        rounds,
        traces.len(),
        dropped,
    )?;
    writeln!(
        out,
        "solver events      : on in traced runs; {} anomalous solves kept of {} classified",
        solve_records.len(),
        records_pushed,
    )?;

    if let Some(path) = &trace_path {
        std::fs::write(path, chrome_trace_json(&traces, &traced_report.client_spans))
            .map_err(|e| CliError::Failed(format!("cannot write trace to '{path}': {e}")))?;
        writeln!(out, "trace              : written to {path}")?;
    }
    if let Some(path) = &json_path {
        let json = format!(
            concat!(
                "{{\"schema_version\":{},\"queries\":{},\"rounds\":{},",
                "\"clients\":{},\"workers\":{},",
                "\"qps_untraced\":{:.1},\"qps_traced\":{:.1},",
                "\"overhead_fraction\":{:.4},\"traces\":{},\"dropped\":{},",
                "\"solve_records\":{},\"solve_records_pushed\":{}}}"
            ),
            METRICS_SCHEMA_VERSION,
            load.queries,
            rounds,
            load.clients,
            workers,
            best_off,
            best_on,
            overhead,
            traces.len(),
            dropped,
            solve_records.len(),
            records_pushed,
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    if let Some(max) = max_overhead {
        writeln!(out, "gate               : tracing must cost <= {:.1}% qps", max * 100.0)?;
        if overhead > max {
            return Err(CliError::Failed(format!(
                "tracing overhead {:.1}% exceeds the {:.1}% gate \
                 ({best_on:.1} qps traced vs {best_off:.1} untraced)",
                overhead * 100.0,
                max * 100.0,
            )));
        }
    }
    Ok(())
}
