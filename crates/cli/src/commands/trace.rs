//! `steady trace` — capture a Perfetto-loadable lifecycle trace of a short
//! serving run.
//!
//! Runs the load generator against a service with per-query tracing enabled
//! and writes a Chrome trace-event JSON file: one track per worker thread
//! (per-stage spans — queue wait, cache lookup, flight, gate wait, solve,
//! publish — plus a synthetic gate-queue track) and one per client thread.
//! Load the file at <https://ui.perfetto.dev> or `chrome://tracing`.
//!
//! `--metrics` / `--prometheus` additionally print the service's metrics
//! registry (latency histograms included) after the run, in the hand-rolled
//! JSON or the Prometheus text exposition.

use std::io::Write;

use steady_service::{chrome_trace_json, run_load, LoadConfig, Service, ServiceConfig};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &["queries", "clients", "distinct", "workers", "seed", "out", "scheduler"],
    flags: &["metrics", "prometheus"],
};

/// Runs `steady trace ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let load = LoadConfig {
        queries: parsed.usize_value("queries", 200)?,
        clients: parsed.usize_value("clients", 2)?,
        distinct: parsed.usize_value("distinct", 12)?,
        seed: parsed.u64_value("seed", 42)?,
    };
    let config = ServiceConfig {
        workers: parsed.usize_value("workers", 2)?,
        scheduler: super::serve_bench::parse_scheduler(&mut parsed)?,
        ..ServiceConfig::default()
    }
    .traced();
    let path = parsed.value("out").unwrap_or("trace.json").to_owned();
    let want_metrics = parsed.flag("metrics");
    let want_prometheus = parsed.flag("prometheus");

    let service = Service::start(config);
    let report = run_load(&service, &load)
        .map_err(|e| CliError::Failed(format!("trace load run failed: {e}")))?;

    let traces = service.drain_traces();
    let dropped = service.traces_dropped();
    std::fs::write(&path, chrome_trace_json(&traces, &report.client_spans))
        .map_err(|e| CliError::Failed(format!("cannot write trace to '{path}': {e}")))?;

    writeln!(out, "operation          : lifecycle trace capture")?;
    writeln!(
        out,
        "queries            : {} ({} distinct, {} clients)",
        report.queries, report.distinct, report.clients
    )?;
    writeln!(
        out,
        "trace              : {} query spans + {} client spans ({} dropped) -> {path}",
        traces.len(),
        report.client_spans.len(),
        dropped,
    )?;
    writeln!(out, "view               : load {path} at https://ui.perfetto.dev")?;
    if want_metrics {
        writeln!(out, "{}", service.metrics().to_json())?;
    }
    if want_prometheus {
        write!(out, "{}", service.metrics().to_prometheus())?;
    }
    Ok(())
}
