//! `steady solve <operation>` — throughput, schedules and trees on a platform file.

use std::io::Write;

use steady_core::gather::GatherProblem;
use steady_core::gossip::GossipProblem;
use steady_core::prefix::PrefixProblem;
use steady_core::reduce::ReduceProblem;
use steady_core::scatter::ScatterProblem;
use steady_core::schedule::PeriodicSchedule;
use steady_platform::Platform;
use steady_rational::rat;

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

use super::load_platform;

const SPEC: OptionSpec = OptionSpec {
    valued: &[
        "platform",
        "source",
        "targets",
        "sources",
        "sink",
        "participants",
        "target",
        "size",
        "task-cost",
    ],
    flags: &["schedule", "trees", "verify"],
};

/// Maps any displayable solver error into [`CliError::Failed`] with a
/// `"<what>: <cause>"` message — the one error-mapping idiom every
/// per-collective handler shares.
fn failed<E: std::fmt::Display>(what: &'static str) -> impl Fn(E) -> CliError {
    move |e| CliError::Failed(format!("{what}: {e}"))
}

/// Validates `schedule` against `platform` and writes its rendering —
/// the shared tail of every `--schedule` path.
fn emit_schedule(
    out: &mut dyn Write,
    platform: &Platform,
    schedule: &PeriodicSchedule,
) -> Result<(), CliError> {
    schedule.validate(platform).map_err(failed("schedule validation failed"))?;
    writeln!(out, "--- periodic schedule ---")?;
    write!(out, "{}", schedule.render(platform))?;
    Ok(())
}

/// Runs `steady solve ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let Some(operation) = parsed.positional().first().cloned() else {
        return Err(CliError::Usage(
            "solve needs an operation: scatter, gather, gossip, reduce or prefix".into(),
        ));
    };
    match operation.as_str() {
        "scatter" => scatter(&mut parsed, out),
        "gather" => gather(&mut parsed, out),
        "gossip" => gossip(&mut parsed, out),
        "reduce" => reduce(&mut parsed, out),
        "prefix" => prefix(&mut parsed, out),
        other => Err(CliError::Usage(format!("unknown operation '{other}'"))),
    }
}

fn scatter(parsed: &mut ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let platform = load_platform(parsed.required("platform")?)?;
    let source = parsed.node_value("source")?;
    let targets = parsed.node_list("targets")?;
    let want_schedule = parsed.flag("schedule");
    let want_verify = parsed.flag("verify");

    let problem = ScatterProblem::new(platform, source, targets)
        .map_err(failed("invalid scatter problem"))?;
    let solution = problem.solve().map_err(failed("LP solve failed"))?;
    writeln!(out, "operation          : series of scatters")?;
    writeln!(out, "source             : {}", problem.source())?;
    writeln!(out, "targets            : {}", node_list(problem.targets()))?;
    writeln!(out, "optimal throughput : {} operations per time-unit", solution.throughput())?;
    writeln!(out, "integer period     : {}", solution.period())?;
    if want_verify {
        solution.verify(&problem).map_err(failed("solution verification failed"))?;
        writeln!(out, "verification       : all SSSP(G) constraints hold")?;
    }
    if want_schedule {
        let schedule =
            solution.build_schedule(&problem).map_err(failed("schedule construction failed"))?;
        emit_schedule(out, problem.platform(), &schedule)?;
    }
    Ok(())
}

fn gather(parsed: &mut ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let platform = load_platform(parsed.required("platform")?)?;
    let sources = parsed.node_list("sources")?;
    let sink = parsed.node_value("sink")?;
    let want_schedule = parsed.flag("schedule");
    let want_verify = parsed.flag("verify");

    let problem =
        GatherProblem::new(platform, sources, sink).map_err(failed("invalid gather problem"))?;
    let solution = problem.solve().map_err(failed("LP solve failed"))?;
    writeln!(out, "operation          : series of gathers")?;
    writeln!(out, "sources            : {}", node_list(problem.sources()))?;
    writeln!(out, "sink               : {}", problem.sink())?;
    writeln!(out, "optimal throughput : {} operations per time-unit", solution.throughput())?;
    writeln!(out, "integer period     : {}", solution.period())?;
    if want_verify {
        solution.verify(&problem).map_err(failed("solution verification failed"))?;
        writeln!(out, "verification       : all SSG(G) constraints hold")?;
    }
    if want_schedule {
        let schedule =
            solution.build_schedule(&problem).map_err(failed("schedule construction failed"))?;
        emit_schedule(out, problem.platform(), &schedule)?;
    }
    Ok(())
}

fn gossip(parsed: &mut ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let platform = load_platform(parsed.required("platform")?)?;
    let sources = parsed.node_list("sources")?;
    let targets = parsed.node_list("targets")?;
    let want_schedule = parsed.flag("schedule");

    let problem =
        GossipProblem::new(platform, sources, targets).map_err(failed("invalid gossip problem"))?;
    let solution = problem.solve().map_err(failed("LP solve failed"))?;
    writeln!(out, "operation          : series of gossips (personalized all-to-all)")?;
    writeln!(out, "sources            : {}", node_list(problem.sources()))?;
    writeln!(out, "targets            : {}", node_list(problem.targets()))?;
    writeln!(out, "optimal throughput : {} operations per time-unit", solution.throughput())?;
    writeln!(out, "integer period     : {}", solution.period())?;
    if want_schedule {
        let schedule =
            solution.build_schedule(&problem).map_err(failed("schedule construction failed"))?;
        emit_schedule(out, problem.platform(), &schedule)?;
    }
    Ok(())
}

fn reduce(parsed: &mut ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let platform = load_platform(parsed.required("platform")?)?;
    let participants = parsed.node_list("participants")?;
    let target = parsed.node_value("target")?;
    let size = parsed.ratio_value("size", rat(1, 1))?;
    let task_cost = parsed.ratio_value("task-cost", rat(1, 1))?;
    let want_schedule = parsed.flag("schedule");
    let want_trees = parsed.flag("trees");
    let want_verify = parsed.flag("verify");

    let problem = ReduceProblem::new(platform, participants, target, size, task_cost)
        .map_err(failed("invalid reduce problem"))?;
    let solution = problem.solve().map_err(failed("LP solve failed"))?;
    writeln!(out, "operation          : series of reduces")?;
    writeln!(out, "participants       : {}", node_list(problem.participants()))?;
    writeln!(out, "target             : {}", problem.target())?;
    writeln!(out, "optimal throughput : {} operations per time-unit", solution.throughput())?;
    writeln!(out, "integer period     : {}", solution.period())?;
    if want_verify {
        solution.verify(&problem).map_err(failed("solution verification failed"))?;
        writeln!(out, "verification       : all SSR(G) constraints hold")?;
    }
    if want_trees || want_schedule {
        let trees = solution.extract_trees(&problem).map_err(failed("tree extraction failed"))?;
        if want_trees {
            writeln!(out, "--- reduction trees ({}) ---", trees.len())?;
            for (i, wt) in trees.iter().enumerate() {
                writeln!(
                    out,
                    "tree {i}: weight {} ({} transfers, {} tasks)",
                    wt.weight,
                    wt.tree.num_transfers(),
                    wt.tree.num_tasks()
                )?;
            }
        }
        if want_schedule {
            let schedule = solution
                .build_schedule_from_trees(&problem, &trees)
                .map_err(failed("schedule construction failed"))?;
            emit_schedule(out, problem.platform(), &schedule)?;
        }
    }
    Ok(())
}

fn prefix(parsed: &mut ParsedArgs, out: &mut dyn Write) -> Result<(), CliError> {
    let platform = load_platform(parsed.required("platform")?)?;
    let participants = parsed.node_list("participants")?;
    let size = parsed.ratio_value("size", rat(1, 1))?;
    let task_cost = parsed.ratio_value("task-cost", rat(1, 1))?;
    let want_schedule = parsed.flag("schedule");

    let problem = PrefixProblem::new(platform, participants, size, task_cost)
        .map_err(failed("invalid prefix problem"))?;
    let solution = problem.solve().map_err(failed("LP solve failed"))?;
    let upper = problem.upper_bound().map_err(failed("upper-bound computation failed"))?;
    writeln!(out, "operation          : series of parallel prefixes")?;
    writeln!(out, "participants       : {}", node_list(problem.participants()))?;
    writeln!(out, "achieved throughput: {} operations per time-unit", solution.throughput())?;
    writeln!(out, "upper bound        : {} (best single-rank reduce)", upper)?;
    writeln!(out, "integer period     : {}", solution.period())?;
    if want_schedule {
        let schedule =
            solution.build_schedule(&problem).map_err(failed("schedule construction failed"))?;
        emit_schedule(out, problem.platform(), &schedule)?;
    }
    Ok(())
}

fn node_list(nodes: &[steady_platform::NodeId]) -> String {
    nodes.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(", ")
}
