//! `steady drift-bench` — run the random-walk cost-drift scenario through
//! the serving engine and report the triage split.
//!
//! Each epoch advances the service epoch (expiring the previous epoch's
//! answers under the configured TTL), steps three independent random walks
//! (a star scatter, a star gather and a random reduce), and pushes the
//! drifted queries plus revalidation probes through the service.  The report
//! shows how the drift pipeline fared: how many solves re-priced a cached
//! basis in range, how many were repaired by the dual simplex, how many had
//! to resolve — and, with verification on (the default), confirms every
//! drifted answer equals an independent cold solve's exact rational.
//!
//! With `--min-reuse <fraction>` the run doubles as a CI gate on the drift
//! pipeline's effectiveness: it fails when fewer than that fraction of the
//! triaged solves were answered by the `InRange`/`DualRepair` fast rungs.

use std::io::Write;

use steady_service::{run_drift_load, DriftLoadConfig, Service, ServiceConfig};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &["epochs", "hits-per-epoch", "workers", "ttl", "seed", "out", "min-reuse"],
    flags: &["no-verify", "no-ttl"],
};

/// Runs `steady drift-bench ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let config = DriftLoadConfig {
        epochs: parsed.usize_value("epochs", 40)?,
        hits_per_epoch: parsed.usize_value("hits-per-epoch", 3)?,
        seed: parsed.u64_value("seed", 42)?,
        verify: !parsed.flag("no-verify"),
    };
    // TTL of 0 epochs by default (previous epochs expire immediately);
    // `--no-ttl` isolates pure drift triage with no revalidation traffic.
    let ttl = if parsed.flag("no-ttl") { None } else { Some(parsed.u64_value("ttl", 0)?) };
    let service_config = ServiceConfig {
        workers: parsed.usize_value("workers", 4)?,
        ttl,
        ..ServiceConfig::default()
    };
    let json_path = parsed.value("out").map(str::to_owned);
    let min_reuse: Option<f64> = match parsed.value("min-reuse") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| {
            CliError::Usage(format!("--min-reuse expects a fraction in [0, 1], got '{raw}'"))
        })?),
    };

    let service = Service::start(service_config);
    let report = run_drift_load(&service, &config)
        .map_err(|e| CliError::Failed(format!("drift-bench run failed: {e}")))?;

    writeln!(out, "operation          : drift triage benchmark")?;
    write!(out, "{}", report.render())?;
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json())
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    if let Some(min_reuse) = min_reuse {
        let reuse = report.triage_reuse_fraction();
        writeln!(
            out,
            "reuse gate         : {:.1}% (minimum {:.1}%)",
            reuse * 100.0,
            min_reuse * 100.0
        )?;
        if reuse < min_reuse {
            return Err(CliError::Failed(format!(
                "drift triage reused the basis on only {:.1}% of triaged solves \
                 (minimum {:.1}%): in_range {} + dual_repairs {} of {} triaged",
                reuse * 100.0,
                min_reuse * 100.0,
                report.stats.in_range,
                report.stats.dual_repairs,
                report.stats.triaged,
            )));
        }
    }
    Ok(())
}
