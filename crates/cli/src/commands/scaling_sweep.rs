//! `steady scaling-sweep` — solve clustered scatter (or reduce) LPs at
//! increasing platform sizes and report per-size solver cost.
//!
//! For every requested size a clustered platform
//! ([`steady_platform::generators::clustered`]) is generated, the collective
//! LP is formulated and solved through the certified pipeline with a
//! recording observer tap ([`steady_lp::solve_certified_warm_observed`]) so
//! each size also reports where its wall time went — per-phase milliseconds,
//! refactorization time, degenerate/Bland pivot counts and peak eta-file
//! length — and the answer is verified against
//! the collective's own invariants.  The sizes in the default sweep all land
//! above [`steady_lp::CertifyOptions::revised_threshold`], so this is the
//! end-to-end exercise of the revised sparse simplex: per-size wall-clock
//! time, pivots and basis refactorizations quantify how the sparse path
//! scales where the dense tableau cannot.
//!
//! `--out` writes a machine-readable `BENCH_scaling.json`; with
//! `--budget-ms <N>` the run doubles as a CI gate that fails when any
//! single size's solve exceeds the budget.

use std::io::Write;
use std::time::Instant;

use steady_core::{ReduceProblem, ScatterProblem, SteadyProblem};
use steady_lp::{
    routes_to_revised, Certificate, CertifyOptions, RecordingObserver, SimplexOptions,
};
use steady_platform::generators::{
    clustered_reduce_instance, clustered_scatter_instance, ClusteredConfig,
};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &["sizes", "targets", "participants", "seed", "out", "budget-ms"],
    flags: &["reduce", "no-verify"],
};

/// What one size of the sweep cost and produced.
struct SizeRecord {
    requested: usize,
    nodes: usize,
    vars: usize,
    constraints: usize,
    solve_ms: u128,
    pivots: usize,
    phase1_pivots: usize,
    refactorizations: usize,
    revised_route: bool,
    certificate: &'static str,
    throughput: String,
    // Per-solve breakdown from the solver event stream (schema v2).
    phase1_ms: f64,
    phase2_ms: f64,
    dual_ms: f64,
    refactor_ms: f64,
    degenerate_pivots: usize,
    bland_pivots: usize,
    peak_eta: usize,
}

/// Runs `steady scaling-sweep ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let sizes = parse_sizes(parsed.value("sizes").unwrap_or("200,500,1000"))?;
    let targets = parsed.usize_value("targets", 8)?.max(1);
    // The reduce LP carries one variable per (interval, edge) pair and the
    // interval count is quadratic in the participant count, so the default
    // stays small — raise it deliberately, with a matching budget.
    let participants = parsed.usize_value("participants", 4)?.max(2);
    let seed = parsed.u64_value("seed", 42)?;
    let reduce = parsed.flag("reduce");
    let verify = !parsed.flag("no-verify");
    let json_path = parsed.value("out").map(str::to_owned);
    let budget_ms: Option<u128> = match parsed.value("budget-ms") {
        None => None,
        Some(raw) => Some(raw.parse().map_err(|_| {
            CliError::Usage(format!("--budget-ms expects milliseconds, got '{raw}'"))
        })?),
    };

    // The thousand-node LPs spend well over the default `bland_after`
    // pivots: left at the default, the solver would degrade to Bland's
    // (cycle-proof but slow) rule mid-run for no reason — these LPs are
    // generic enough that Dantzig pricing never cycles on them.
    let options = CertifyOptions {
        simplex: SimplexOptions { bland_after: 1_000_000, ..SimplexOptions::default() },
        ..CertifyOptions::default()
    };

    let collective = if reduce { "reduce" } else { "scatter" };
    writeln!(out, "operation          : solver scaling sweep ({collective})")?;
    if reduce {
        writeln!(out, "participants       : {participants} (spread across clusters)")?;
    } else {
        writeln!(out, "targets            : {targets} (spread across clusters)")?;
    }

    let mut records = Vec::with_capacity(sizes.len());
    for &size in &sizes {
        let config = ClusteredConfig::with_total_nodes(size);
        let record = if reduce {
            let instance = clustered_reduce_instance(&config, participants, seed);
            let nodes = instance.platform.num_nodes();
            let problem = ReduceProblem::from_instance(instance)
                .map_err(|e| CliError::Failed(format!("size {size}: bad reduce instance: {e}")))?;
            solve_one(size, nodes, &problem, &options, verify, |s, p| {
                s.verify(p).map(|()| s.throughput().to_string())
            })?
        } else {
            let instance = clustered_scatter_instance(&config, targets, seed);
            let nodes = instance.platform.num_nodes();
            let problem = ScatterProblem::from_instance(instance)
                .map_err(|e| CliError::Failed(format!("size {size}: bad scatter instance: {e}")))?;
            solve_one(size, nodes, &problem, &options, verify, |s, p| {
                s.verify(p).map(|()| s.throughput().to_string())
            })?
        };
        writeln!(
            out,
            "size {:>5}         : {} nodes, {} vars x {} rows, {} ms, {} pivots \
             ({} phase 1), {} refactorizations, {} route, certificate {}",
            record.requested,
            record.nodes,
            record.vars,
            record.constraints,
            record.solve_ms,
            record.pivots,
            record.phase1_pivots,
            record.refactorizations,
            if record.revised_route { "revised" } else { "dense" },
            record.certificate,
        )?;
        writeln!(
            out,
            "                     breakdown: phase1 {:.1} ms, phase2 {:.1} ms, dual {:.1} ms \
             (refactor {:.1} ms), {} degenerate, {} bland, peak eta {}",
            record.phase1_ms,
            record.phase2_ms,
            record.dual_ms,
            record.refactor_ms,
            record.degenerate_pivots,
            record.bland_pivots,
            record.peak_eta,
        )?;
        records.push(record);
    }

    if let Some(path) = &json_path {
        std::fs::write(path, render_json(collective, targets, participants, seed, &records))
            .map_err(|e| CliError::Failed(format!("cannot write report to '{path}': {e}")))?;
        writeln!(out, "json report        : written to {path}")?;
    }
    if let Some(budget) = budget_ms {
        writeln!(out, "gate               : every solve must finish within {budget} ms")?;
        for r in &records {
            if r.solve_ms > budget {
                return Err(CliError::Failed(format!(
                    "size {} took {} ms, over the {} ms budget \
                     ({} pivots on the {} route)",
                    r.requested,
                    r.solve_ms,
                    budget,
                    r.pivots,
                    if r.revised_route { "revised" } else { "dense" },
                )));
            }
        }
    }
    Ok(())
}

/// Formulates, solves, verifies and measures one collective problem.
fn solve_one<P: SteadyProblem>(
    requested: usize,
    nodes: usize,
    problem: &P,
    options: &CertifyOptions,
    verify: bool,
    check: impl Fn(&P::Solution, &P) -> Result<String, String>,
) -> Result<SizeRecord, CliError> {
    let (lp, vars) = problem.formulate();
    let mut recorder = RecordingObserver::unbounded();
    let start = Instant::now();
    let sol = steady_lp::solve_certified_warm_observed(&lp, options, None, &mut recorder)
        .map_err(|e| CliError::Failed(format!("size {requested}: solve failed: {e}")))?;
    let elapsed = start.elapsed();
    let solve_ms = elapsed.as_millis();
    let recording = recorder.finish();
    let breakdown = recording.breakdown();
    // Self-consistency of the event stream: the phase buckets are carved
    // out of the measured solve, so their sum can never exceed it.
    if breakdown.phase_total_nanos() > elapsed.as_nanos() as u64 {
        return Err(CliError::Failed(format!(
            "size {requested}: phase breakdown ({} ns) exceeds the measured solve \
             ({} ns) — the solver event stream is inconsistent",
            breakdown.phase_total_nanos(),
            elapsed.as_nanos(),
        )));
    }
    let solution = problem.interpret(&vars, &sol.values);
    let throughput = if verify {
        check(&solution, problem)
            .map_err(|e| CliError::Failed(format!("size {requested}: verification failed: {e}")))?
    } else {
        check(&solution, problem).unwrap_or_default()
    };
    Ok(SizeRecord {
        requested,
        nodes,
        vars: lp.num_vars(),
        constraints: lp.num_constraints(),
        solve_ms,
        pivots: sol.iterations,
        phase1_pivots: sol.phase1_iterations,
        refactorizations: sol.refactorizations,
        revised_route: routes_to_revised(&lp, options),
        certificate: match sol.certificate {
            Certificate::Optimal => "optimal",
            Certificate::ExactSimplex => "exact-simplex",
        },
        throughput,
        phase1_ms: breakdown.phase1_nanos as f64 / 1e6,
        phase2_ms: breakdown.phase2_nanos as f64 / 1e6,
        dual_ms: breakdown.dual_nanos as f64 / 1e6,
        refactor_ms: breakdown.refactor_nanos as f64 / 1e6,
        degenerate_pivots: recording.health.degenerate_pivots,
        bland_pivots: recording.health.bland_pivots,
        peak_eta: recording.health.peak_eta,
    })
}

/// Parses `200,500,1000` into a size list.
fn parse_sizes(raw: &str) -> Result<Vec<usize>, CliError> {
    let sizes: Vec<usize> = raw
        .split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| CliError::Usage(format!("'{part}' is not a platform size")))
        })
        .collect::<Result<_, _>>()?;
    if sizes.is_empty() {
        return Err(CliError::Usage("--sizes expects at least one platform size".into()));
    }
    Ok(sizes)
}

/// Renders the machine-readable `BENCH_scaling.json` artifact.
fn render_json(
    collective: &str,
    targets: usize,
    participants: usize,
    seed: u64,
    records: &[SizeRecord],
) -> String {
    let mut json = format!(
        "{{\"schema_version\":2,\"collective\":\"{collective}\",\
         \"targets\":{targets},\"participants\":{participants},\"seed\":{seed},\"sizes\":["
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"requested\":{},\"nodes\":{},\"vars\":{},\"constraints\":{},\
             \"solve_ms\":{},\"pivots\":{},\"phase1_pivots\":{},\
             \"refactorizations\":{},\"route\":\"{}\",\"certificate\":\"{}\",\
             \"throughput\":\"{}\",\
             \"phase1_ms\":{:.3},\"phase2_ms\":{:.3},\"dual_ms\":{:.3},\
             \"refactor_ms\":{:.3},\"degenerate_pivots\":{},\"bland_pivots\":{},\
             \"peak_eta\":{}}}",
            r.requested,
            r.nodes,
            r.vars,
            r.constraints,
            r.solve_ms,
            r.pivots,
            r.phase1_pivots,
            r.refactorizations,
            if r.revised_route { "revised" } else { "dense" },
            r.certificate,
            r.throughput,
            r.phase1_ms,
            r.phase2_ms,
            r.dual_ms,
            r.refactor_ms,
            r.degenerate_pivots,
            r.bland_pivots,
            r.peak_eta,
        ));
    }
    json.push_str("]}");
    json
}
