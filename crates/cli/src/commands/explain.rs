//! `steady explain` — solve one clustered collective instance with full
//! solver instrumentation and print the annotated event timeline.
//!
//! Where `steady scaling-sweep` aggregates per-size totals, `explain` shows
//! *one* solve in the small: every phase transition, refactorization,
//! warm-start outcome and fallback, timestamped from the moment the solver
//! started, with consecutive pivots condensed into per-burst summaries
//! (pass `--pivots` to see each pivot individually).  The default instance
//! is the 200-node clustered scatter of the sweep's smallest size, which
//! routes to the revised sparse simplex and therefore exercises the full
//! event taxonomy of [`steady_lp::SolveEvent`].

use std::io::Write;
use std::time::Instant;

use steady_core::{ReduceProblem, ScatterProblem, SteadyProblem};
use steady_lp::{
    Certificate, CertifyOptions, PivotKind, PivotRule, RecordingObserver, SimplexOptions,
    SolveEvent, SolvePhase, SolveRecording, TimedEvent,
};
use steady_platform::generators::{
    clustered_reduce_instance, clustered_scatter_instance, ClusteredConfig,
};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec {
    valued: &["size", "targets", "participants", "seed"],
    flags: &["reduce", "pivots"],
};

/// Everything one explained solve produced.
struct Explained {
    nodes: usize,
    vars: usize,
    constraints: usize,
    solve_ms: f64,
    iterations: usize,
    certificate: &'static str,
    throughput: String,
    recording: SolveRecording,
}

/// Runs `steady explain ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let size = parsed.usize_value("size", 200)?.max(2);
    let targets = parsed.usize_value("targets", 8)?.max(1);
    let participants = parsed.usize_value("participants", 4)?.max(2);
    let seed = parsed.u64_value("seed", 42)?;
    let reduce = parsed.flag("reduce");
    let show_pivots = parsed.flag("pivots");

    // Same pricing setup as the scaling sweep: these generated LPs never
    // cycle under Dantzig pricing, so the Bland's-rule switch would only
    // slow them down.
    let options = CertifyOptions {
        simplex: SimplexOptions { bland_after: 1_000_000, ..SimplexOptions::default() },
        ..CertifyOptions::default()
    };

    let config = ClusteredConfig::with_total_nodes(size);
    let explained = if reduce {
        let instance = clustered_reduce_instance(&config, participants, seed);
        let nodes = instance.platform.num_nodes();
        let problem = ReduceProblem::from_instance(instance)
            .map_err(|e| CliError::Failed(format!("bad reduce instance: {e}")))?;
        explain_one(nodes, &problem, &options, |s| s.throughput().to_string())?
    } else {
        let instance = clustered_scatter_instance(&config, targets, seed);
        let nodes = instance.platform.num_nodes();
        let problem = ScatterProblem::from_instance(instance)
            .map_err(|e| CliError::Failed(format!("bad scatter instance: {e}")))?;
        explain_one(nodes, &problem, &options, |s| s.throughput().to_string())?
    };

    let collective = if reduce { "reduce" } else { "scatter" };
    writeln!(out, "operation          : annotated solve timeline ({collective})")?;
    writeln!(
        out,
        "instance           : {} nodes (requested {size}), seed {seed}",
        explained.nodes
    )?;
    writeln!(out, "lp                 : {} vars x {} rows", explained.vars, explained.constraints)?;
    writeln!(
        out,
        "solve              : {:.3} ms, {} pivots, certificate {}",
        explained.solve_ms, explained.iterations, explained.certificate
    )?;
    writeln!(out, "throughput         : {}", explained.throughput)?;

    let health = &explained.recording.health;
    writeln!(
        out,
        "health             : {} pivots ({} degenerate, {} bland, {} dual), \
         {} refactorizations, peak eta {} ({} nnz)",
        health.pivots,
        health.degenerate_pivots,
        health.bland_pivots,
        health.dual_pivots,
        health.refactorizations,
        health.peak_eta,
        health.peak_eta_nnz,
    )?;
    let breakdown = explained.recording.breakdown();
    writeln!(
        out,
        "breakdown          : phase1 {:.3} ms, phase2 {:.3} ms, dual {:.3} ms \
         (refactor {:.3} ms, counted in-phase)",
        ms(breakdown.phase1_nanos),
        ms(breakdown.phase2_nanos),
        ms(breakdown.dual_nanos),
        ms(breakdown.refactor_nanos),
    )?;

    writeln!(out, "timeline           :")?;
    write_timeline(out, &explained.recording.events, show_pivots)?;
    if explained.recording.truncated > 0 {
        writeln!(
            out,
            "  (+{} events beyond recording capacity, counted in health)",
            explained.recording.truncated
        )?;
    }
    Ok(())
}

/// Formulates, solves (observed) and interprets one collective problem.
fn explain_one<P: SteadyProblem>(
    nodes: usize,
    problem: &P,
    options: &CertifyOptions,
    throughput: impl Fn(&P::Solution) -> String,
) -> Result<Explained, CliError> {
    let (lp, vars) = problem.formulate();
    let mut recorder = RecordingObserver::unbounded();
    let start = Instant::now();
    let sol = steady_lp::solve_certified_warm_observed(&lp, options, None, &mut recorder)
        .map_err(|e| CliError::Failed(format!("solve failed: {e}")))?;
    let solve_ms = start.elapsed().as_secs_f64() * 1e3;
    let solution = problem.interpret(&vars, &sol.values);
    Ok(Explained {
        nodes,
        vars: lp.num_vars(),
        constraints: lp.num_constraints(),
        solve_ms,
        iterations: sol.iterations,
        certificate: match sol.certificate {
            Certificate::Optimal => "optimal",
            Certificate::ExactSimplex => "exact-simplex",
        },
        throughput: throughput(&solution),
        recording: recorder.finish(),
    })
}

/// Nanoseconds to fractional milliseconds.
fn ms(nanos: u64) -> f64 {
    nanos as f64 / 1e6
}

/// Writes the annotated timeline.  Unless `show_pivots` is set, consecutive
/// pivot (and eta-append) events are condensed into one summary line per
/// burst — the interesting structure is the markers *between* bursts.
fn write_timeline(
    out: &mut dyn Write,
    events: &[TimedEvent],
    show_pivots: bool,
) -> Result<(), CliError> {
    let mut i = 0;
    while i < events.len() {
        let e = &events[i];
        if !show_pivots && condensable(&e.event) {
            let start_ns = e.at_nanos;
            let mut last_ns = start_ns;
            let (mut pivots, mut degenerate, mut bland, mut dual) =
                (0usize, 0usize, 0usize, 0usize);
            let mut last_eta: Option<(usize, usize)> = None;
            while i < events.len() && condensable(&events[i].event) {
                match &events[i].event {
                    SolveEvent::Pivot { rule, kind, degenerate: d, .. } => {
                        pivots += 1;
                        if *d {
                            degenerate += 1;
                        }
                        if *rule == PivotRule::Bland {
                            bland += 1;
                        }
                        if *kind == PivotKind::Dual {
                            dual += 1;
                        }
                    }
                    SolveEvent::EtaAppended { etas, eta_nnz } => last_eta = Some((*etas, *eta_nnz)),
                    _ => unreachable!("condensable() admits only pivot/eta events"),
                }
                last_ns = events[i].at_nanos;
                i += 1;
            }
            let eta_note = match last_eta {
                Some((etas, nnz)) => format!(", eta file at {etas} ({nnz} nnz)"),
                None => String::new(),
            };
            writeln!(
                out,
                "  +{:>10.3} ms  {pivots} pivots over {:.3} ms \
                 ({degenerate} degenerate, {bland} bland, {dual} dual{eta_note})",
                ms(start_ns),
                ms(last_ns.saturating_sub(start_ns)),
            )?;
            continue;
        }
        writeln!(out, "  +{:>10.3} ms  {}", ms(e.at_nanos), label(&e.event))?;
        i += 1;
    }
    Ok(())
}

/// Whether an event belongs inside a condensed pivot burst.
fn condensable(event: &SolveEvent) -> bool {
    matches!(event, SolveEvent::Pivot { .. } | SolveEvent::EtaAppended { .. })
}

/// One human-readable line for a timeline event.
fn label(event: &SolveEvent) -> String {
    match event {
        SolveEvent::RunStarted { path } => format!("run started on the {} path", path.name()),
        SolveEvent::PhaseStarted { phase } => format!("{} began", phase_label(phase)),
        SolveEvent::Pivot { phase, kind, rule, entering, leaving, degenerate } => format!(
            "pivot in {} ({} ratio test, {} rule): column {entering} enters, {leaving} leaves{}",
            phase_label(phase),
            match kind {
                PivotKind::Primal => "primal",
                PivotKind::Dual => "dual",
            },
            match rule {
                PivotRule::Dantzig => "dantzig",
                PivotRule::Bland => "bland",
            },
            if *degenerate { " [degenerate]" } else { "" },
        ),
        SolveEvent::EtaAppended { etas, eta_nnz } => {
            format!("eta appended (file at {etas}, {eta_nnz} nnz)")
        }
        SolveEvent::RefactorStarted { reason, etas, eta_nnz } => {
            format!("refactorization started ({}; {etas} etas, {eta_nnz} nnz)", reason.name())
        }
        SolveEvent::RefactorFinished { lu_nnz, dim } => {
            format!("refactorization finished (LU {lu_nnz} nnz over dimension {dim})")
        }
        SolveEvent::WarmStart { outcome } => format!("warm start: {}", outcome.name()),
        SolveEvent::Fallback { cause } => {
            format!("fell back to the exact simplex ({})", cause.kind_name())
        }
    }
}

/// Phase names spelled out for prose.
fn phase_label(phase: &SolvePhase) -> &'static str {
    match phase {
        SolvePhase::Phase1 => "phase 1 (feasibility search)",
        SolvePhase::Phase2 => "phase 2 (optimization)",
        SolvePhase::DualRepair => "dual repair",
    }
}
