//! `steady demo <name>` — the paper's worked examples, end to end.

use std::io::Write;

use steady_baselines::{
    binomial_reduce, direct_scatter, flat_tree_reduce, measure_pipelined_throughput,
};
use steady_core::reduce::ReduceProblem;
use steady_core::scatter::ScatterProblem;
use steady_platform::generators::{figure2, figure6, figure9};
use steady_runtime::{run_reduce, run_scatter, RunConfig};

use crate::args::{OptionSpec, ParsedArgs};
use crate::CliError;

const SPEC: OptionSpec = OptionSpec { valued: &["participants"], flags: &["full"] };

/// Runs `steady demo ...`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let mut parsed = ParsedArgs::parse(args, &SPEC)?;
    let Some(name) = parsed.positional().first().cloned() else {
        return Err(CliError::Usage("demo needs a name: figure2, figure6 or figure9".into()));
    };
    match name.as_str() {
        "figure2" => demo_figure2(out),
        "figure6" => demo_figure6(out),
        "figure9" => {
            let default = if parsed.flag("full") { 8 } else { 6 };
            let participants = parsed.usize_value("participants", default)?;
            demo_figure9(participants, out)
        }
        other => Err(CliError::Usage(format!("unknown demo '{other}'"))),
    }
}

fn demo_figure2(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "=== Figure 2: toy scatter (one source, two targets) ===")?;
    let problem =
        ScatterProblem::from_instance(figure2()).map_err(|e| CliError::Failed(e.to_string()))?;
    let solution = problem.solve().map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "LP optimal throughput : {} (paper: 1/2)", solution.throughput())?;
    let schedule =
        solution.build_schedule(&problem).map_err(|e| CliError::Failed(e.to_string()))?;
    schedule.validate(problem.platform()).map_err(CliError::Failed)?;
    writeln!(out, "schedule period       : {} ({} slots)", schedule.period, schedule.slots.len())?;

    let ops = 30;
    let baseline =
        measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, ops), ops)
            .map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "direct-scatter baseline: {} ops/time-unit", baseline.throughput)?;

    let report =
        run_scatter(&problem, &schedule, RunConfig::default()).map_err(CliError::Failed)?;
    writeln!(
        out,
        "threaded execution    : {} operations completed over {} periods, {} data errors",
        report.completed_operations,
        report.periods,
        report.errors.len()
    )?;
    Ok(())
}

fn demo_figure6(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "=== Figure 6: toy reduce (3 processors, target P0) ===")?;
    let problem =
        ReduceProblem::from_instance(figure6()).map_err(|e| CliError::Failed(e.to_string()))?;
    let solution = problem.solve().map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "LP optimal throughput : {} (paper: 1)", solution.throughput())?;
    let trees = solution.extract_trees(&problem).map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "reduction trees       : {}", trees.len())?;
    for (i, wt) in trees.iter().enumerate() {
        writeln!(
            out,
            "  tree {i}: weight {} ({} transfers, {} tasks)",
            wt.weight,
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        )?;
    }
    let ops = 20;
    for (name, dag) in [
        ("flat-tree", flat_tree_reduce(&problem, ops)),
        ("binomial ", binomial_reduce(&problem, ops)),
    ] {
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops)
            .map_err(|e| CliError::Failed(e.to_string()))?;
        writeln!(out, "{name} baseline    : {} ops/time-unit", report.throughput)?;
    }
    let report = run_reduce(&problem, &trees, RunConfig::default()).map_err(CliError::Failed)?;
    writeln!(
        out,
        "threaded execution    : {} results, all correct: {}",
        report.completed_operations,
        report.correct_results == report.completed_operations && report.errors.is_empty()
    )?;
    Ok(())
}

fn demo_figure9(participants: usize, out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "=== Figure 9: Tiers platform reduce ({participants} participants) ===")?;
    let instance = figure9();
    let mut picked = instance.participants.clone();
    picked.truncate(participants.max(2));
    if !picked.contains(&instance.target) {
        // Keep the paper's target in the participant set.
        let last = picked.len() - 1;
        picked[last] = instance.target;
    }
    let problem = ReduceProblem::new(
        instance.platform,
        picked,
        instance.target,
        instance.message_size,
        instance.task_cost,
    )
    .map_err(|e| CliError::Failed(e.to_string()))?;
    let solution = problem.solve().map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(
        out,
        "LP optimal throughput : {} (paper: 2/9 on its own link costs)",
        solution.throughput()
    )?;
    let trees = solution.extract_trees(&problem).map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "reduction trees       : {}", trees.len())?;
    let ops = 10;
    let baseline =
        measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, ops), ops)
            .map_err(|e| CliError::Failed(e.to_string()))?;
    writeln!(out, "flat-tree baseline    : {} ops/time-unit", baseline.throughput)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(words: &[&str]) -> String {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn figure2_demo_reports_the_paper_throughput() {
        let text = demo(&["figure2"]);
        assert!(text.contains("1/2"), "{text}");
        assert!(text.contains("threaded execution"));
    }

    #[test]
    fn figure6_demo_reports_trees_and_baselines() {
        let text = demo(&["figure6"]);
        assert!(text.contains("reduction trees"));
        assert!(text.contains("flat-tree baseline"));
        assert!(text.contains("all correct: true"));
    }

    #[test]
    fn figure9_demo_with_few_participants() {
        let text = demo(&["figure9", "--participants", "4"]);
        assert!(text.contains("LP optimal throughput"));
        assert!(text.contains("4 participants"));
    }

    #[test]
    fn unknown_demo_is_rejected() {
        let args = vec!["figure99".to_string()];
        let mut out = Vec::new();
        assert!(matches!(run(&args, &mut out), Err(CliError::Usage(_))));
    }
}
