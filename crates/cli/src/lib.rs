//! `steady` — command-line front-end for the steady-state collective scheduler.
//!
//! The binary exposes the library's main entry points without writing any
//! Rust: describe a platform in the simple text format of
//! [`steady_platform::Platform::from_text`], then ask for the optimal
//! steady-state throughput (and, optionally, the explicit periodic schedule or
//! the reduction trees) of a scatter, gather, gossip, reduce or parallel-prefix
//! series on it.  Topology generation and the paper's worked examples are also
//! available as subcommands.
//!
//! ```text
//! steady solve scatter  --platform net.txt --source 0 --targets 3,4 --schedule
//! steady solve reduce   --platform net.txt --participants 0,1,2 --target 0 --trees
//! steady solve prefix   --platform net.txt --participants 0,1,2
//! steady generate tiers --seed 42 --out platform.txt
//! steady demo figure6
//! steady info --platform net.txt --dot
//! ```
//!
//! Every command is implemented as a library function writing to a generic
//! [`std::io::Write`], so the integration tests drive the exact same code as
//! the binary.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;

use std::io::Write;

use args::ArgError;

/// Error type returned by the command dispatcher.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage (unknown command, bad options); the message is user-facing.
    Usage(String),
    /// The underlying solver, platform or I/O layer failed.
    Failed(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Failed(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Usage(e.0)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Failed(format!("I/O error: {e}"))
    }
}

/// The command overview printed by `steady help`.
pub const HELP: &str = "\
steady — steady-state throughput of collective operations on heterogeneous platforms

USAGE:
  steady solve scatter  --platform FILE --source N --targets A,B,...   [--schedule] [--verify]
  steady solve gather   --platform FILE --sources A,B,... --sink N     [--schedule] [--verify]
  steady solve gossip   --platform FILE --sources A,... --targets B,...
  steady solve reduce   --platform FILE --participants A,B,... --target N
                        [--size R] [--task-cost R] [--trees] [--schedule] [--verify]
  steady solve prefix   --platform FILE --participants A,B,... [--size R] [--task-cost R]
  steady generate TOPO  [--out FILE] [topology options]
          TOPO ∈ {star, chain, clique, grid, ring, torus, hypercube, fat-tree,
                  dumbbell, random, geometric, tiers}
  steady serve-bench    [--queries N] [--clients N] [--distinct N] [--workers N]
                        [--cache-capacity N] [--shards N] [--seed N] [--out FILE] [--schedules]
                        [--baseline FILE] [--snapshot FILE] [--preload FILE]
                        [--max-inflight-cold N] [--cold-queue N] [--trace FILE]
                        [--scheduler thread-per-worker|work-stealing]
  steady sched-bench    [--queries N] [--clients N] [--distinct N] [--workers N] [--prefetch N]
                        [--seed N] [--out FILE] [--baseline FILE] [--p99-margin F]
  steady trace          [--queries N] [--clients N] [--distinct N] [--workers N] [--seed N]
                        [--out FILE] [--metrics] [--prometheus] [--scheduler KIND]
  steady obs-overhead   [--queries N] [--clients N] [--distinct N] [--workers N] [--seed N]
                        [--rounds N] [--max-overhead F] [--out FILE] [--trace-out FILE]
  steady drift-bench    [--epochs N] [--hits-per-epoch N] [--workers N] [--ttl N | --no-ttl]
                        [--seed N] [--out FILE] [--min-reuse F] [--no-verify]
  steady forecast-bench [--epochs N] [--hits-per-epoch N] [--workers N] [--horizon N]
                        [--plan N] [--seed N] [--out FILE] [--min-prefetch-hit F] [--no-verify]
  steady scaling-sweep  [--sizes A,B,...] [--targets N | --reduce [--participants N]]
                        [--seed N] [--out FILE] [--budget-ms N] [--no-verify]
  steady explain        [--size N] [--targets N | --reduce [--participants N]]
                        [--seed N] [--pivots]
  steady demo NAME      NAME ∈ {figure2, figure6, figure9}
  steady info           --platform FILE [--dot]
  steady help

Platforms are plain text: one `node NAME SPEED` or `edge FROM TO COST` per line
(indices refer to declaration order, costs and speeds are rationals like 2/3).
";

/// Runs one command line (without the program name) and writes the report to `out`.
pub fn run(args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        writeln!(out, "{HELP}")?;
        return Err(CliError::Usage("no command given".into()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => {
            writeln!(out, "{HELP}")?;
            Ok(())
        }
        "solve" => commands::solve::run(rest, out),
        "serve-bench" => commands::serve_bench::run(rest, out),
        "sched-bench" => commands::sched_bench::run(rest, out),
        "trace" => commands::trace::run(rest, out),
        "obs-overhead" => commands::obs_overhead::run(rest, out),
        "drift-bench" => commands::drift_bench::run(rest, out),
        "forecast-bench" => commands::forecast_bench::run(rest, out),
        "scaling-sweep" => commands::scaling_sweep::run(rest, out),
        "explain" => commands::explain::run(rest, out),
        "generate" => commands::generate::run(rest, out),
        "demo" => commands::demo::run(rest, out),
        "info" => commands::info::run(rest, out),
        other => Err(CliError::Usage(format!("unknown command '{other}' (try 'steady help')"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_to_string(words: &[&str]) -> Result<String, CliError> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        let mut out = Vec::new();
        run(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("valid utf-8 output"))
    }

    #[test]
    fn help_lists_every_command() {
        let text = run_to_string(&["help"]).unwrap();
        for needle in [
            "solve scatter",
            "solve reduce",
            "serve-bench",
            "sched-bench",
            "trace",
            "obs-overhead",
            "drift-bench",
            "forecast-bench",
            "scaling-sweep",
            "explain",
            "generate",
            "demo",
            "info",
        ] {
            assert!(text.contains(needle), "help misses '{needle}'");
        }
    }

    #[test]
    fn missing_or_unknown_commands_are_usage_errors() {
        assert!(matches!(run_to_string(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run_to_string(&["frobnicate"]), Err(CliError::Usage(_))));
    }
}
