//! Minimal command-line option parser.
//!
//! Only the crates on the allowed dependency list may be used, so argument
//! parsing is hand-rolled: a command line is a sequence of positional words
//! interleaved with `--key value` pairs and boolean `--flag`s.  The parser is
//! deliberately small but strict — unknown options are reported instead of
//! silently ignored, and every accessor records which options were consumed so
//! that leftovers can be flagged.

use std::collections::{BTreeMap, BTreeSet};

use steady_platform::NodeId;
use steady_rational::Ratio;

/// Parsed command line: positional words plus `--key value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct ParsedArgs {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: BTreeSet<String>,
    consumed: BTreeSet<String>,
}

/// Errors produced while parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Options that take a value versus boolean flags, per command.
#[derive(Debug, Clone, Default)]
pub struct OptionSpec {
    /// Option names (without the leading `--`) that expect a value.
    pub valued: &'static [&'static str],
    /// Option names that are boolean flags.
    pub flags: &'static [&'static str],
}

impl ParsedArgs {
    /// Parses raw arguments according to `spec`.
    pub fn parse(args: &[String], spec: &OptionSpec) -> Result<Self, ArgError> {
        let mut out = ParsedArgs::default();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if let Some(name) = arg.strip_prefix("--") {
                if spec.flags.contains(&name) {
                    out.flags.insert(name.to_string());
                } else if spec.valued.contains(&name) {
                    let value = args
                        .get(i + 1)
                        .ok_or_else(|| ArgError(format!("option --{name} expects a value")))?;
                    out.options.insert(name.to_string(), value.clone());
                    i += 1;
                } else {
                    return Err(ArgError(format!("unknown option --{name}")));
                }
            } else {
                out.positional.push(arg.clone());
            }
            i += 1;
        }
        Ok(out)
    }

    /// Positional arguments, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// `true` if the boolean flag was given.
    pub fn flag(&mut self, name: &str) -> bool {
        self.consumed.insert(name.to_string());
        self.flags.contains(name)
    }

    /// The raw value of `--name`, if given.
    pub fn value(&mut self, name: &str) -> Option<&str> {
        self.consumed.insert(name.to_string());
        self.options.get(name).map(|s| s.as_str())
    }

    /// A required `--name value` option.
    pub fn required(&mut self, name: &str) -> Result<&str, ArgError> {
        self.consumed.insert(name.to_string());
        self.options
            .get(name)
            .map(|s| s.as_str())
            .ok_or_else(|| ArgError(format!("missing required option --{name}")))
    }

    /// An optional `usize` value.
    pub fn usize_value(&mut self, name: &str, default: usize) -> Result<usize, ArgError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError(format!("--{name} expects an integer, got '{v}'")))
            }
        }
    }

    /// An optional `u64` value.
    pub fn u64_value(&mut self, name: &str, default: u64) -> Result<u64, ArgError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError(format!("--{name} expects an integer, got '{v}'")))
            }
        }
    }

    /// An optional rational value (`3`, `1/2`, ...).
    pub fn ratio_value(&mut self, name: &str, default: Ratio) -> Result<Ratio, ArgError> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name} expects a rational number, got '{v}'"))),
        }
    }

    /// A required node index (`--name 4`).
    pub fn node_value(&mut self, name: &str) -> Result<NodeId, ArgError> {
        let raw = self.required(name)?;
        let idx: usize = raw
            .parse()
            .map_err(|_| ArgError(format!("--{name} expects a node index, got '{raw}'")))?;
        Ok(NodeId(idx))
    }

    /// A required comma-separated node list (`--name 1,2,3`).
    pub fn node_list(&mut self, name: &str) -> Result<Vec<NodeId>, ArgError> {
        let raw = self.required(name)?.to_string();
        parse_node_list(&raw).map_err(|e| ArgError(format!("--{name}: {e}")))
    }
}

/// Parses `1,2,3` into node ids.
pub fn parse_node_list(raw: &str) -> Result<Vec<NodeId>, String> {
    raw.split(',')
        .filter(|part| !part.trim().is_empty())
        .map(|part| {
            part.trim()
                .parse::<usize>()
                .map(NodeId)
                .map_err(|_| format!("'{part}' is not a node index"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    fn spec() -> OptionSpec {
        OptionSpec {
            valued: &["platform", "source", "targets", "size", "seed"],
            flags: &["schedule", "dot"],
        }
    }

    fn parse(words: &[&str]) -> Result<ParsedArgs, ArgError> {
        let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
        ParsedArgs::parse(&args, &spec())
    }

    #[test]
    fn positional_options_and_flags() {
        let mut p = parse(&["scatter", "--platform", "net.txt", "--schedule", "extra"]).unwrap();
        assert_eq!(p.positional(), &["scatter".to_string(), "extra".to_string()]);
        assert_eq!(p.value("platform"), Some("net.txt"));
        assert!(p.flag("schedule"));
        assert!(!p.flag("dot"));
    }

    #[test]
    fn unknown_option_is_rejected() {
        let err = parse(&["--bogus", "1"]).unwrap_err();
        assert!(err.0.contains("unknown option"));
    }

    #[test]
    fn missing_value_is_rejected() {
        let err = parse(&["--platform"]).unwrap_err();
        assert!(err.0.contains("expects a value"));
    }

    #[test]
    fn required_and_typed_accessors() {
        let mut p =
            parse(&["--source", "3", "--targets", "1, 2,4", "--size", "2/3", "--seed", "7"])
                .unwrap();
        assert_eq!(p.node_value("source").unwrap(), NodeId(3));
        assert_eq!(p.node_list("targets").unwrap(), vec![NodeId(1), NodeId(2), NodeId(4)]);
        assert_eq!(p.ratio_value("size", rat(1, 1)).unwrap(), rat(2, 3));
        assert_eq!(p.u64_value("seed", 0).unwrap(), 7);
        // Absent optional values fall back to their defaults.
        assert_eq!(p.usize_value("rows", 9).unwrap(), 9);
    }

    #[test]
    fn required_missing_reports_error() {
        let mut p = parse(&[]).unwrap();
        assert!(p.required("platform").is_err());
        assert!(p.node_value("source").is_err());
    }

    #[test]
    fn bad_typed_values_report_errors() {
        let mut p = parse(&["--source", "abc", "--size", "x", "--seed", "-1"]).unwrap();
        assert!(p.node_value("source").is_err());
        assert!(p.ratio_value("size", rat(1, 1)).is_err());
        assert!(p.u64_value("seed", 0).is_err());
        assert!(parse_node_list("1,foo").is_err());
    }
}
