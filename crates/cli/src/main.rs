//! The `steady` binary: thin wrapper around [`steady_cli::run`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout().lock();
    match steady_cli::run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("steady: {e}");
            ExitCode::FAILURE
        }
    }
}
