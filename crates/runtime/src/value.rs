//! Concrete payloads carried by the runtime.
//!
//! The paper's reduce operator `⊕` is associative but **not** commutative, so
//! the runtime materializes values as ordered sequences of tagged tokens:
//! combining is concatenation, which is associative and order-sensitive.  Any
//! deviation from the left-to-right rank order (or any mixing of operations
//! with different time-stamps) is therefore immediately visible in the final
//! sequence, which is exactly what the end-to-end correctness checks look for.

/// Token contributed by one participant to one operation.
///
/// Encodes the participant rank and the operation time-stamp in a single
/// `u64` so sequences stay cheap to move between threads.
pub fn encode_token(rank: usize, timestamp: u64) -> u64 {
    ((rank as u64) << 40) | (timestamp & 0xFF_FFFF_FFFF)
}

/// Inverse of [`encode_token`].
pub fn decode_token(token: u64) -> (usize, u64) {
    ((token >> 40) as usize, token & 0xFF_FFFF_FFFF)
}

/// An ordered partial-reduction value: the concatenation of the tokens of a
/// contiguous rank interval, all stamped with the same operation time-stamp.
pub type Seq = Vec<u64>;

/// The leaf value `v[i, i]` of participant `rank` for operation `timestamp`.
pub fn leaf_value(rank: usize, timestamp: u64) -> Seq {
    vec![encode_token(rank, timestamp)]
}

/// The non-commutative reduction operator `⊕`: ordered concatenation.
pub fn combine(left: &Seq, right: &Seq) -> Seq {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

/// The expected complete result `v[0, n]` of operation `timestamp` on a
/// reduction over ranks `0..=n`.
pub fn expected_result(n: usize, timestamp: u64) -> Seq {
    (0..=n).map(|rank| encode_token(rank, timestamp)).collect()
}

/// Checks that `seq` is a well-formed partial value: contiguous ranks
/// `lo..=hi` in order, all carrying the same time-stamp, which is returned.
pub fn check_partial(seq: &Seq, lo: usize, hi: usize) -> Result<u64, String> {
    if seq.len() != hi - lo + 1 {
        return Err(format!("v[{lo},{hi}] has {} tokens instead of {}", seq.len(), hi - lo + 1));
    }
    let (_, ts) = decode_token(seq[0]);
    for (offset, &token) in seq.iter().enumerate() {
        let (rank, t) = decode_token(token);
        if rank != lo + offset {
            return Err(format!(
                "v[{lo},{hi}] token {offset} has rank {rank}, expected {}",
                lo + offset
            ));
        }
        if t != ts {
            return Err(format!(
                "v[{lo},{hi}] mixes time-stamps {ts} and {t} (operator applied across operations)"
            ));
        }
    }
    Ok(ts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrip() {
        for rank in [0usize, 1, 7, 255] {
            for ts in [0u64, 1, 42, 1 << 30] {
                assert_eq!(decode_token(encode_token(rank, ts)), (rank, ts));
            }
        }
    }

    #[test]
    fn combine_is_associative_but_not_commutative() {
        let a = leaf_value(0, 3);
        let b = leaf_value(1, 3);
        let c = leaf_value(2, 3);
        let left = combine(&combine(&a, &b), &c);
        let right = combine(&a, &combine(&b, &c));
        assert_eq!(left, right);
        assert_eq!(left, expected_result(2, 3));
        assert_ne!(combine(&a, &b), combine(&b, &a));
    }

    #[test]
    fn check_partial_accepts_well_formed_values() {
        let v = combine(&leaf_value(1, 9), &leaf_value(2, 9));
        assert_eq!(check_partial(&v, 1, 2).unwrap(), 9);
    }

    #[test]
    fn check_partial_rejects_corruption() {
        // Wrong length.
        assert!(check_partial(&leaf_value(0, 1), 0, 1).is_err());
        // Wrong rank order.
        let swapped = combine(&leaf_value(2, 1), &leaf_value(1, 1));
        assert!(check_partial(&swapped, 1, 2).is_err());
        // Mixed time-stamps.
        let mixed = combine(&leaf_value(1, 1), &leaf_value(2, 2));
        let err = check_partial(&mixed, 1, 2).unwrap_err();
        assert!(err.contains("time-stamps"), "{err}");
    }

    #[test]
    fn expected_result_matches_fold() {
        let n = 4;
        let ts = 17;
        let mut acc = leaf_value(0, ts);
        for rank in 1..=n {
            acc = combine(&acc, &leaf_value(rank, ts));
        }
        assert_eq!(acc, expected_result(n, ts));
    }
}
