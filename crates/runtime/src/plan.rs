//! Per-node execution plans derived from periodic schedules.
//!
//! The LP machinery of `steady-core` produces rational per-time-unit rates and
//! matching-based schedules; to actually move whole messages between threads
//! the runtime first turns them into **integer per-period plans**: for every
//! node, how many messages of each kind it must forward to each neighbour in
//! one period, and (for reduce) how many of each combining task it must run.
//!
//! * [`ScatterPlan::from_schedule`] reads the per-period transfer totals of a
//!   scatter schedule (they are integral once the schedule uses the LCM
//!   period).
//! * [`ReducePlan::from_trees`] works from the weighted reduction trees: each
//!   tree of weight `w` performs `w × T` complete operations per period, and
//!   tagging every transfer and task with its tree keeps the non-commutative
//!   operand pairing unambiguous (the paper's Figure 6(d) does the same by
//!   assigning time-stamps to trees).

use std::collections::BTreeMap;

use steady_core::gather::GatherProblem;
use steady_core::reduce::{Interval, ReduceProblem, Task};
use steady_core::scatter::ScatterProblem;
use steady_core::schedule::{Payload, PeriodicSchedule};
use steady_core::trees::{TreeOp, WeightedTree};
use steady_platform::NodeId;
use steady_rational::{lcm_of_denominators, Ratio};

/// One forwarding obligation of a node within each period of a scatter run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScatterSendOrder {
    /// Neighbour to send to.
    pub to: NodeId,
    /// Final destination of the forwarded messages.
    pub destination: NodeId,
    /// Whole messages to forward per period.
    pub count: u64,
}

/// Integer per-period plan of a scatter schedule.
#[derive(Debug, Clone, Default)]
pub struct ScatterPlan {
    /// Complete scatter operations initiated per period in steady state.
    pub operations_per_period: u64,
    /// Per-node forwarding obligations.
    pub sends: BTreeMap<NodeId, Vec<ScatterSendOrder>>,
}

impl ScatterPlan {
    /// Derives the plan from a schedule built on the LP's integer period.
    ///
    /// Fails if any per-period total is not an integer (which would mean the
    /// schedule was built for a non-integral period).
    pub fn from_schedule(
        problem: &ScatterProblem,
        schedule: &PeriodicSchedule,
    ) -> Result<Self, String> {
        let operations_per_period = ratio_to_u64(&schedule.operations_per_period)
            .ok_or_else(|| "operations per period is not a whole number".to_string())?;
        let mut sends: BTreeMap<NodeId, Vec<ScatterSendOrder>> = BTreeMap::new();
        for ((from, to, payload), count) in schedule.transfer_totals() {
            let Payload::Scatter { destination } = payload else {
                return Err("scatter schedule carries a non-scatter payload".into());
            };
            if !problem.targets().contains(&destination) {
                return Err(format!("schedule routes messages for unknown target {destination}"));
            }
            let count = ratio_to_u64(&count)
                .ok_or_else(|| format!("{from} -> {to} forwards a fractional message count"))?;
            if count == 0 {
                continue;
            }
            sends.entry(from).or_default().push(ScatterSendOrder { to, destination, count });
        }
        Ok(ScatterPlan { operations_per_period, sends })
    }

    /// Total messages forwarded per period across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sends.values().flatten().map(|o| o.count).sum()
    }
}

/// One forwarding obligation of a node within each period of a gather run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GatherSendOrder {
    /// Neighbour to send to.
    pub to: NodeId,
    /// Source processor whose messages are forwarded.
    pub origin: NodeId,
    /// Whole messages to forward per period.
    pub count: u64,
}

/// Integer per-period plan of a gather schedule.
#[derive(Debug, Clone, Default)]
pub struct GatherPlan {
    /// Complete gather operations initiated per period in steady state.
    pub operations_per_period: u64,
    /// Per-node forwarding obligations.
    pub sends: BTreeMap<NodeId, Vec<GatherSendOrder>>,
}

impl GatherPlan {
    /// Derives the plan from a schedule built on the LP's integer period.
    pub fn from_schedule(
        problem: &GatherProblem,
        schedule: &PeriodicSchedule,
    ) -> Result<Self, String> {
        let operations_per_period = ratio_to_u64(&schedule.operations_per_period)
            .ok_or_else(|| "operations per period is not a whole number".to_string())?;
        let mut sends: BTreeMap<NodeId, Vec<GatherSendOrder>> = BTreeMap::new();
        for ((from, to, payload), count) in schedule.transfer_totals() {
            let Payload::Gather { origin } = payload else {
                return Err("gather schedule carries a non-gather payload".into());
            };
            if !problem.sources().contains(&origin) {
                return Err(format!("schedule routes messages of unknown source {origin}"));
            }
            let count = ratio_to_u64(&count)
                .ok_or_else(|| format!("{from} -> {to} forwards a fractional message count"))?;
            if count == 0 {
                continue;
            }
            sends.entry(from).or_default().push(GatherSendOrder { to, origin, count });
        }
        Ok(GatherPlan { operations_per_period, sends })
    }

    /// Total messages forwarded per period across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sends.values().flatten().map(|o| o.count).sum()
    }
}

/// One forwarding obligation of a node within each period of a reduce run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceSendOrder {
    /// Index of the reduction tree this transfer belongs to.
    pub tree: usize,
    /// Neighbour to send to.
    pub to: NodeId,
    /// The partial value moved.
    pub interval: Interval,
    /// Whole messages to forward per period.
    pub count: u64,
}

/// One combining obligation of a node within each period of a reduce run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceComputeOrder {
    /// Index of the reduction tree this task belongs to.
    pub tree: usize,
    /// The task `T_{k,l,m}`.
    pub task: Task,
    /// Tasks to run per period.
    pub count: u64,
}

/// Integer per-period plan of a reduce schedule, organized by reduction tree.
#[derive(Debug, Clone, Default)]
pub struct ReducePlan {
    /// Complete reduce operations per period (sum of the per-tree counts).
    pub operations_per_period: u64,
    /// Operations routed through each tree per period.
    pub tree_counts: Vec<u64>,
    /// Time-stamp offset of each tree inside a period: tree `j` handles the
    /// operations `offset[j] .. offset[j] + count[j]` of every period.
    pub tree_offsets: Vec<u64>,
    /// Per-node forwarding obligations.
    pub sends: BTreeMap<NodeId, Vec<ReduceSendOrder>>,
    /// Per-node combining obligations.
    pub computes: BTreeMap<NodeId, Vec<ReduceComputeOrder>>,
}

impl ReducePlan {
    /// Derives the plan from the weighted reduction trees of a solution.
    pub fn from_trees(problem: &ReduceProblem, trees: &[WeightedTree]) -> Result<Self, String> {
        if trees.is_empty() {
            return Err("no reduction trees".into());
        }
        let weights: Vec<Ratio> = trees.iter().map(|t| t.weight.clone()).collect();
        let period = Ratio::from(lcm_of_denominators(&weights));

        let mut tree_counts = Vec::with_capacity(trees.len());
        let mut tree_offsets = Vec::with_capacity(trees.len());
        let mut sends: BTreeMap<NodeId, Vec<ReduceSendOrder>> = BTreeMap::new();
        let mut computes: BTreeMap<NodeId, Vec<ReduceComputeOrder>> = BTreeMap::new();
        let mut offset = 0u64;

        for (j, wt) in trees.iter().enumerate() {
            let count = ratio_to_u64(&(&wt.weight * &period))
                .ok_or_else(|| format!("tree {j} has a fractional per-period count"))?;
            tree_counts.push(count);
            tree_offsets.push(offset);
            offset += count;
            if count == 0 {
                continue;
            }
            for op in &wt.tree.ops {
                match op {
                    TreeOp::Transfer { from, to, interval, .. } => {
                        sends.entry(*from).or_default().push(ReduceSendOrder {
                            tree: j,
                            to: *to,
                            interval: *interval,
                            count,
                        });
                    }
                    TreeOp::Compute { node, task } => {
                        if problem.task_time(*node).is_none() {
                            return Err(format!("tree {j} assigns a task to router {node}"));
                        }
                        computes.entry(*node).or_default().push(ReduceComputeOrder {
                            tree: j,
                            task: *task,
                            count,
                        });
                    }
                }
            }
        }

        Ok(ReducePlan { operations_per_period: offset, tree_counts, tree_offsets, sends, computes })
    }

    /// Total messages forwarded per period across all nodes.
    pub fn total_messages(&self) -> u64 {
        self.sends.values().flatten().map(|o| o.count).sum()
    }

    /// Total combining tasks executed per period across all nodes.
    pub fn total_tasks(&self) -> u64 {
        self.computes.values().flatten().map(|o| o.count).sum()
    }
}

fn ratio_to_u64(r: &Ratio) -> Option<u64> {
    if !r.is_integer() || r.is_negative() {
        return None;
    }
    r.numer().to_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{figure2, figure6};

    #[test]
    fn scatter_plan_from_figure2() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let plan = ScatterPlan::from_schedule(&problem, &schedule).unwrap();
        assert!(plan.operations_per_period >= 1);
        // The source forwards one message per target per operation.
        let source_out: u64 = plan.sends[&problem.source()].iter().map(|o| o.count).sum();
        assert_eq!(source_out, plan.operations_per_period * problem.targets().len() as u64);
        // Relays forward everything they receive.
        assert!(plan.total_messages() >= source_out);
    }

    #[test]
    fn gather_plan_from_star() {
        use steady_core::gather::GatherProblem;
        use steady_platform::generators;
        use steady_rational::rat;
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = GatherProblem::new(p, leaves.clone(), center).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let plan = GatherPlan::from_schedule(&problem, &schedule).unwrap();
        assert!(plan.operations_per_period >= 1);
        // Each leaf forwards its own stream once per operation.
        for &leaf in &leaves {
            let total: u64 = plan.sends[&leaf].iter().map(|o| o.count).sum();
            assert_eq!(total, plan.operations_per_period);
        }
        assert_eq!(plan.total_messages(), 3 * plan.operations_per_period);
    }

    #[test]
    fn reduce_plan_from_figure6() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        let plan = ReducePlan::from_trees(&problem, &trees).unwrap();
        assert_eq!(plan.tree_counts.len(), trees.len());
        assert_eq!(plan.operations_per_period, plan.tree_counts.iter().sum::<u64>());
        // Offsets partition [0, operations_per_period).
        let mut expected = 0;
        for (o, c) in plan.tree_offsets.iter().zip(&plan.tree_counts) {
            assert_eq!(*o, expected);
            expected += c;
        }
        assert!(plan.total_tasks() >= plan.operations_per_period);
    }

    #[test]
    fn empty_tree_set_is_rejected() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        assert!(ReducePlan::from_trees(&problem, &[]).is_err());
    }
}
