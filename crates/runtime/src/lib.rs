//! Threaded message-passing runtime for steady-state collective schedules.
//!
//! `steady-core` proves that its periodic schedules are one-port feasible and
//! achieve the LP-optimal throughput; `steady-sim` replays them against the
//! analytical resource model.  This crate closes the remaining gap to an
//! MPI-style reality check: it spawns **one thread per platform node**, moves
//! **real payloads** over crossbeam channels following the per-period plan of
//! a schedule, applies a genuinely **non-commutative reduction operator**
//! (ordered concatenation of rank-tagged tokens), and verifies the delivered
//! data end to end:
//!
//! * every scatter message reaches exactly the processor it is addressed to,
//!   with no duplication and no loss beyond the pipeline warm-up;
//! * every reduce result is `v_0 ⊕ v_1 ⊕ … ⊕ v_N` in rank order, built from
//!   contributions of a single operation (no cross-time-stamp mixing), even
//!   though the steady-state schedule splits operations across several
//!   reduction trees and interleaves their messages on the links.
//!
//! # Example
//!
//! ```
//! use steady_core::reduce::ReduceProblem;
//! use steady_platform::generators::figure6;
//! use steady_runtime::{run_reduce, RunConfig};
//!
//! let problem = ReduceProblem::from_instance(figure6()).unwrap();
//! let solution = problem.solve().unwrap();
//! let trees = solution.extract_trees(&problem).unwrap();
//! let report = run_reduce(&problem, &trees, RunConfig::default()).unwrap();
//! assert!(report.errors.is_empty());
//! assert_eq!(report.correct_results, report.completed_operations);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod plan;
pub mod value;

pub use engine::{
    run_gather, run_reduce, run_scatter, GatherRunReport, ReduceRunReport, RunConfig,
    ScatterRunReport,
};
pub use plan::{GatherPlan, ReducePlan, ScatterPlan};
pub use value::{combine, expected_result, leaf_value, Seq};
