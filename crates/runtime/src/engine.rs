//! Threaded message-passing execution of periodic schedules.
//!
//! One OS thread per platform node; messages move over crossbeam channels and
//! every period is bracketed by barriers so the per-period semantics of the
//! steady-state schedules (send what was buffered in previous periods, then
//! collect this period's arrivals) are preserved exactly.  Nothing here is
//! simulated time: the engine checks **data-level correctness** — every
//! scatter message reaches its addressee, every reduce result is the ordered,
//! single-time-stamp concatenation of all participants' contributions — which
//! the analytical simulator of `steady-sim` cannot observe.
//!
//! The run is organised as `production_periods` periods during which the
//! sources/participants mint fresh operations, followed by `drain_periods`
//! periods that flush the pipeline.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::sync::Barrier;

use steady_core::gather::GatherProblem;
use steady_core::reduce::{Interval, ReduceProblem};
use steady_core::scatter::ScatterProblem;
use steady_core::schedule::PeriodicSchedule;
use steady_core::trees::WeightedTree;
use steady_platform::NodeId;

use crate::plan::{GatherPlan, ReducePlan, ScatterPlan};
use crate::value::{check_partial, combine, expected_result, leaf_value, Seq};

/// How long to run a threaded execution.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Periods during which fresh operations are injected.
    pub production_periods: u64,
    /// Extra periods that drain the pipeline after production stops.
    pub drain_periods: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig { production_periods: 20, drain_periods: 10 }
    }
}

impl RunConfig {
    /// Total number of executed periods.
    pub fn total_periods(&self) -> u64 {
        self.production_periods + self.drain_periods
    }
}

/// Outcome of a threaded scatter run.
#[derive(Debug, Clone)]
pub struct ScatterRunReport {
    /// Periods executed (production + drain).
    pub periods: u64,
    /// Operations injected per production period.
    pub operations_per_period: u64,
    /// Operations fully delivered (every target received its message).
    pub completed_operations: u64,
    /// Total messages delivered to their addressees.
    pub messages_delivered: u64,
    /// Data-level violations observed (empty on a correct run).
    pub errors: Vec<String>,
}

/// Outcome of a threaded reduce run.
#[derive(Debug, Clone)]
pub struct ReduceRunReport {
    /// Periods executed (production + drain).
    pub periods: u64,
    /// Operations injected per production period.
    pub operations_per_period: u64,
    /// Complete results delivered to the target.
    pub completed_operations: u64,
    /// Results whose content matched the expected ordered reduction exactly.
    pub correct_results: u64,
    /// Data-level violations observed (empty on a correct run).
    pub errors: Vec<String>,
}

/// Outcome of a threaded gather run.
#[derive(Debug, Clone)]
pub struct GatherRunReport {
    /// Periods executed (production + drain).
    pub periods: u64,
    /// Operations injected per production period.
    pub operations_per_period: u64,
    /// Operations fully delivered (the sink received every source's message).
    pub completed_operations: u64,
    /// Total messages delivered to the sink.
    pub messages_delivered: u64,
    /// Data-level violations observed (empty on a correct run).
    pub errors: Vec<String>,
}

/// Messages exchanged between node threads.
#[derive(Debug, Clone)]
enum Wire {
    Scatter { destination: NodeId, timestamp: u64 },
    Gather { origin: NodeId, timestamp: u64 },
    Partial { tree: usize, interval: Interval, timestamp: u64, seq: Seq },
}

struct Mailboxes {
    senders: Vec<Sender<Wire>>,
    receivers: Vec<Option<Receiver<Wire>>>,
}

fn mailboxes(n: usize) -> Mailboxes {
    let mut senders = Vec::with_capacity(n);
    let mut receivers = Vec::with_capacity(n);
    for _ in 0..n {
        let (s, r) = unbounded();
        senders.push(s);
        receivers.push(Some(r));
    }
    Mailboxes { senders, receivers }
}

/// Executes a scatter schedule with real threads and messages.
///
/// The schedule must have been built on the LP's integer period (the default
/// of [`steady_core::scatter::ScatterSolution::build_schedule`]).
pub fn run_scatter(
    problem: &ScatterProblem,
    schedule: &PeriodicSchedule,
    config: RunConfig,
) -> Result<ScatterRunReport, String> {
    let plan = ScatterPlan::from_schedule(problem, schedule)?;
    let platform = problem.platform();
    let n_nodes = platform.num_nodes();
    let barrier = Arc::new(Barrier::new(n_nodes));
    let shared_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut boxes = mailboxes(n_nodes);
    let total_periods = config.total_periods();

    // delivered[t] collected per node; only targets ever fill theirs.
    let mut per_node_delivered: Vec<Vec<u64>> = vec![Vec::new(); n_nodes];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_nodes);
        for node_index in 0..n_nodes {
            let me = NodeId(node_index);
            let my_orders = plan.sends.get(&me).cloned().unwrap_or_default();
            // lint: allow(panics) — take() invariant: each receiver is moved out exactly once.
            let receiver = boxes.receivers[node_index].take().expect("receiver taken once");
            let senders = boxes.senders.clone();
            let barrier = Arc::clone(&barrier);
            let errors = Arc::clone(&shared_errors);
            let source = problem.source();
            let is_source = me == source;

            handles.push(scope.spawn(move || {
                let mut buffer: BTreeMap<NodeId, VecDeque<u64>> = BTreeMap::new();
                let mut minted: BTreeMap<NodeId, u64> = BTreeMap::new();
                let mut delivered: Vec<u64> = Vec::new();

                for period in 0..total_periods {
                    let producing = period < config.production_periods;

                    // Send phase: forward buffered (or freshly minted) messages.
                    for order in &my_orders {
                        for _ in 0..order.count {
                            let timestamp = if is_source && producing {
                                let counter = minted.entry(order.destination).or_insert(0);
                                let t = *counter;
                                *counter += 1;
                                Some(t)
                            } else {
                                buffer.get_mut(&order.destination).and_then(|q| q.pop_front())
                            };
                            let Some(timestamp) = timestamp else { break };
                            senders[order.to.index()]
                                .send(Wire::Scatter { destination: order.destination, timestamp })
                                // lint: allow(panics) — channel peers outlive the run; a send failure is a harness bug.
                                .expect("receiver alive for the whole run");
                        }
                    }
                    barrier.wait();

                    // Receive phase: collect this period's arrivals.
                    let mut arrivals: Vec<(NodeId, u64)> = Vec::new();
                    while let Ok(msg) = receiver.try_recv() {
                        match msg {
                            Wire::Scatter { destination, timestamp } => {
                                if destination == me {
                                    delivered.push(timestamp);
                                } else {
                                    arrivals.push((destination, timestamp));
                                }
                            }
                            _ => {
                                errors.lock().push(format!(
                                    "{me} received a non-scatter payload during a scatter run"
                                ));
                            }
                        }
                    }
                    for (destination, timestamp) in arrivals {
                        buffer.entry(destination).or_default().push_back(timestamp);
                    }
                    barrier.wait();
                }
                (node_index, delivered)
            }));
        }
        for handle in handles {
            // lint: allow(panics) — propagates a node-thread panic instead of reporting bogus results.
            let (node_index, delivered) = handle.join().expect("node thread panicked");
            per_node_delivered[node_index] = delivered;
        }
    });

    let mut errors = Arc::try_unwrap(shared_errors)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());

    // Per-target verification: distinct time-stamps, nothing delivered to a
    // non-target, completion = slowest target.
    let mut messages_delivered = 0u64;
    let mut completed = u64::MAX;
    for node in platform.node_ids() {
        let delivered = &per_node_delivered[node.index()];
        if problem.targets().contains(&node) {
            messages_delivered += delivered.len() as u64;
            let mut seen = delivered.clone();
            seen.sort_unstable();
            let before = seen.len();
            seen.dedup();
            if seen.len() != before {
                errors.push(format!("target {node} received duplicated messages"));
            }
            completed = completed.min(seen.len() as u64);
        } else if !delivered.is_empty() {
            errors.push(format!("non-target {node} had messages addressed to it"));
        }
    }
    if completed == u64::MAX {
        completed = 0;
    }

    Ok(ScatterRunReport {
        periods: total_periods,
        operations_per_period: plan.operations_per_period,
        completed_operations: completed,
        messages_delivered,
        errors,
    })
}

/// Executes a gather schedule with real threads and messages.
///
/// Every source mints one message per operation; relays forward according to
/// the per-period plan; the sink checks that each arriving message really was
/// emitted by one of the declared sources.
pub fn run_gather(
    problem: &GatherProblem,
    schedule: &PeriodicSchedule,
    config: RunConfig,
) -> Result<GatherRunReport, String> {
    let plan = GatherPlan::from_schedule(problem, schedule)?;
    let platform = problem.platform();
    let n_nodes = platform.num_nodes();
    let sink = problem.sink();
    let barrier = Arc::new(Barrier::new(n_nodes));
    let shared_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut boxes = mailboxes(n_nodes);
    let total_periods = config.total_periods();

    let mut sink_delivered: Vec<(NodeId, u64)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_nodes);
        for node_index in 0..n_nodes {
            let me = NodeId(node_index);
            let my_orders = plan.sends.get(&me).cloned().unwrap_or_default();
            // lint: allow(panics) — take() invariant: each receiver is moved out exactly once.
            let receiver = boxes.receivers[node_index].take().expect("receiver taken once");
            let senders = boxes.senders.clone();
            let barrier = Arc::clone(&barrier);
            let errors = Arc::clone(&shared_errors);
            let is_sink = me == sink;

            handles.push(scope.spawn(move || {
                // buffer[origin] = forwardable messages of that source.
                let mut buffer: BTreeMap<NodeId, VecDeque<u64>> = BTreeMap::new();
                let mut minted = 0u64;
                let mut delivered: Vec<(NodeId, u64)> = Vec::new();

                for period in 0..total_periods {
                    let producing = period < config.production_periods;

                    for order in &my_orders {
                        for _ in 0..order.count {
                            let timestamp = if order.origin == me && producing {
                                let t = minted;
                                minted += 1;
                                Some(t)
                            } else {
                                buffer.get_mut(&order.origin).and_then(|q| q.pop_front())
                            };
                            let Some(timestamp) = timestamp else { break };
                            senders[order.to.index()]
                                .send(Wire::Gather { origin: order.origin, timestamp })
                                // lint: allow(panics) — channel peers outlive the run; a send failure is a harness bug.
                                .expect("receiver alive for the whole run");
                        }
                    }
                    barrier.wait();

                    let mut arrivals: Vec<(NodeId, u64)> = Vec::new();
                    while let Ok(msg) = receiver.try_recv() {
                        match msg {
                            Wire::Gather { origin, timestamp } => {
                                if is_sink {
                                    delivered.push((origin, timestamp));
                                } else {
                                    arrivals.push((origin, timestamp));
                                }
                            }
                            _ => {
                                errors.lock().push(format!(
                                    "{me} received a non-gather payload during a gather run"
                                ));
                            }
                        }
                    }
                    for (origin, timestamp) in arrivals {
                        buffer.entry(origin).or_default().push_back(timestamp);
                    }
                    barrier.wait();
                }
                (node_index, delivered)
            }));
        }
        for handle in handles {
            // lint: allow(panics) — propagates a node-thread panic instead of reporting bogus results.
            let (node_index, delivered) = handle.join().expect("node thread panicked");
            if NodeId(node_index) == sink {
                sink_delivered = delivered;
            } else if !delivered.is_empty() {
                shared_errors
                    .lock()
                    .push(format!("node P{node_index} collected messages but is not the sink"));
            }
        }
    });

    let mut errors = Arc::try_unwrap(shared_errors)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());

    // Per-source verification at the sink.
    let mut per_source: BTreeMap<NodeId, Vec<u64>> = BTreeMap::new();
    for (origin, timestamp) in &sink_delivered {
        if !problem.sources().contains(origin) {
            errors.push(format!("the sink received a message from unknown source {origin}"));
            continue;
        }
        per_source.entry(*origin).or_default().push(*timestamp);
    }
    let mut completed = u64::MAX;
    for &source in problem.sources() {
        let mut stamps = per_source.remove(&source).unwrap_or_default();
        stamps.sort_unstable();
        let before = stamps.len();
        stamps.dedup();
        if stamps.len() != before {
            errors.push(format!("the sink received duplicated messages from {source}"));
        }
        completed = completed.min(stamps.len() as u64);
    }
    if completed == u64::MAX {
        completed = 0;
    }

    Ok(GatherRunReport {
        periods: total_periods,
        operations_per_period: plan.operations_per_period,
        completed_operations: completed,
        messages_delivered: sink_delivered.len() as u64,
        errors,
    })
}

/// Executes a reduce schedule (given by its weighted reduction trees) with
/// real threads, real partial values and a non-commutative operator.
pub fn run_reduce(
    problem: &ReduceProblem,
    trees: &[WeightedTree],
    config: RunConfig,
) -> Result<ReduceRunReport, String> {
    let plan = ReducePlan::from_trees(problem, trees)?;
    let platform = problem.platform();
    let n_nodes = platform.num_nodes();
    let n = problem.last_index();
    let target = problem.target();
    let barrier = Arc::new(Barrier::new(n_nodes));
    let shared_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut boxes = mailboxes(n_nodes);
    let total_periods = config.total_periods();
    let ops_per_period = plan.operations_per_period;

    let mut target_results: Vec<(u64, Seq)> = Vec::new();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n_nodes);
        for node_index in 0..n_nodes {
            let me = NodeId(node_index);
            let my_sends = plan.sends.get(&me).cloned().unwrap_or_default();
            let my_computes = plan.computes.get(&me).cloned().unwrap_or_default();
            // lint: allow(panics) — take() invariant: each receiver is moved out exactly once.
            let receiver = boxes.receivers[node_index].take().expect("receiver taken once");
            let senders = boxes.senders.clone();
            let barrier = Arc::clone(&barrier);
            let errors = Arc::clone(&shared_errors);
            let my_rank = problem.participant_index(me);
            let tree_counts = plan.tree_counts.clone();
            let tree_offsets = plan.tree_offsets.clone();

            handles.push(scope.spawn(move || {
                // buffer[(tree, interval)][timestamp] = partial value.
                let mut buffer: BTreeMap<(usize, Interval), BTreeMap<u64, Seq>> = BTreeMap::new();
                let mut delivered: Vec<(u64, Seq)> = Vec::new();

                for period in 0..total_periods {
                    let producing = period < config.production_periods;

                    // Mint this period's leaf values (participants only).
                    if producing {
                        if let Some(rank) = my_rank {
                            for (tree, (&count, &offset)) in
                                tree_counts.iter().zip(&tree_offsets).enumerate()
                            {
                                for slot in 0..count {
                                    let timestamp = period * ops_per_period + offset + slot;
                                    buffer
                                        .entry((tree, (rank, rank)))
                                        .or_default()
                                        .insert(timestamp, leaf_value(rank, timestamp));
                                }
                            }
                        }
                    }

                    // Send phase.
                    for order in &my_sends {
                        let key = (order.tree, order.interval);
                        for _ in 0..order.count {
                            let Some(map) = buffer.get_mut(&key) else { break };
                            let Some((&timestamp, _)) = map.iter().next() else { break };
                            // lint: allow(panics) — the key was observed in the map on the line above.
                            let seq = map.remove(&timestamp).expect("key just observed");
                            senders[order.to.index()]
                                .send(Wire::Partial {
                                    tree: order.tree,
                                    interval: order.interval,
                                    timestamp,
                                    seq,
                                })
                                // lint: allow(panics) — channel peers outlive the run; a send failure is a harness bug.
                                .expect("receiver alive for the whole run");
                        }
                    }
                    barrier.wait();

                    // Receive phase.
                    let mut arrivals: Vec<((usize, Interval), u64, Seq)> = Vec::new();
                    while let Ok(msg) = receiver.try_recv() {
                        match msg {
                            Wire::Partial { tree, interval, timestamp, seq } => {
                                if let Err(e) = check_partial(&seq, interval.0, interval.1) {
                                    errors.lock().push(format!("{me}: corrupted arrival: {e}"));
                                }
                                if me == target && interval == (0, n) {
                                    delivered.push((timestamp, seq));
                                } else {
                                    arrivals.push(((tree, interval), timestamp, seq));
                                }
                            }
                            _ => {
                                errors.lock().push(format!(
                                    "{me} received a non-reduce payload during a reduce run"
                                ));
                            }
                        }
                    }

                    // Compute phase (uses values buffered in previous periods;
                    // this period's arrivals are merged afterwards).
                    for order in &my_computes {
                        let (k, l, m) = order.task;
                        let left_key = (order.tree, (k, l));
                        let right_key = (order.tree, (l + 1, m));
                        for _ in 0..order.count {
                            let common = {
                                let left = buffer.get(&left_key);
                                let right = buffer.get(&right_key);
                                match (left, right) {
                                    (Some(left), Some(right)) => {
                                        left.keys().find(|ts| right.contains_key(ts)).copied()
                                    }
                                    _ => None,
                                }
                            };
                            let Some(timestamp) = common else { break };
                            let left = buffer
                                .get_mut(&left_key)
                                .and_then(|m| m.remove(&timestamp))
                                // lint: allow(panics) — the compute schedule guarantees both operands buffered.
                                .expect("operand present");
                            let right = buffer
                                .get_mut(&right_key)
                                .and_then(|m| m.remove(&timestamp))
                                // lint: allow(panics) — the compute schedule guarantees both operands buffered.
                                .expect("operand present");
                            let result = combine(&left, &right);
                            if me == target && (k, m) == (0, n) {
                                delivered.push((timestamp, result));
                            } else {
                                buffer
                                    .entry((order.tree, (k, m)))
                                    .or_default()
                                    .insert(timestamp, result);
                            }
                        }
                    }

                    for (key, timestamp, seq) in arrivals {
                        buffer.entry(key).or_default().insert(timestamp, seq);
                    }
                    barrier.wait();
                }
                (node_index, delivered)
            }));
        }
        for handle in handles {
            // lint: allow(panics) — propagates a node-thread panic instead of reporting bogus results.
            let (node_index, delivered) = handle.join().expect("node thread panicked");
            if NodeId(node_index) == target {
                target_results = delivered;
            } else if !delivered.is_empty() {
                shared_errors.lock().push(format!(
                    "node P{node_index} collected final results but is not the target"
                ));
            }
        }
    });

    let mut errors = Arc::try_unwrap(shared_errors)
        .map(|m| m.into_inner())
        .unwrap_or_else(|arc| arc.lock().clone());

    // Verify every delivered result and count distinct completed operations.
    let mut correct = 0u64;
    let mut seen = Vec::with_capacity(target_results.len());
    for (timestamp, seq) in &target_results {
        if seq == &expected_result(n, *timestamp) {
            correct += 1;
        } else {
            errors.push(format!(
                "operation {timestamp} delivered a wrong reduction ({} tokens)",
                seq.len()
            ));
        }
        seen.push(*timestamp);
    }
    seen.sort_unstable();
    let before = seen.len();
    seen.dedup();
    if seen.len() != before {
        errors.push("the target received the same operation twice".into());
    }

    Ok(ReduceRunReport {
        periods: total_periods,
        operations_per_period: ops_per_period,
        completed_operations: seen.len() as u64,
        correct_results: correct,
        errors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure2, figure6};
    use steady_rational::rat;

    #[test]
    fn scatter_run_on_figure2_delivers_correct_messages() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 12, drain_periods: 6 };
        let report = run_scatter(&problem, &schedule, config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        // After the pipeline fills, at least (production - warmup) periods
        // worth of operations complete.
        let expected_min = (config.production_periods - 4) * report.operations_per_period;
        assert!(
            report.completed_operations >= expected_min,
            "only {} operations completed, expected at least {expected_min}",
            report.completed_operations
        );
        // Nothing is created out of thin air.
        let injected = config.production_periods * report.operations_per_period;
        assert!(report.completed_operations <= injected);
    }

    #[test]
    fn scatter_run_on_star_is_exact() {
        // On a star there is no relaying at all, so every injected operation
        // drains within one extra period.
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = ScatterProblem::new(p, center, leaves).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 8, drain_periods: 3 };
        let report = run_scatter(&problem, &schedule, config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            report.completed_operations,
            config.production_periods * report.operations_per_period
        );
    }

    #[test]
    fn gather_run_on_star_is_exact() {
        use steady_core::gather::GatherProblem;
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = GatherProblem::new(p, leaves, center).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 8, drain_periods: 3 };
        let report = run_gather(&problem, &schedule, config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(
            report.completed_operations,
            config.production_periods * report.operations_per_period
        );
        assert_eq!(report.messages_delivered, 3 * report.completed_operations);
    }

    #[test]
    fn gather_run_with_relaying_on_reversed_figure2() {
        use steady_core::gather::GatherProblem;
        let inst = figure2();
        let problem =
            GatherProblem::new(inst.platform.transpose(), inst.targets, inst.source).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 12, drain_periods: 8 };
        let report = run_gather(&problem, &schedule, config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        let expected_min = (config.production_periods - 4) * report.operations_per_period;
        assert!(
            report.completed_operations >= expected_min,
            "only {} operations completed, expected at least {expected_min}",
            report.completed_operations
        );
    }

    #[test]
    fn reduce_run_on_figure6_produces_ordered_results() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        let config = RunConfig { production_periods: 15, drain_periods: 10 };
        let report = run_reduce(&problem, &trees, config).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert_eq!(report.correct_results, report.completed_operations);
        let expected_min = (config.production_periods - 5) * report.operations_per_period;
        assert!(
            report.completed_operations >= expected_min,
            "only {} operations completed, expected at least {expected_min}",
            report.completed_operations
        );
    }

    #[test]
    fn reduce_run_on_two_node_chain() {
        let (p, nodes) = generators::chain(2, rat(1, 1));
        let problem =
            ReduceProblem::new(p, vec![nodes[0], nodes[1]], nodes[0], rat(1, 1), rat(1, 1))
                .unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        let report = run_reduce(&problem, &trees, RunConfig::default()).unwrap();
        assert!(report.errors.is_empty(), "{:?}", report.errors);
        assert!(report.completed_operations > 0);
        assert_eq!(report.correct_results, report.completed_operations);
    }

    #[test]
    fn drain_only_run_completes_nothing() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let schedule = solution.build_schedule(&problem).unwrap();
        let config = RunConfig { production_periods: 0, drain_periods: 5 };
        let report = run_scatter(&problem, &schedule, config).unwrap();
        assert_eq!(report.completed_operations, 0);
        assert_eq!(report.messages_delivered, 0);
        assert!(report.errors.is_empty());
    }
}
