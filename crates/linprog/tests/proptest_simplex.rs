//! Property-based tests for the simplex solvers.
//!
//! Random bounded feasible LPs are generated and the two backends (f64 and
//! exact rational) plus the certified pipeline are cross-checked:
//! * the exact solution is feasible,
//! * the exact and floating objectives agree up to tolerance,
//! * the certified solution equals the exact-simplex solution's objective,
//! * the exact solution is at least as good as a sample of feasible points.

use proptest::prelude::*;
use steady_lp::{solve_certified, solve_exact, solve_f64, LinearExpr, LpProblem, Sense};
use steady_rational::{rat, Ratio};

#[derive(Debug, Clone)]
struct RandomLp {
    num_vars: usize,
    objective: Vec<(i64, i64)>,
    /// Each constraint: coefficients (numer, denom) per variable plus a rhs.
    constraints: Vec<(Vec<(i64, i64)>, i64)>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..5).prop_flat_map(|(nv, nc)| {
        let coeff = (0i64..6, 1i64..4);
        let objective = proptest::collection::vec((1i64..8, 1i64..3), nv);
        let constraint = (proptest::collection::vec(coeff, nv), 1i64..25);
        let constraints = proptest::collection::vec(constraint, nc);
        (objective, constraints).prop_map(move |(objective, constraints)| RandomLp {
            num_vars: nv,
            objective,
            constraints,
        })
    })
}

/// Builds the LP; every variable also gets an individual upper bound so the
/// problem is always bounded and feasible (origin is feasible).
fn build(lp_desc: &RandomLp) -> LpProblem {
    let mut lp = LpProblem::maximize();
    let vars: Vec<_> = (0..lp_desc.num_vars).map(|i| lp.add_var(format!("x{i}"))).collect();
    for (v, (n, d)) in vars.iter().zip(&lp_desc.objective) {
        lp.set_objective(*v, rat(*n, *d));
    }
    for (ci, (coeffs, rhs)) in lp_desc.constraints.iter().enumerate() {
        let mut e = LinearExpr::new();
        for (v, (n, d)) in vars.iter().zip(coeffs) {
            e.add_term(*v, rat(*n, *d));
        }
        if !e.is_empty() {
            lp.add_constraint(format!("c{ci}"), e, Sense::Le, rat(*rhs, 1));
        }
    }
    for (i, v) in vars.iter().enumerate() {
        lp.add_constraint(format!("ub{i}"), LinearExpr::var(*v), Sense::Le, rat(50, 1));
    }
    lp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_solution_is_feasible_and_matches_f64(desc in random_lp_strategy()) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        prop_assert!(lp.check_feasible(&exact.values).is_ok());
        let float = solve_f64(&lp).unwrap();
        let diff = (exact.objective.to_f64() - float.objective).abs();
        prop_assert!(diff <= 1e-6 * exact.objective.to_f64().abs().max(1.0),
            "exact {} vs f64 {}", exact.objective, float.objective);
    }

    #[test]
    fn certified_matches_exact(desc in random_lp_strategy()) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        let certified = solve_certified(&lp).unwrap();
        prop_assert_eq!(certified.objective, exact.objective);
        prop_assert!(lp.check_feasible(&certified.values).is_ok());
    }

    #[test]
    fn optimum_dominates_random_feasible_points(
        desc in random_lp_strategy(),
        samples in proptest::collection::vec(proptest::collection::vec(0u16..100u16, 2..5), 1..8),
    ) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        for sample in samples {
            // Scale an arbitrary non-negative point until feasible (shrink toward 0).
            let mut point: Vec<Ratio> = (0..lp.num_vars())
                .map(|i| rat(*sample.get(i).unwrap_or(&0) as i64, 100))
                .collect();
            for _ in 0..12 {
                if lp.check_feasible(&point).is_ok() {
                    break;
                }
                for p in point.iter_mut() {
                    *p = &*p * &rat(1, 2);
                }
            }
            if lp.check_feasible(&point).is_ok() {
                let val = lp.objective_value(&point);
                prop_assert!(val <= exact.objective,
                    "feasible point with value {} beats 'optimal' {}", val, exact.objective);
            }
        }
    }

    #[test]
    fn duals_certify_upper_bound(desc in random_lp_strategy()) {
        // Weak duality: for any feasible x, c.x <= b.y when y is the optimal dual.
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        let dual_obj: Ratio = lp.constraints().iter().zip(&exact.duals)
            .map(|(c, y)| &c.rhs * y).sum();
        prop_assert_eq!(dual_obj, exact.objective.clone());
    }
}
