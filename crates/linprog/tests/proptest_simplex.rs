//! Property-based tests for the simplex solvers.
//!
//! Random bounded feasible LPs are generated and the two backends (f64 and
//! exact rational) plus the certified pipeline are cross-checked:
//! * the exact solution is feasible,
//! * the exact and floating objectives agree up to tolerance,
//! * the certified solution equals the exact-simplex solution's objective,
//! * the exact solution is at least as good as a sample of feasible points.

use proptest::prelude::*;
use steady_lp::{
    objective_ranging, rhs_ranging, solve_certified, solve_dual_with_basis, solve_exact, solve_f64,
    DualOutcome, LinearExpr, LpProblem, Sense, SimplexError,
};
use steady_rational::{rat, Ratio};

#[derive(Debug, Clone)]
struct RandomLp {
    num_vars: usize,
    objective: Vec<(i64, i64)>,
    /// Each constraint: coefficients (numer, denom) per variable plus a rhs.
    constraints: Vec<(Vec<(i64, i64)>, i64)>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..5).prop_flat_map(|(nv, nc)| {
        let coeff = (0i64..6, 1i64..4);
        let objective = proptest::collection::vec((1i64..8, 1i64..3), nv);
        let constraint = (proptest::collection::vec(coeff, nv), 1i64..25);
        let constraints = proptest::collection::vec(constraint, nc);
        (objective, constraints).prop_map(move |(objective, constraints)| RandomLp {
            num_vars: nv,
            objective,
            constraints,
        })
    })
}

/// Builds the LP; every variable also gets an individual upper bound so the
/// problem is always bounded and feasible (origin is feasible).
fn build(lp_desc: &RandomLp) -> LpProblem {
    let mut lp = LpProblem::maximize();
    let vars: Vec<_> = (0..lp_desc.num_vars).map(|i| lp.add_var(format!("x{i}"))).collect();
    for (v, (n, d)) in vars.iter().zip(&lp_desc.objective) {
        lp.set_objective(*v, rat(*n, *d));
    }
    for (ci, (coeffs, rhs)) in lp_desc.constraints.iter().enumerate() {
        let mut e = LinearExpr::new();
        for (v, (n, d)) in vars.iter().zip(coeffs) {
            e.add_term(*v, rat(*n, *d));
        }
        if !e.is_empty() {
            lp.add_constraint(format!("c{ci}"), e, Sense::Le, rat(*rhs, 1));
        }
    }
    for (i, v) in vars.iter().enumerate() {
        lp.add_constraint(format!("ub{i}"), LinearExpr::var(*v), Sense::Le, rat(50, 1));
    }
    lp
}

/// Augments a random `Le`-only LP with the row shapes the steady-state LPs
/// live in: an equality tying a mirror variable to `x0` and a redundant
/// `>=` floor, both with rhs 0 — the artificial-column regime.
fn augment_with_eq_and_ge(lp: &mut LpProblem) {
    let vars: Vec<_> = lp.vars().collect();
    let mirror = lp.add_var("mirror");
    let mut tie = LinearExpr::new();
    tie.add_term(vars[0], rat(1, 1));
    tie.add_term(mirror, rat(-1, 1));
    lp.add_constraint("tie", tie, Sense::Eq, rat(0, 1));
    let mut floor = LinearExpr::new();
    floor.add_term(vars[0], rat(1, 1));
    floor.add_term(mirror, rat(1, 1));
    lp.add_constraint("floor", floor, Sense::Ge, rat(0, 1));
}

/// Clones `lp` with each constraint's rhs replaced (same variables, same
/// coefficients, same senses) — the LP builder is append-only, so rhs
/// perturbations go through a rebuild.
fn rebuild_with_rhs(lp: &LpProblem, rhs: &[Ratio]) -> LpProblem {
    let mut out = LpProblem::maximize();
    let vars: Vec<_> = lp.vars().map(|v| out.add_var(lp.var_name(v))).collect();
    for v in lp.vars() {
        out.set_objective(vars[v.index()], lp.objective_coeff(v).clone());
    }
    for (c, new_rhs) in lp.constraints().iter().zip(rhs) {
        let mut e = LinearExpr::new();
        for (v, coeff) in c.expr.terms() {
            e.add_term(vars[v.index()], coeff.clone());
        }
        out.add_constraint(c.name.clone(), e, c.sense, new_rhs.clone());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exact_solution_is_feasible_and_matches_f64(desc in random_lp_strategy()) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        prop_assert!(lp.check_feasible(&exact.values).is_ok());
        let float = solve_f64(&lp).unwrap();
        let diff = (exact.objective.to_f64() - float.objective).abs();
        prop_assert!(diff <= 1e-6 * exact.objective.to_f64().abs().max(1.0),
            "exact {} vs f64 {}", exact.objective, float.objective);
    }

    #[test]
    fn certified_matches_exact(desc in random_lp_strategy()) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        let certified = solve_certified(&lp).unwrap();
        prop_assert_eq!(certified.objective, exact.objective);
        prop_assert!(lp.check_feasible(&certified.values).is_ok());
    }

    #[test]
    fn optimum_dominates_random_feasible_points(
        desc in random_lp_strategy(),
        samples in proptest::collection::vec(proptest::collection::vec(0u16..100u16, 2..5), 1..8),
    ) {
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        for sample in samples {
            // Scale an arbitrary non-negative point until feasible (shrink toward 0).
            let mut point: Vec<Ratio> = (0..lp.num_vars())
                .map(|i| rat(*sample.get(i).unwrap_or(&0) as i64, 100))
                .collect();
            for _ in 0..12 {
                if lp.check_feasible(&point).is_ok() {
                    break;
                }
                for p in point.iter_mut() {
                    *p = &*p * &rat(1, 2);
                }
            }
            if lp.check_feasible(&point).is_ok() {
                let val = lp.objective_value(&point);
                prop_assert!(val <= exact.objective,
                    "feasible point with value {} beats 'optimal' {}", val, exact.objective);
            }
        }
    }

    #[test]
    fn dual_simplex_repair_is_exact_under_cost_and_rhs_perturbations(
        desc in random_lp_strategy(),
        cost_scales in proptest::collection::vec((1i64..6, 1i64..6), 8),
        rhs_scales in proptest::collection::vec((1i64..6, 1i64..6), 8),
    ) {
        // Solve the base LP, keep its optimal basis, then perturb every
        // objective coefficient and every rhs by random positive rational
        // factors.  Resuming the perturbed problem from the old basis with
        // the dual simplex must return the bit-identical exact optimum of a
        // cold solve, whatever reuse path it ends up taking.
        let base = build(&desc);
        let basis = solve_exact(&base).unwrap().basis;

        let mut perturbed = base.clone();
        let vars: Vec<_> = perturbed.vars().collect();
        for (j, v) in vars.into_iter().enumerate() {
            let (n, d) = cost_scales[j % cost_scales.len()];
            let scaled = perturbed.objective_coeff(v) * &rat(n, d);
            perturbed.set_objective(v, scaled);
        }
        let rescaled_rhs: Vec<Ratio> = perturbed
            .constraints()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (n, d) = rhs_scales[i % rhs_scales.len()];
                &c.rhs * &rat(n, d)
            })
            .collect();
        let rebuilt = rebuild_with_rhs(&perturbed, &rescaled_rhs);

        let cold = solve_exact(&rebuilt).unwrap();
        let (warm, outcome) = solve_dual_with_basis::<Ratio>(&rebuilt, &basis).unwrap();
        prop_assert_eq!(&warm.objective, &cold.objective);
        prop_assert!(rebuilt.check_feasible(&warm.values).is_ok());
        prop_assert_eq!(rebuilt.objective_value(&warm.values), cold.objective);
        // Pure rhs shrink/stretch keeps dual feasibility, so the repair
        // paths must at least be well-formed; nothing stronger is asserted
        // about *which* path ran — only that the answer is exact.
        match outcome {
            DualOutcome::StillOptimal => prop_assert_eq!(warm.iterations, 0),
            DualOutcome::DualRepaired { pivots } => prop_assert!(pivots >= 1),
            DualOutcome::PrimalReoptimized { pivots } => prop_assert!(pivots >= 1),
            DualOutcome::FellBack => {}
        }
    }

    #[test]
    fn dual_simplex_is_exact_on_lps_with_equality_and_ge_rows(
        desc in random_lp_strategy(),
        rhs_scales in proptest::collection::vec((1i64..6, 1i64..6), 8),
    ) {
        // The steady-state LPs live in the artificial-column regime
        // (zero-rhs equalities, >= rows), which plain `Le`-only instances
        // never reach.  Augment each random LP with an equality tying a
        // mirror variable to x0 and a redundant >= row, solve, perturb the
        // rhs, and demand the dual path still matches a cold solve exactly.
        let mut base = build(&desc);
        let vars: Vec<_> = base.vars().collect();
        let mirror = base.add_var("mirror");
        let mut tie = LinearExpr::new();
        tie.add_term(vars[0], rat(1, 1));
        tie.add_term(mirror, rat(-1, 1));
        base.add_constraint("tie", tie, Sense::Eq, rat(0, 1));
        let mut floor = LinearExpr::new();
        floor.add_term(vars[0], rat(1, 1));
        floor.add_term(mirror, rat(1, 1));
        base.add_constraint("floor", floor, Sense::Ge, rat(0, 1));

        let basis = solve_exact(&base).unwrap().basis;
        let rescaled: Vec<Ratio> = base
            .constraints()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let (n, d) = rhs_scales[i % rhs_scales.len()];
                &c.rhs * &rat(n, d)
            })
            .collect();
        let rebuilt = rebuild_with_rhs(&base, &rescaled);
        let cold = solve_exact(&rebuilt).unwrap();
        let (warm, _) = solve_dual_with_basis::<Ratio>(&rebuilt, &basis).unwrap();
        prop_assert_eq!(&warm.objective, &cold.objective);
        prop_assert!(
            rebuilt.check_feasible(&warm.values).is_ok(),
            "dual reuse returned an infeasible point"
        );
        prop_assert_eq!(rebuilt.objective_value(&warm.values), cold.objective);
    }

    #[test]
    fn in_range_cost_perturbations_keep_the_vertex_optimal(
        desc in random_lp_strategy(),
        pick in 0usize..4,
    ) {
        // Sensitivity ranging: nudging one objective coefficient to a point
        // strictly inside its computed range must keep the old optimal
        // vertex optimal, verified by an independent cold re-solve.
        let lp = build(&desc);
        let cold = solve_exact(&lp).unwrap();
        let ranges = objective_ranging(&lp, &cold.basis).unwrap();
        let j = pick % lp.num_vars();
        let v = lp.vars().nth(j).unwrap();
        let current = lp.objective_coeff(v).clone();
        prop_assert!(ranges[j].contains(&current), "own coefficient outside its range");
        // Midpoint between the coefficient and its nearest finite bound.
        let target = match (&ranges[j].lower, &ranges[j].upper) {
            (_, Some(hi)) => &(&current + hi) / &rat(2, 1),
            (Some(lo), None) => &(&current + lo) / &rat(2, 1),
            (None, None) => current.clone(),
        };
        prop_assert!(ranges[j].contains(&target));
        let mut nudged = lp.clone();
        nudged.set_objective(v, target);
        let re = solve_exact(&nudged).unwrap();
        prop_assert_eq!(
            nudged.objective_value(&cold.values),
            re.objective,
            "the old vertex must still be optimal inside the range"
        );
    }

    #[test]
    fn in_range_rhs_perturbations_reprice_with_zero_pivots(
        desc in random_lp_strategy(),
        pick in 0usize..16,
    ) {
        // rhs ranging: nudging one right-hand side to the midpoint between
        // its current value and its nearest finite bound must keep the
        // installed basis optimal — the dual warm start re-prices it with
        // zero pivots and the answer still equals an independent cold solve.
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();
        let i = pick % lp.num_constraints();
        let current = lp.constraints()[i].rhs.clone();
        prop_assert!(ranges[i].contains(&current), "own rhs outside its range: {:?}", ranges[i]);
        let target = match (&ranges[i].lower, &ranges[i].upper) {
            (_, Some(hi)) => &(&current + hi) / &rat(2, 1),
            (Some(lo), None) => &(&current + lo) / &rat(2, 1),
            (None, None) => current.clone(),
        };
        prop_assert!(ranges[i].contains(&target));

        let rhs: Vec<Ratio> = lp
            .constraints()
            .iter()
            .enumerate()
            .map(|(ci, c)| if ci == i { target.clone() } else { c.rhs.clone() })
            .collect();
        let rebuilt = rebuild_with_rhs(&lp, &rhs);
        let (warm, outcome) = solve_dual_with_basis::<Ratio>(&rebuilt, &cold.basis).unwrap();
        prop_assert!(
            matches!(outcome, DualOutcome::StillOptimal),
            "inside-range rhs nudge was not re-priced in place: {outcome:?}"
        );
        prop_assert_eq!(warm.iterations, 0, "an in-range reprice must spend zero pivots");
        let re = solve_exact(&rebuilt).unwrap();
        prop_assert_eq!(warm.objective, re.objective);
    }

    #[test]
    fn out_of_range_rhs_perturbations_force_repair_pivots(
        desc in random_lp_strategy(),
        pick in 0usize..16,
    ) {
        // Strictly outside the reported interval the old basis is primal
        // infeasible: restoring optimality costs at least one dual repair
        // pivot (or a full fallback / an infeasibility verdict) — never a
        // free StillOptimal re-price.
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();
        let i = pick % lp.num_constraints();
        // Nudge just past a finite bound while keeping the rhs on the same
        // side of zero (crossing zero changes the standard form itself, so
        // nothing about the old basis is even well-defined there).
        let target = if let Some(hi) = &ranges[i].upper {
            hi + &rat(1, 1)
        } else if let Some(lo) = &ranges[i].lower {
            if lo.is_positive() {
                lo / &rat(2, 1)
            } else {
                return Ok(());
            }
        } else {
            return Ok(());
        };
        prop_assert!(!ranges[i].contains(&target));

        let rhs: Vec<Ratio> = lp
            .constraints()
            .iter()
            .enumerate()
            .map(|(ci, c)| if ci == i { target.clone() } else { c.rhs.clone() })
            .collect();
        let rebuilt = rebuild_with_rhs(&lp, &rhs);
        match solve_dual_with_basis::<Ratio>(&rebuilt, &cold.basis) {
            Ok((warm, outcome)) => {
                prop_assert!(
                    !matches!(outcome, DualOutcome::StillOptimal),
                    "an out-of-range rhs must not re-price for free"
                );
                if let DualOutcome::DualRepaired { pivots } = outcome {
                    prop_assert!(pivots >= 1);
                }
                let re = solve_exact(&rebuilt).unwrap();
                prop_assert_eq!(warm.objective, re.objective);
            }
            // The nudge can empty the constraint set entirely (e.g. a pinned
            // redundant equality moved off its twin): also not StillOptimal.
            Err(SimplexError::Infeasible) => {
                prop_assert_eq!(
                    solve_exact(&rebuilt).unwrap_err(),
                    SimplexError::Infeasible
                );
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected solver error: {e}"))),
        }
    }

    #[test]
    fn duals_certify_upper_bound(desc in random_lp_strategy()) {
        // Weak duality: for any feasible x, c.x <= b.y when y is the optimal dual.
        let lp = build(&desc);
        let exact = solve_exact(&lp).unwrap();
        let dual_obj: Ratio = lp.constraints().iter().zip(&exact.duals)
            .map(|(c, y)| &c.rhs * y).sum();
        prop_assert_eq!(dual_obj, exact.objective.clone());
    }
}
