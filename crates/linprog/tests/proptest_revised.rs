//! Property-based parity tests between the revised sparse simplex and the
//! dense tableau.
//!
//! The revised solver is a performance route, not a second algorithm: it
//! runs the same pivot rules over an LU-factorized basis, so on any LP it
//! must return the *bit-identical* exact rational optimum — values,
//! objective and duals — and a [`SolvedBasis`] the dense solver accepts (and
//! vice versa).  Random Le-only LPs plus the Ge/Eq-augmented variants cover
//! the artificial-column regime the steady-state LPs live in.

use proptest::prelude::*;
use steady_lp::{
    solve_exact, solve_revised, solve_revised_with_basis, solve_with_basis, LinearExpr, LpProblem,
    Sense,
};
use steady_rational::{rat, Ratio};

#[derive(Debug, Clone)]
struct RandomLp {
    num_vars: usize,
    objective: Vec<(i64, i64)>,
    /// Each constraint: coefficients (numer, denom) per variable plus a rhs.
    constraints: Vec<(Vec<(i64, i64)>, i64)>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..5).prop_flat_map(|(nv, nc)| {
        let coeff = (0i64..6, 1i64..4);
        let objective = proptest::collection::vec((1i64..8, 1i64..3), nv);
        let constraint = (proptest::collection::vec(coeff, nv), 1i64..25);
        let constraints = proptest::collection::vec(constraint, nc);
        (objective, constraints).prop_map(move |(objective, constraints)| RandomLp {
            num_vars: nv,
            objective,
            constraints,
        })
    })
}

/// Builds the LP; every variable also gets an individual upper bound so the
/// problem is always bounded and feasible (origin is feasible).
fn build(lp_desc: &RandomLp) -> LpProblem {
    let mut lp = LpProblem::maximize();
    let vars: Vec<_> = (0..lp_desc.num_vars).map(|i| lp.add_var(format!("x{i}"))).collect();
    for (v, (n, d)) in vars.iter().zip(&lp_desc.objective) {
        lp.set_objective(*v, rat(*n, *d));
    }
    for (ci, (coeffs, rhs)) in lp_desc.constraints.iter().enumerate() {
        let mut e = LinearExpr::new();
        for (v, (n, d)) in vars.iter().zip(coeffs) {
            e.add_term(*v, rat(*n, *d));
        }
        if !e.is_empty() {
            lp.add_constraint(format!("c{ci}"), e, Sense::Le, rat(*rhs, 1));
        }
    }
    for (i, v) in vars.iter().enumerate() {
        lp.add_constraint(format!("ub{i}"), LinearExpr::var(*v), Sense::Le, rat(50, 1));
    }
    lp
}

/// Adds the row shapes the steady-state LPs live in: an equality tying a
/// mirror variable to `x0` and a redundant `>=` floor, both with rhs 0 —
/// the artificial-column regime.
fn augment_with_eq_and_ge(lp: &mut LpProblem) {
    let vars: Vec<_> = lp.vars().collect();
    let mirror = lp.add_var("mirror");
    let mut tie = LinearExpr::new();
    tie.add_term(vars[0], rat(1, 1));
    tie.add_term(mirror, rat(-1, 1));
    lp.add_constraint("tie", tie, Sense::Eq, rat(0, 1));
    let mut floor = LinearExpr::new();
    floor.add_term(vars[0], rat(1, 1));
    floor.add_term(mirror, rat(1, 1));
    lp.add_constraint("floor", floor, Sense::Ge, rat(0, 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn revised_matches_dense_bit_for_bit(desc in random_lp_strategy()) {
        let lp = build(&desc);
        let dense = solve_exact(&lp).unwrap();
        let revised = solve_revised::<Ratio>(&lp).unwrap();
        prop_assert_eq!(&revised.values, &dense.values);
        prop_assert_eq!(&revised.objective, &dense.objective);
        prop_assert_eq!(&revised.duals, &dense.duals);
        // Cold runs assign rows identically, so even the basis *ordering*
        // and the pivot counts coincide.
        prop_assert_eq!(&revised.basis.cols, &dense.basis.cols);
        prop_assert_eq!(revised.iterations, dense.iterations);
        prop_assert_eq!(revised.phase1_iterations, dense.phase1_iterations);
    }

    #[test]
    fn revised_matches_dense_on_eq_and_ge_rows(desc in random_lp_strategy()) {
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let dense = solve_exact(&lp).unwrap();
        let revised = solve_revised::<Ratio>(&lp).unwrap();
        prop_assert_eq!(&revised.values, &dense.values);
        prop_assert_eq!(&revised.objective, &dense.objective);
        prop_assert_eq!(&revised.duals, &dense.duals);
        prop_assert_eq!(&revised.basis.cols, &dense.basis.cols);
    }

    #[test]
    fn bases_cross_install_between_the_solvers(desc in random_lp_strategy()) {
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let dense = solve_exact(&lp).unwrap();
        let revised = solve_revised::<Ratio>(&lp).unwrap();

        // The revised solver's basis is a valid SolvedBasis for the dense
        // tableau: it installs (warm) and re-proves the same optimum with
        // zero pivots, and symmetrically for the dense basis on the
        // revised solver.
        let dense_warm = solve_with_basis::<Ratio>(&lp, &revised.basis).unwrap();
        prop_assert!(dense_warm.warm_started);
        prop_assert_eq!(dense_warm.iterations, 0);
        prop_assert_eq!(&dense_warm.values, &dense.values);
        prop_assert_eq!(&dense_warm.objective, &dense.objective);
        prop_assert_eq!(&dense_warm.duals, &dense.duals);

        let revised_warm = solve_revised_with_basis::<Ratio>(&lp, &dense.basis).unwrap();
        prop_assert!(revised_warm.warm_started);
        prop_assert_eq!(revised_warm.iterations, 0);
        prop_assert_eq!(&revised_warm.values, &dense.values);
        prop_assert_eq!(&revised_warm.objective, &dense.objective);
        prop_assert_eq!(&revised_warm.duals, &dense.duals);
    }

    #[test]
    fn warm_starts_from_a_stale_basis_still_agree(
        desc in random_lp_strategy(),
        cost_scales in proptest::collection::vec((1i64..6, 1i64..6), 8),
    ) {
        // Perturb the costs after solving, then resume both solvers from
        // the now-stale basis: warm and cold, dense and revised must all
        // land on the same exact optimum (the vertex they re-optimize from
        // differs from the cold start, so only the *answer* is asserted,
        // not the pivot count).
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let basis = solve_exact(&lp).unwrap().basis;

        let vars: Vec<_> = lp.vars().collect();
        for (j, v) in vars.into_iter().enumerate() {
            let (n, d) = cost_scales[j % cost_scales.len()];
            let scaled = lp.objective_coeff(v) * &rat(n, d);
            lp.set_objective(v, scaled);
        }

        let cold = solve_exact(&lp).unwrap();
        let dense_warm = solve_with_basis::<Ratio>(&lp, &basis).unwrap();
        let revised_warm = solve_revised_with_basis::<Ratio>(&lp, &basis).unwrap();
        prop_assert_eq!(&dense_warm.objective, &cold.objective);
        prop_assert_eq!(&revised_warm.objective, &cold.objective);
        prop_assert_eq!(&revised_warm.values, &dense_warm.values);
        prop_assert_eq!(&revised_warm.duals, &dense_warm.duals);
        prop_assert_eq!(revised_warm.warm_started, dense_warm.warm_started);
        prop_assert!(lp.check_feasible(&revised_warm.values).is_ok());
    }
}
