//! Property tests of the observer contract (see `steady_lp::instrument`):
//!
//! 1. **Observation never changes results** — a solve with any observer
//!    attached returns bit-identical values, objective, duals, basis and
//!    per-phase pivot counts to the unobserved solve, on the dense, revised
//!    and dual-simplex paths.
//! 2. **Event-stream conservation** — `Pivot` events equal the reported
//!    `iterations` (and phase-1 pivot events equal `phase1_iterations`):
//!    uncounted pivots (basis installs, artificial drive-out) emit no
//!    events, and counted pivots are never dropped.

use proptest::prelude::*;
use steady_lp::{
    solve_dual_with_basis, solve_dual_with_basis_options_observed, solve_exact, solve_exact_auto,
    solve_exact_auto_observed, solve_revised, solve_revised_report_observed,
    solve_with_options_observed, LinearExpr, LpProblem, RecordingObserver, RevisedOptions, Sense,
    SimplexOptions, SolveEvent, SolvePhase, SolveRecording,
};
use steady_rational::{rat, Ratio};

#[derive(Debug, Clone)]
struct RandomLp {
    num_vars: usize,
    objective: Vec<(i64, i64)>,
    constraints: Vec<(Vec<(i64, i64)>, i64)>,
}

fn random_lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..5, 1usize..5).prop_flat_map(|(nv, nc)| {
        let coeff = (0i64..6, 1i64..4);
        let objective = proptest::collection::vec((1i64..8, 1i64..3), nv);
        let constraint = (proptest::collection::vec(coeff, nv), 1i64..25);
        let constraints = proptest::collection::vec(constraint, nc);
        (objective, constraints).prop_map(move |(objective, constraints)| RandomLp {
            num_vars: nv,
            objective,
            constraints,
        })
    })
}

fn build(lp_desc: &RandomLp) -> LpProblem {
    let mut lp = LpProblem::maximize();
    let vars: Vec<_> = (0..lp_desc.num_vars).map(|i| lp.add_var(format!("x{i}"))).collect();
    for (v, (n, d)) in vars.iter().zip(&lp_desc.objective) {
        lp.set_objective(*v, rat(*n, *d));
    }
    for (ci, (coeffs, rhs)) in lp_desc.constraints.iter().enumerate() {
        let mut e = LinearExpr::new();
        for (v, (n, d)) in vars.iter().zip(coeffs) {
            e.add_term(*v, rat(*n, *d));
        }
        if !e.is_empty() {
            lp.add_constraint(format!("c{ci}"), e, Sense::Le, rat(*rhs, 1));
        }
    }
    for (i, v) in vars.iter().enumerate() {
        lp.add_constraint(format!("ub{i}"), LinearExpr::var(*v), Sense::Le, rat(50, 1));
    }
    lp
}

/// Eq/Ge rows with rhs 0: the artificial-column regime of the steady LPs.
fn augment_with_eq_and_ge(lp: &mut LpProblem) {
    let vars: Vec<_> = lp.vars().collect();
    let mirror = lp.add_var("mirror");
    let mut tie = LinearExpr::new();
    tie.add_term(vars[0], rat(1, 1));
    tie.add_term(mirror, rat(-1, 1));
    lp.add_constraint("tie", tie, Sense::Eq, rat(0, 1));
    let mut floor = LinearExpr::new();
    floor.add_term(vars[0], rat(1, 1));
    floor.add_term(mirror, rat(1, 1));
    lp.add_constraint("floor", floor, Sense::Ge, rat(0, 1));
}

fn pivot_counts(rec: &SolveRecording) -> (usize, usize) {
    let mut total = 0;
    let mut phase1 = 0;
    for e in &rec.events {
        if let SolveEvent::Pivot { phase, .. } = &e.event {
            total += 1;
            if *phase == SolvePhase::Phase1 {
                phase1 += 1;
            }
        }
    }
    (total, phase1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_solve_is_unchanged_and_conserving_under_observation(desc in random_lp_strategy()) {
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let plain = solve_exact(&lp).unwrap();

        let mut rec = RecordingObserver::unbounded();
        let observed = solve_with_options_observed::<Ratio, _>(
            &lp, &SimplexOptions::default(), &mut rec,
        ).unwrap();
        let recording = rec.finish();

        prop_assert_eq!(&observed.values, &plain.values);
        prop_assert_eq!(&observed.objective, &plain.objective);
        prop_assert_eq!(&observed.duals, &plain.duals);
        prop_assert_eq!(&observed.basis.cols, &plain.basis.cols);
        prop_assert_eq!(observed.iterations, plain.iterations);
        prop_assert_eq!(observed.phase1_iterations, plain.phase1_iterations);

        let (pivots, phase1) = pivot_counts(&recording);
        prop_assert_eq!(pivots, plain.iterations);
        prop_assert_eq!(phase1, plain.phase1_iterations);
        prop_assert_eq!(recording.health.pivots, plain.iterations);
    }

    #[test]
    fn revised_solve_is_unchanged_and_conserving_under_observation(desc in random_lp_strategy()) {
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let plain = solve_revised::<Ratio>(&lp).unwrap();

        let mut rec = RecordingObserver::unbounded();
        let (observed, stats) = solve_revised_report_observed::<Ratio, _>(
            &lp, None, &RevisedOptions::default(), &mut rec,
        ).unwrap();
        let recording = rec.finish();

        prop_assert_eq!(&observed.values, &plain.values);
        prop_assert_eq!(&observed.objective, &plain.objective);
        prop_assert_eq!(&observed.duals, &plain.duals);
        prop_assert_eq!(&observed.basis.cols, &plain.basis.cols);
        prop_assert_eq!(observed.iterations, plain.iterations);
        prop_assert_eq!(observed.phase1_iterations, plain.phase1_iterations);

        let (pivots, phase1) = pivot_counts(&recording);
        prop_assert_eq!(pivots, plain.iterations);
        prop_assert_eq!(phase1, plain.phase1_iterations);
        // The health aggregate agrees with the solver's own work counters.
        prop_assert_eq!(recording.health.refactorizations, stats.refactorizations);
        prop_assert_eq!(recording.health.peak_eta, stats.peak_eta);
    }

    #[test]
    fn dual_solve_is_unchanged_and_conserving_under_observation(
        desc in random_lp_strategy(),
        cost_scales in proptest::collection::vec((1i64..6, 1i64..6), 8),
    ) {
        // Solve, perturb the costs, then resume from the stale basis with
        // the dual simplex — the drift-triage path.
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let basis = solve_exact(&lp).unwrap().basis;
        let vars: Vec<_> = lp.vars().collect();
        for (j, v) in vars.into_iter().enumerate() {
            let (n, d) = cost_scales[j % cost_scales.len()];
            let scaled = lp.objective_coeff(v) * &rat(n, d);
            lp.set_objective(v, scaled);
        }

        let (plain, plain_outcome) = solve_dual_with_basis::<Ratio>(&lp, &basis).unwrap();

        let mut rec = RecordingObserver::unbounded();
        let (observed, outcome) = solve_dual_with_basis_options_observed::<Ratio, _>(
            &lp, &basis, &SimplexOptions::default(), &mut rec,
        ).unwrap();
        let recording = rec.finish();

        prop_assert_eq!(outcome, plain_outcome);
        prop_assert_eq!(&observed.values, &plain.values);
        prop_assert_eq!(&observed.objective, &plain.objective);
        prop_assert_eq!(&observed.duals, &plain.duals);
        prop_assert_eq!(&observed.basis.cols, &plain.basis.cols);
        prop_assert_eq!(observed.iterations, plain.iterations);
        prop_assert_eq!(observed.phase1_iterations, plain.phase1_iterations);

        let (pivots, phase1) = pivot_counts(&recording);
        prop_assert_eq!(pivots, plain.iterations);
        prop_assert_eq!(phase1, plain.phase1_iterations);
    }

    #[test]
    fn certified_pipeline_reconciles_with_reported_counters(desc in random_lp_strategy()) {
        let mut lp = build(&desc);
        augment_with_eq_and_ge(&mut lp);
        let plain = solve_exact_auto(&lp).unwrap();

        let mut rec = RecordingObserver::unbounded();
        let observed = solve_exact_auto_observed(&lp, None, &mut rec).unwrap();
        let recording = rec.finish();

        prop_assert_eq!(&observed.values, &plain.values);
        prop_assert_eq!(&observed.objective, &plain.objective);
        prop_assert_eq!(&observed.duals, &plain.duals);
        prop_assert_eq!(observed.iterations, plain.iterations);
        prop_assert_eq!(observed.phase1_iterations, plain.phase1_iterations);

        // Conservation holds whenever no run was abandoned on an f64 error
        // (see `solve_certified_warm_observed`'s caveat); abandoned-run
        // pivots can only add to the stream, never subtract.
        let (pivots, _) = pivot_counts(&recording);
        match &recording.health.fallback {
            None | Some(steady_lp::FallbackCause::CertificationFailed { .. }) => {
                prop_assert_eq!(pivots, plain.iterations);
            }
            _ => prop_assert!(pivots >= plain.iterations),
        }
    }
}
