//! Linear-program model builder.
//!
//! The steady-state LPs of the paper (`SSSP(G)`, `SSPA2A(G)`, `SSR(G)`) are
//! built programmatically: every variable is a named, non-negative rational
//! quantity (a `send(Pi -> Pj, m_k)` rate, a `cons(Pi, T_klm)` rate, or the
//! throughput `TP`), and every constraint is a linear relation between them.
//!
//! [`LpProblem`] collects variables and constraints and is consumed by the
//! solvers in [`crate::simplex`] and [`crate::exact`].

use std::collections::BTreeMap;
use std::fmt;

use steady_rational::Ratio;

/// Identifier of a decision variable inside an [`LpProblem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable in the problem's variable list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr == rhs`
    Eq,
    /// `expr >= rhs`
    Ge,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sense::Le => write!(f, "<="),
            Sense::Eq => write!(f, "=="),
            Sense::Ge => write!(f, ">="),
        }
    }
}

/// Sparse linear expression `sum coeff_i * x_i`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinearExpr {
    /// Map variable -> coefficient; zero coefficients are pruned lazily.
    terms: BTreeMap<VarId, Ratio>,
}

impl LinearExpr {
    /// The empty expression (value 0).
    pub fn new() -> Self {
        LinearExpr { terms: BTreeMap::new() }
    }

    /// Expression consisting of a single variable with coefficient 1.
    pub fn var(v: VarId) -> Self {
        let mut e = LinearExpr::new();
        e.add_term(v, Ratio::one());
        e
    }

    /// Adds `coeff * v` to the expression (accumulating with any existing term).
    pub fn add_term(&mut self, v: VarId, coeff: Ratio) -> &mut Self {
        if coeff.is_zero() {
            return self;
        }
        let entry = self.terms.entry(v).or_insert_with(Ratio::zero);
        *entry = &*entry + &coeff;
        if entry.is_zero() {
            self.terms.remove(&v);
        }
        self
    }

    /// Adds `other` to this expression.
    pub fn add_expr(&mut self, other: &LinearExpr) -> &mut Self {
        for (v, c) in &other.terms {
            self.add_term(*v, c.clone());
        }
        self
    }

    /// Subtracts `other` from this expression.
    pub fn sub_expr(&mut self, other: &LinearExpr) -> &mut Self {
        for (v, c) in &other.terms {
            self.add_term(*v, -c);
        }
        self
    }

    /// Iterates over `(variable, coefficient)` pairs with non-zero coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (VarId, &Ratio)> {
        self.terms.iter().map(|(v, c)| (*v, c))
    }

    /// Number of non-zero terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the expression has no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluates the expression against an assignment of all variables.
    pub fn eval(&self, values: &[Ratio]) -> Ratio {
        let mut acc = Ratio::zero();
        for (v, c) in &self.terms {
            acc += c * &values[v.0];
        }
        acc
    }

    /// Evaluates the expression against an `f64` assignment.
    pub fn eval_f64(&self, values: &[f64]) -> f64 {
        self.terms.iter().map(|(v, c)| c.to_f64() * values[v.0]).sum()
    }
}

/// A single linear constraint `expr (<=|==|>=) rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Optional human-readable label (used in error reporting and dumps).
    pub name: String,
    /// Left-hand side.
    pub expr: LinearExpr,
    /// Relation.
    pub sense: Sense,
    /// Right-hand side constant.
    pub rhs: Ratio,
}

impl Constraint {
    /// Checks whether the constraint holds exactly for `values`.
    pub fn is_satisfied(&self, values: &[Ratio]) -> bool {
        let lhs = self.expr.eval(values);
        match self.sense {
            Sense::Le => lhs <= self.rhs,
            Sense::Eq => lhs == self.rhs,
            Sense::Ge => lhs >= self.rhs,
        }
    }

    /// Signed violation amount (zero when satisfied).
    pub fn violation(&self, values: &[Ratio]) -> Ratio {
        let lhs = self.expr.eval(values);
        match self.sense {
            Sense::Le => (&lhs - &self.rhs).max(Ratio::zero()),
            Sense::Ge => (&self.rhs - &lhs).max(Ratio::zero()),
            Sense::Eq => (&lhs - &self.rhs).abs(),
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// Maximize the objective expression (the default; the paper maximizes TP).
    #[default]
    Maximize,
    /// Minimize the objective expression.
    Minimize,
}

/// A linear program: named non-negative variables, linear constraints and a
/// linear objective.
///
/// All variables are implicitly constrained to be `>= 0`, matching the
/// steady-state formulations where every quantity is a non-negative rate.
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    names: Vec<String>,
    /// Objective coefficients, indexed by variable.
    objective: Vec<Ratio>,
    direction: Objective,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty problem with the given optimization direction.
    pub fn new(direction: Objective) -> Self {
        LpProblem { names: Vec::new(), objective: Vec::new(), direction, constraints: Vec::new() }
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> Self {
        LpProblem::new(Objective::Maximize)
    }

    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        LpProblem::new(Objective::Minimize)
    }

    /// Adds a non-negative variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>) -> VarId {
        self.names.push(name.into());
        self.objective.push(Ratio::zero());
        VarId(self.names.len() - 1)
    }

    /// Sets the objective coefficient of `v`.
    pub fn set_objective(&mut self, v: VarId, coeff: Ratio) {
        self.objective[v.0] = coeff;
    }

    /// Returns the objective coefficient of `v`.
    pub fn objective_coeff(&self, v: VarId) -> &Ratio {
        &self.objective[v.0]
    }

    /// Optimization direction.
    pub fn direction(&self) -> Objective {
        self.direction
    }

    /// Adds the constraint `expr sense rhs`.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        expr: LinearExpr,
        sense: Sense,
        rhs: Ratio,
    ) {
        self.constraints.push(Constraint { name: name.into(), expr, sense, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.names.len()
    }

    /// All variable ids, in declaration order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(VarId)
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// All constraints.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Objective coefficient vector (dense, indexed by variable).
    pub fn objective_vector(&self) -> &[Ratio] {
        &self.objective
    }

    /// Evaluates the objective for an exact assignment.
    pub fn objective_value(&self, values: &[Ratio]) -> Ratio {
        let mut acc = Ratio::zero();
        for (c, v) in self.objective.iter().zip(values) {
            if !c.is_zero() {
                acc += c * v;
            }
        }
        acc
    }

    /// Exact feasibility check of a full assignment (including `x >= 0`).
    ///
    /// Returns the name of the first violated constraint, if any.
    pub fn check_feasible(&self, values: &[Ratio]) -> Result<(), String> {
        if values.len() != self.num_vars() {
            return Err(format!(
                "assignment has {} values but the problem has {} variables",
                values.len(),
                self.num_vars()
            ));
        }
        for (i, v) in values.iter().enumerate() {
            if v.is_negative() {
                return Err(format!("variable {} is negative ({v})", self.names[i]));
            }
        }
        for c in &self.constraints {
            if !c.is_satisfied(values) {
                return Err(format!("constraint '{}' violated by {}", c.name, c.violation(values)));
            }
        }
        Ok(())
    }

    /// Renders the problem in an LP-like textual format (for debugging dumps).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        out.push_str(match self.direction {
            Objective::Maximize => "maximize: ",
            Objective::Minimize => "minimize: ",
        });
        let mut first = true;
        for (i, c) in self.objective.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            if !first {
                out.push_str(" + ");
            }
            out.push_str(&format!("{} {}", c, self.names[i]));
            first = false;
        }
        out.push('\n');
        for c in &self.constraints {
            out.push_str(&format!("  {}: ", c.name));
            let mut first = true;
            for (v, coeff) in c.expr.terms() {
                if !first {
                    out.push_str(" + ");
                }
                out.push_str(&format!("{} {}", coeff, self.names[v.0]));
                first = false;
            }
            out.push_str(&format!(" {} {}\n", c.sense, c.rhs));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn build_small_problem() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.set_objective(y, rat(2, 1));
        let mut e = LinearExpr::new();
        e.add_term(x, rat(1, 1)).add_term(y, rat(1, 1));
        lp.add_constraint("budget", e, Sense::Le, rat(4, 1));

        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.objective_coeff(y), &rat(2, 1));
        let vals = vec![rat(4, 1), rat(0, 1)];
        assert!(lp.check_feasible(&vals).is_ok());
        assert_eq!(lp.objective_value(&vals), rat(12, 1));
        let bad = vec![rat(5, 1), rat(0, 1)];
        assert!(lp.check_feasible(&bad).is_err());
        let neg = vec![rat(-1, 1), rat(0, 1)];
        assert!(lp.check_feasible(&neg).is_err());
    }

    #[test]
    fn expr_accumulates_and_cancels() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let mut e = LinearExpr::new();
        e.add_term(x, rat(1, 2));
        e.add_term(x, rat(1, 2));
        assert_eq!(e.len(), 1);
        assert_eq!(e.eval(&[rat(2, 1)]), rat(2, 1));
        e.add_term(x, rat(-1, 1));
        assert!(e.is_empty());
    }

    #[test]
    fn expr_add_sub() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        let mut a = LinearExpr::new();
        a.add_term(x, rat(1, 1));
        let mut b = LinearExpr::new();
        b.add_term(x, rat(1, 1)).add_term(y, rat(2, 1));
        a.add_expr(&b);
        assert_eq!(a.eval(&[rat(1, 1), rat(1, 1)]), rat(4, 1));
        a.sub_expr(&b);
        assert_eq!(a.eval(&[rat(1, 1), rat(1, 1)]), rat(1, 1));
    }

    #[test]
    fn constraint_violation_amounts() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let c = Constraint {
            name: "c".into(),
            expr: LinearExpr::var(x),
            sense: Sense::Le,
            rhs: rat(1, 1),
        };
        assert_eq!(c.violation(&[rat(3, 1)]), rat(2, 1));
        assert_eq!(c.violation(&[rat(1, 2)]), rat(0, 1));
        let ceq = Constraint { sense: Sense::Eq, ..c.clone() };
        assert_eq!(ceq.violation(&[rat(1, 2)]), rat(1, 2));
        let cge = Constraint { sense: Sense::Ge, ..c };
        assert_eq!(cge.violation(&[rat(1, 2)]), rat(1, 2));
        assert_eq!(cge.violation(&[rat(2, 1)]), rat(0, 1));
    }

    #[test]
    fn dump_contains_names() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("tp");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("cap", LinearExpr::var(x), Sense::Le, rat(1, 2));
        let dump = lp.dump();
        assert!(dump.contains("maximize"));
        assert!(dump.contains("tp"));
        assert!(dump.contains("cap"));
        assert!(dump.contains("1/2"));
    }
}
