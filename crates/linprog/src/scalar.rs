//! Numeric abstraction used by the simplex implementation.
//!
//! The same tableau code runs either in floating point (fast, used to locate
//! the optimal vertex on large instances) or in exact rationals (used for
//! small instances and for certification).  [`Scalar`] captures the handful of
//! operations the pivoting code needs; the `f64` implementation compares with
//! a tolerance while the [`Ratio`] implementation is exact.

use steady_rational::Ratio;

/// Field operations and sign tests required by the simplex tableau.
pub trait Scalar: Clone + std::fmt::Debug {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Conversion from an exact rational coefficient.
    fn from_ratio(r: &Ratio) -> Self;
    /// Addition.
    fn add(&self, o: &Self) -> Self;
    /// Subtraction.
    fn sub(&self, o: &Self) -> Self;
    /// Multiplication.
    fn mul(&self, o: &Self) -> Self;
    /// Division.
    fn div(&self, o: &Self) -> Self;
    /// Negation.
    fn neg(&self) -> Self;
    /// `true` if the value should be treated as exactly zero.
    fn is_zero(&self) -> bool;
    /// `true` if the value is strictly positive (beyond tolerance).
    fn is_positive(&self) -> bool;
    /// `true` if the value is strictly negative (beyond tolerance).
    fn is_negative(&self) -> bool;
    /// Strict less-than comparison.
    fn lt(&self, o: &Self) -> bool;
    /// Lossy conversion used for reporting.
    fn to_f64(&self) -> f64;
    /// Conversion to an exact rational (possibly approximate for `f64`).
    fn to_ratio(&self) -> Ratio;
}

/// Absolute tolerance used by the floating-point instantiation.
pub const F64_EPS: f64 = 1e-9;

impl Scalar for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn from_ratio(r: &Ratio) -> Self {
        r.to_f64()
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        self.abs() <= F64_EPS
    }
    fn is_positive(&self) -> bool {
        *self > F64_EPS
    }
    fn is_negative(&self) -> bool {
        *self < -F64_EPS
    }
    fn lt(&self, o: &Self) -> bool {
        self < o
    }
    fn to_f64(&self) -> f64 {
        *self
    }
    fn to_ratio(&self) -> Ratio {
        Ratio::approximate_f64(*self, 1_000_000_000).unwrap_or_else(Ratio::zero)
    }
}

impl Scalar for Ratio {
    fn zero() -> Self {
        Ratio::zero()
    }
    fn one() -> Self {
        Ratio::one()
    }
    fn from_ratio(r: &Ratio) -> Self {
        r.clone()
    }
    fn add(&self, o: &Self) -> Self {
        self + o
    }
    fn sub(&self, o: &Self) -> Self {
        self - o
    }
    fn mul(&self, o: &Self) -> Self {
        self * o
    }
    fn div(&self, o: &Self) -> Self {
        self / o
    }
    fn neg(&self) -> Self {
        -self
    }
    fn is_zero(&self) -> bool {
        Ratio::is_zero(self)
    }
    fn is_positive(&self) -> bool {
        Ratio::is_positive(self)
    }
    fn is_negative(&self) -> bool {
        Ratio::is_negative(self)
    }
    fn lt(&self, o: &Self) -> bool {
        self < o
    }
    fn to_f64(&self) -> f64 {
        Ratio::to_f64(self)
    }
    fn to_ratio(&self) -> Ratio {
        self.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn f64_tolerance() {
        assert!(Scalar::is_zero(&1e-12f64));
        assert!(!Scalar::is_zero(&1e-6f64));
        assert!(Scalar::is_positive(&1e-6f64));
        assert!(Scalar::is_negative(&-1e-6f64));
        assert!(!Scalar::is_positive(&1e-12f64));
    }

    #[test]
    fn ratio_exactness() {
        let a = rat(1, 3);
        let b = rat(2, 3);
        assert!(Scalar::is_zero(&a.add(&b).sub(&Ratio::one())));
        assert!(Scalar::is_positive(&rat(1, 1_000_000_000)));
    }

    #[test]
    fn round_trips() {
        assert_eq!(<f64 as Scalar>::from_ratio(&rat(1, 2)), 0.5);
        assert_eq!(Scalar::to_ratio(&0.5f64), rat(1, 2));
        assert_eq!(<Ratio as Scalar>::from_ratio(&rat(5, 7)), rat(5, 7));
    }
}
