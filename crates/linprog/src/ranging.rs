//! Post-optimal sensitivity ranging.
//!
//! After an LP is solved, each objective coefficient `c_j` can move within an
//! interval — the *optimality range* — without changing the optimal **basis**
//! (and hence the optimal vertex; the objective *value* moves linearly with
//! `c_j` when `x_j > 0`).  For the steady-state serving stack this is the
//! cheap side of drift triage: a cached [`SolvedBasis`] together with the
//! ranges tells, without a single pivot, whether a perturbed objective still
//! has the same optimal solution.
//!
//! The classical derivation, specialized to the tableau kept by
//! [`crate::simplex`] (maximization form, reduced costs `r_k <= 0` at the
//! optimum):
//!
//! * **non-basic `j`** — only `r_j` depends on `c_j`, and linearly:
//!   `c_j` may decrease without bound and increase by at most `-r_j`;
//! * **basic `j` (in row `i`)** — a change `δ` shifts every non-basic
//!   reduced cost by `-δ · T[i][k]`, so `δ` is bounded below by
//!   `max { r_k / T[i][k] : T[i][k] > 0 }` and above by
//!   `min { r_k / T[i][k] : T[i][k] < 0 }` over entering-eligible columns.
//!
//! Minimization problems are handled by computing in maximization form and
//! mirroring the interval back.  All arithmetic is exact rational, so a
//! coefficient strictly inside its range provably keeps the basis optimal.
//!
//! [`rhs_ranging`] is the dual analogue: each constraint's right-hand side
//! `b_i` gets the interval it may move in while the basis stays optimal.  A
//! rhs change never touches the reduced costs (dual feasibility is a
//! property of the objective), only the basic values `B⁻¹ b`, which move
//! linearly along the column `B⁻¹ e_i` — readable directly from the final
//! tableau under the column that formed row `i`'s initial identity.  The
//! steady-state forecaster uses these intervals to predict, without
//! installing the basis, whether a drifted problem will still re-price
//! `InRange` with zero pivots.

use crate::model::{LpProblem, Objective};
use crate::simplex::{install_for_ranging, InstallVerdict, SolvedBasis};
use steady_rational::Ratio;

/// Optimality interval of one objective coefficient; `None` bounds are
/// infinite.  Both bounds are inclusive: at a boundary the basis is still
/// optimal, tied with a neighbouring one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostRange {
    /// Greatest lower bound on the coefficient (`None` = unbounded below).
    pub lower: Option<Ratio>,
    /// Least upper bound on the coefficient (`None` = unbounded above).
    pub upper: Option<Ratio>,
}

impl CostRange {
    /// `true` when `value` lies within the (inclusive) range.
    pub fn contains(&self, value: &Ratio) -> bool {
        self.lower.as_ref().is_none_or(|lo| lo <= value)
            && self.upper.as_ref().is_none_or(|hi| value <= hi)
    }
}

/// Optimality interval of one constraint's right-hand side; `None` bounds
/// are infinite.  Both bounds are inclusive: at a boundary the basis is
/// still optimal (a basic variable sits exactly at zero, tied with a
/// neighbouring basis).
///
/// The interval is additionally clamped to the side of zero the current rhs
/// lies on: crossing zero changes the solver's standard form itself (the
/// constraint is renormalized with different slack/artificial columns), so
/// the basis — a set of standard-form columns — is not even *defined* on
/// the far side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RhsRange {
    /// Greatest lower bound on the right-hand side (`None` = unbounded below).
    pub lower: Option<Ratio>,
    /// Least upper bound on the right-hand side (`None` = unbounded above).
    pub upper: Option<Ratio>,
}

impl RhsRange {
    /// `true` when `value` lies within the (inclusive) range.
    pub fn contains(&self, value: &Ratio) -> bool {
        self.lower.as_ref().is_none_or(|lo| lo <= value)
            && self.upper.as_ref().is_none_or(|hi| value <= hi)
    }
}

/// Errors raised by [`objective_ranging`] and [`rhs_ranging`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RangingError {
    /// The basis does not fit the problem's standard form, or is singular
    /// for its data.
    UnusableBasis,
    /// The basis installed cleanly but is not optimal for the problem, so
    /// ranging around it is meaningless.
    NotOptimal,
}

impl std::fmt::Display for RangingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangingError::UnusableBasis => {
                write!(f, "the basis does not fit this problem's standard form")
            }
            RangingError::NotOptimal => {
                write!(f, "the basis is not optimal for this problem")
            }
        }
    }
}

impl std::error::Error for RangingError {}

/// Computes, for every structural variable, the interval its objective
/// coefficient may move in (the others held fixed) while `basis` remains
/// optimal for `problem`.
///
/// `basis` must be an optimal basis of `problem` — typically
/// [`Solution::basis`](crate::simplex::Solution) from a prior solve; anything
/// else is rejected rather than silently ranged around.
pub fn objective_ranging(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<Vec<CostRange>, RangingError> {
    let tableau = match install_for_ranging(problem, basis) {
        InstallVerdict::Optimal(t) => t,
        InstallVerdict::Unusable => return Err(RangingError::UnusableBasis),
        InstallVerdict::NotOptimal => return Err(RangingError::NotOptimal),
    };
    let minimize = matches!(problem.direction(), Objective::Minimize);
    let objective = problem.objective_vector();

    // Row in which each structural column is basic, if any.
    let mut basic_in_row = vec![None; tableau.n_structural];
    for (row, &col) in tableau.basis.iter().enumerate() {
        if col < tableau.n_structural {
            basic_in_row[col] = Some(row);
        }
    }
    let in_basis = |col: usize| tableau.basis.contains(&col);

    let ranges = (0..tableau.n_structural)
        .map(|j| {
            // Work in maximization form (coefficients negated for Minimize).
            let c_max = if minimize { -&objective[j] } else { objective[j].clone() };
            let (lo_max, hi_max) = match basic_in_row[j] {
                None => {
                    // Non-basic: r_j may rise by -r_j before turning positive.
                    (None, Some(&c_max - &tableau.reduced[j]))
                }
                Some(row) => {
                    // Basic: bound the shift by the dual ratio over the row.
                    let mut delta_lo: Option<Ratio> = None;
                    let mut delta_hi: Option<Ratio> = None;
                    for (k, t) in tableau.rows[row].iter().enumerate() {
                        if !tableau.allowed[k] || t.is_zero() || in_basis(k) {
                            continue;
                        }
                        let ratio = &tableau.reduced[k] / t;
                        if t.is_positive() {
                            if delta_lo.as_ref().is_none_or(|lo| *lo < ratio) {
                                delta_lo = Some(ratio);
                            }
                        } else if delta_hi.as_ref().is_none_or(|hi| ratio < *hi) {
                            delta_hi = Some(ratio);
                        }
                    }
                    (delta_lo.map(|d| &c_max + &d), delta_hi.map(|d| &c_max + &d))
                }
            };
            if minimize {
                // Mirror the maximization-form interval back.
                CostRange { lower: hi_max.map(|h| -&h), upper: lo_max.map(|l| -&l) }
            } else {
                CostRange { lower: lo_max, upper: hi_max }
            }
        })
        .collect();
    Ok(ranges)
}

/// Computes, for every constraint, the interval its right-hand side may move
/// in (the others held fixed) while `basis` remains optimal for `problem` —
/// the dual analogue of [`objective_ranging`].
///
/// Inside the interval the optimal *basis* is unchanged: resuming the
/// perturbed problem from it ([`crate::solve_dual_with_basis`]) re-prices
/// with **zero pivots**, and the objective moves linearly with the dual
/// price of the row.  Strictly outside, at least one basic value turns
/// negative and restoring optimality costs at least one dual pivot.
///
/// Rows that keep a basic artificial stuck in a redundant row are *pinned*:
/// their rhs cannot move at all without the redundancy (and with it the
/// installed point's feasibility) breaking, so `lower == upper == rhs`.
pub fn rhs_ranging(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<Vec<RhsRange>, RangingError> {
    let tableau = match install_for_ranging(problem, basis) {
        InstallVerdict::Optimal(t) => t,
        InstallVerdict::Unusable => return Err(RangingError::UnusableBasis),
        InstallVerdict::NotOptimal => return Err(RangingError::NotOptimal),
    };
    let m = tableau.rhs.len();
    let zero = Ratio::zero();

    let ranges = (0..m)
        .map(|i| {
            let current = &problem.constraints()[i].rhs;
            // The column that started as row i's identity now holds B⁻¹ e_i:
            // a standard-form perturbation δ' of b_i moves every basic value
            // by δ' · T[r][col], and the basis survives while they all stay
            // non-negative (and artificial-basic rows stay exactly at zero).
            let col = tableau.init_col[i];
            let mut delta_lo: Option<Ratio> = None;
            let mut delta_hi: Option<Ratio> = None;
            let mut pinned = false;
            for r in 0..m {
                let t = &tableau.rows[r][col];
                if t.is_zero() {
                    continue;
                }
                if tableau.basic_artificial[r] {
                    // rhs[r] is 0 here (verified on install): any δ' pushes
                    // the stuck artificial off zero, so the rhs cannot move.
                    pinned = true;
                    break;
                }
                let bound = -&(&tableau.rhs[r] / t);
                if t.is_positive() {
                    if delta_lo.as_ref().is_none_or(|lo| *lo < bound) {
                        delta_lo = Some(bound);
                    }
                } else if delta_hi.as_ref().is_none_or(|hi| bound < *hi) {
                    delta_hi = Some(bound);
                }
            }
            if pinned {
                return RhsRange { lower: Some(current.clone()), upper: Some(current.clone()) };
            }
            // Map the standard-form interval back to the original rhs: a
            // negated row stores b' = -b, so δ' = -δ and the bounds swap.
            let (mut lower, mut upper) = if tableau.negated[i] {
                (delta_hi.map(|d| current - &d), delta_lo.map(|d| current - &d))
            } else {
                (delta_lo.map(|d| current + &d), delta_hi.map(|d| current + &d))
            };
            // Clamp to the current sign regime (see [`RhsRange`]).
            if tableau.negated[i] {
                if upper.as_ref().is_none_or(|hi| zero < *hi) {
                    upper = Some(zero.clone());
                }
            } else if lower.as_ref().is_none_or(|lo| *lo < zero) {
                lower = Some(zero.clone());
            }
            RhsRange { lower, upper }
        })
        .collect();
    Ok(ranges)
}

/// Exact zero-pivot survival probe: `true` when `basis` installs cleanly on
/// `problem` and is already optimal for its data — i.e. a triaged solve
/// would answer `InRange` by re-pricing alone.
///
/// This is the certification primitive of the steady-state forecaster: cost
/// drift moves *constraint coefficients* of the collective LPs, which no
/// single-axis range can bound jointly, so candidate platforms inside the
/// drift envelope are certified one by one with this probe (one basis
/// factorization and one re-pricing, never a pivot).
pub fn basis_still_optimal(problem: &LpProblem, basis: &SolvedBasis) -> bool {
    matches!(install_for_ranging(problem, basis), InstallVerdict::Optimal(_))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, LpProblem, Sense};
    use crate::simplex::solve_exact;
    use steady_rational::rat;

    fn expr(terms: &[(crate::model::VarId, Ratio)]) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(*v, c.clone());
        }
        e
    }

    /// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum (4, 0).
    fn sample_lp() -> LpProblem {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.set_objective(y, rat(2, 1));
        lp.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Le, rat(4, 1));
        lp.add_constraint("c2", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(6, 1));
        lp
    }

    #[test]
    fn ranges_of_the_sample_lp_are_exact() {
        // At the optimum (4, 0): c_x may drop to 2 (where (3,1) ties) and
        // rise without bound; c_y may rise to 3 (same tie) and drop freely.
        let lp = sample_lp();
        let basis = solve_exact(&lp).unwrap().basis;
        let ranges = objective_ranging(&lp, &basis).unwrap();
        assert_eq!(ranges[0], CostRange { lower: Some(rat(2, 1)), upper: None });
        assert_eq!(ranges[1], CostRange { lower: None, upper: Some(rat(3, 1)) });
        assert!(ranges[0].contains(&rat(3, 1)));
        assert!(ranges[0].contains(&rat(2, 1)), "bounds are inclusive");
        assert!(!ranges[0].contains(&rat(1, 1)));
    }

    #[test]
    fn interior_perturbations_keep_the_basis_optimal_and_exterior_do_not() {
        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        let ranges = objective_ranging(&lp, &cold.basis).unwrap();

        // Strictly inside the x-range: the same vertex stays optimal.
        let mut inside = sample_lp();
        inside.set_objective(crate::model::VarId(0), rat(5, 2));
        assert!(ranges[0].contains(&rat(5, 2)));
        let re = solve_exact(&inside).unwrap();
        assert_eq!(re.values, cold.values);

        // Strictly outside: the optimal vertex must move.
        let mut outside = sample_lp();
        outside.set_objective(crate::model::VarId(0), rat(1, 1));
        assert!(!ranges[0].contains(&rat(1, 1)));
        let moved = solve_exact(&outside).unwrap();
        assert_ne!(moved.values, cold.values);
    }

    #[test]
    fn minimization_ranges_are_mirrored() {
        // minimize x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x = 8/5, y = 6/5.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Ge, rat(4, 1));
        lp.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Ge, rat(6, 1));
        let cold = solve_exact(&lp).unwrap();
        let ranges = objective_ranging(&lp, &cold.basis).unwrap();
        for (j, range) in ranges.iter().enumerate() {
            // The current coefficient always lies inside its own range.
            assert!(range.contains(lp.objective_coeff(crate::model::VarId(j))));
            // A bounded interval must be ordered.
            if let (Some(lo), Some(hi)) = (&range.lower, &range.upper) {
                assert!(lo <= hi);
            }
        }
        // Perturb each coefficient inside its range: the vertex is unchanged.
        for (j, range) in ranges.iter().enumerate() {
            let target = match (&range.lower, &range.upper) {
                (_, Some(hi)) => hi.clone(),
                (Some(lo), None) => lo.clone(),
                (None, None) => continue,
            };
            let mut perturbed = lp.clone();
            perturbed.set_objective(crate::model::VarId(j), target);
            let re = solve_exact(&perturbed).unwrap();
            assert_eq!(
                perturbed.objective_value(&cold.values),
                re.objective,
                "coefficient {j} at its boundary must keep the old vertex optimal"
            );
        }
    }

    #[test]
    fn foreign_and_suboptimal_bases_are_rejected() {
        let lp = sample_lp();
        let foreign = SolvedBasis { cols: vec![0, 1, 2], num_cols: 9, n_structural: 3 };
        assert_eq!(objective_ranging(&lp, &foreign).unwrap_err(), RangingError::UnusableBasis);
        assert_eq!(rhs_ranging(&lp, &foreign).unwrap_err(), RangingError::UnusableBasis);
        // The all-slack basis is feasible but not optimal.
        let slack = SolvedBasis { cols: vec![2, 3], num_cols: 4, n_structural: 2 };
        assert_eq!(objective_ranging(&lp, &slack).unwrap_err(), RangingError::NotOptimal);
        assert_eq!(rhs_ranging(&lp, &slack).unwrap_err(), RangingError::NotOptimal);
    }

    #[test]
    fn rhs_ranges_of_the_sample_lp_are_exact() {
        // Optimum (4, 0) with basis {x, s2}: x = b1 and s2 = b2 - b1, so
        // b1 may move in [0, 6] (x >= 0, s2 >= 0) and b2 in [4, ∞).
        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();
        assert_eq!(ranges[0], RhsRange { lower: Some(rat(0, 1)), upper: Some(rat(6, 1)) });
        assert_eq!(ranges[1], RhsRange { lower: Some(rat(4, 1)), upper: None });
        assert!(ranges[0].contains(&rat(4, 1)), "the current rhs is inside its own range");
        assert!(ranges[0].contains(&rat(6, 1)), "bounds are inclusive");
        assert!(!ranges[0].contains(&rat(7, 1)));
        assert!(ranges[1].contains(&rat(100, 1)), "unbounded above");
        assert!(!ranges[1].contains(&rat(3, 1)));
    }

    #[test]
    fn inside_rhs_nudges_reprice_with_zero_pivots_and_outside_ones_do_not() {
        use crate::simplex::{solve_dual_with_basis, DualOutcome};

        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();

        let with_rhs = |i: usize, rhs: Ratio| {
            let mut out = LpProblem::maximize();
            let vars: Vec<_> = lp.vars().map(|v| out.add_var(lp.var_name(v))).collect();
            for v in lp.vars() {
                out.set_objective(vars[v.index()], lp.objective_coeff(v).clone());
            }
            for (ci, c) in lp.constraints().iter().enumerate() {
                let mut e = LinearExpr::new();
                for (v, coeff) in c.expr.terms() {
                    e.add_term(vars[v.index()], coeff.clone());
                }
                let r = if ci == i { rhs.clone() } else { c.rhs.clone() };
                out.add_constraint(c.name.clone(), e, c.sense, r);
            }
            out
        };

        // Inside: b1 -> 5 (within [0, 6]) must re-price StillOptimal, and
        // the objective moves by δ times the row's dual price.
        assert!(ranges[0].contains(&rat(5, 1)));
        let inside = with_rhs(0, rat(5, 1));
        let (warm, outcome) = solve_dual_with_basis::<Ratio>(&inside, &cold.basis).unwrap();
        assert_eq!(outcome, DualOutcome::StillOptimal);
        assert_eq!(warm.iterations, 0);
        assert_eq!(warm.objective, &cold.objective + &cold.duals[0]);

        // Outside: b1 -> 7 (> 6) breaks primal feasibility of the basis.
        assert!(!ranges[0].contains(&rat(7, 1)));
        let outside = with_rhs(0, rat(7, 1));
        let (repaired, outcome) = solve_dual_with_basis::<Ratio>(&outside, &cold.basis).unwrap();
        match outcome {
            DualOutcome::DualRepaired { pivots } => assert!(pivots >= 1),
            other => panic!("expected a dual repair, got {other:?}"),
        }
        assert_eq!(repaired.objective, solve_exact(&outside).unwrap().objective);
    }

    #[test]
    fn negated_rows_mirror_their_rhs_range() {
        // maximize x s.t. -x <= -2 (i.e. x >= 2), x <= 5 -> optimum x = 5.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("neg", expr(&[(x, rat(-1, 1))]), Sense::Le, rat(-2, 1));
        lp.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(5, 1));
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();
        // The floor may drop to -5 (where it meets the cap) and rise to the
        // sign boundary at 0, where the standard form itself changes.
        assert_eq!(ranges[0], RhsRange { lower: Some(rat(-5, 1)), upper: Some(rat(0, 1)) });
        // The cap binds at the optimum: it may shrink to 2 and grow freely.
        assert_eq!(ranges[1], RhsRange { lower: Some(rat(2, 1)), upper: None });
    }

    #[test]
    fn redundant_equality_rows_are_pinned() {
        // x + y == 2 stated twice: the duplicate keeps a basic artificial in
        // a redundant row, so neither rhs may move independently.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("e1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(2, 1));
        lp.add_constraint("e2", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(2, 1));
        let cold = solve_exact(&lp).unwrap();
        let ranges = rhs_ranging(&lp, &cold.basis).unwrap();
        let pinned: Vec<bool> = ranges
            .iter()
            .map(|r| r.lower.as_ref() == Some(&rat(2, 1)) && r.upper.as_ref() == Some(&rat(2, 1)))
            .collect();
        assert!(pinned.contains(&true), "a redundant duplicate must pin its rhs: {ranges:?}");
    }

    #[test]
    fn still_optimal_probe_matches_the_ranges() {
        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        assert!(basis_still_optimal(&lp, &cold.basis));

        // A drifted objective outside the x-range: same basis, no longer
        // optimal — the probe must say so without pivoting.
        let mut drifted = sample_lp();
        drifted.set_objective(crate::model::VarId(0), rat(1, 1));
        assert!(!basis_still_optimal(&drifted, &cold.basis));

        // A foreign basis is simply not optimal-installable.
        let foreign = SolvedBasis { cols: vec![0, 1, 2], num_cols: 9, n_structural: 3 };
        assert!(!basis_still_optimal(&lp, &foreign));
    }
}
