//! Solver observability: an event tap on every pivot of every solver path.
//!
//! The steady-state answers this workspace serves are produced by LP solves,
//! and at thousand-node scale those solves dominate end-to-end latency.  This
//! module makes them inspectable without touching their arithmetic: the
//! solvers ([`crate::simplex`], [`crate::revised`], [`crate::exact`]) emit a
//! [`SolveEvent`] at every phase transition, pivot, eta append,
//! refactorization, warm-start install and certified-pipeline fallback, into
//! whatever [`SolveObserver`] the caller supplies.
//!
//! **Zero-cost when off.**  Every emission site is guarded by the observer's
//! associated constant [`SolveObserver::ENABLED`]; the default
//! [`NoopObserver`] sets it to `false`, so the monomorphized uninstrumented
//! solve contains no event construction at all — the `*_observed` entry
//! points instantiated with [`NoopObserver`] compile to exactly the code the
//! plain entry points had before this layer existed.
//!
//! **Observation never changes results.**  Observers receive copies of
//! solver state and have no channel back into the pivot rules; the property
//! tests in `tests/proptest_observer.rs` enforce that observed and
//! unobserved solves are bit-identical (values, objective, duals, bases,
//! per-phase pivot counts) on the dense, revised and dual paths, and that
//! the event stream reconciles with the reported counters (pivot events ==
//! `iterations`).
//!
//! Three observers are provided: [`HealthObserver`] folds the stream into
//! the compact [`SolveHealth`] aggregate (degenerate-pivot fraction, Bland
//! switches, peak eta fill, fallback cause) that travels up through
//! `core::SolveReport` into the serving layer's metrics; a
//! [`RecordingObserver`] additionally keeps a timestamped, bounded event
//! timeline for flight recorders and the `steady explain` command; and
//! [`Chain`] fans one stream into two observers.

use std::time::Instant;

/// Which solver implementation a run executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePath {
    /// The dense two-phase tableau simplex ([`crate::simplex`]).
    Dense,
    /// The revised sparse simplex with an LU-factorized basis
    /// ([`crate::revised`]).
    Revised,
}

impl SolvePath {
    /// Short lowercase label for logs and timelines.
    pub fn name(&self) -> &'static str {
        match self {
            SolvePath::Dense => "dense",
            SolvePath::Revised => "revised",
        }
    }
}

/// The simplex phase a pivot belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolvePhase {
    /// Phase 1: minimize the sum of artificials (feasibility search).
    Phase1,
    /// Phase 2: optimize the real objective from a feasible vertex.
    Phase2,
    /// Dual-simplex repair of a primal-infeasible warm basis.
    DualRepair,
}

impl SolvePhase {
    /// Short lowercase label for logs and timelines.
    pub fn name(&self) -> &'static str {
        match self {
            SolvePhase::Phase1 => "phase1",
            SolvePhase::Phase2 => "phase2",
            SolvePhase::DualRepair => "dual-repair",
        }
    }
}

/// The entering-column selection rule in force for a pivot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotRule {
    /// Largest reduced cost (the default rule).
    Dantzig,
    /// Smallest eligible index (the anti-cycling rule the solver switches to
    /// after `bland_after` pivots).
    Bland,
}

/// Whether a pivot was chosen by the primal or the dual ratio test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PivotKind {
    /// Primal simplex pivot (entering column first, then leaving row).
    Primal,
    /// Dual simplex pivot (leaving row first, then entering column).
    Dual,
}

/// Why the revised solver rebuilt its LU factorization mid-solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefactorReason {
    /// The eta file reached `RevisedOptions::refactor_interval` updates.
    EtaInterval,
    /// The eta file's fill-in outgrew the LU factors themselves.
    FillGrowth,
}

impl RefactorReason {
    /// Short lowercase label for logs and timelines.
    pub fn name(&self) -> &'static str {
        match self {
            RefactorReason::EtaInterval => "eta-interval",
            RefactorReason::FillGrowth => "fill-growth",
        }
    }
}

/// How a supplied warm basis was ultimately used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarmOutcome {
    /// The basis installed cleanly and primal feasible; the solve resumed
    /// from it.
    Installed,
    /// The basis was incompatible, singular or primal infeasible and the
    /// solve restarted cold.
    Rejected,
    /// Dual path: the basis was still optimal — zero pivots, re-price only.
    StillOptimal,
    /// Dual path: dual-simplex pivots repaired the basis in place.
    DualRepaired,
    /// Dual path: primal phase-2 pivots re-optimized from the installed
    /// vertex.
    PrimalReoptimized,
    /// Dual path: the basis could not be exploited; the result comes from a
    /// fresh two-phase solve (or a phase-1 restart from the installed point).
    FellBack,
}

impl WarmOutcome {
    /// Short lowercase label for logs and timelines.
    pub fn name(&self) -> &'static str {
        match self {
            WarmOutcome::Installed => "installed",
            WarmOutcome::Rejected => "rejected",
            WarmOutcome::StillOptimal => "still-optimal",
            WarmOutcome::DualRepaired => "dual-repaired",
            WarmOutcome::PrimalReoptimized => "primal-reoptimized",
            WarmOutcome::FellBack => "fell-back",
        }
    }
}

/// Why the certified pipeline abandoned its fast `f64`-then-certify path and
/// re-solved with the exact rational simplex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackCause {
    /// The `f64` stage failed (possibly a spurious round-off verdict); the
    /// exact simplex re-decides from scratch.
    FloatFailed,
    /// Exact verification rejected the rationalized float optimum.
    CertificationFailed {
        /// The reason the exact checks reported.
        reason: String,
    },
    /// The dual-simplex `f64` stage failed; the solve was re-routed cold
    /// through the certified pipeline.
    DualFloatFailed,
}

impl FallbackCause {
    /// Short lowercase label for logs, metrics and timelines.
    pub fn kind_name(&self) -> &'static str {
        match self {
            FallbackCause::FloatFailed => "float-failed",
            FallbackCause::CertificationFailed { .. } => "certification-failed",
            FallbackCause::DualFloatFailed => "dual-float-failed",
        }
    }
}

/// One solver event.  A single logical solve may chain several runs (an
/// `f64` run and an exact fallback run), each introduced by
/// [`SolveEvent::RunStarted`]; pivot events across all runs of a solve sum
/// to the `iterations` its report states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveEvent {
    /// A solver run began on `path`.
    RunStarted {
        /// Which solver implementation executes the run.
        path: SolvePath,
    },
    /// A simplex phase began (within the current run).
    PhaseStarted {
        /// The phase that follows this marker.
        phase: SolvePhase,
    },
    /// A counted simplex pivot is about to execute.
    Pivot {
        /// The phase the pivot belongs to.
        phase: SolvePhase,
        /// Primal or dual ratio test.
        kind: PivotKind,
        /// Entering-column selection rule in force.
        rule: PivotRule,
        /// Entering (standard-form) column.
        entering: usize,
        /// Leaving (standard-form) column.
        leaving: usize,
        /// `true` when the pivot does not move the current vertex (zero
        /// primal ratio, or zero dual reduced cost).
        degenerate: bool,
    },
    /// The revised solver appended an eta update to its factorization.
    EtaAppended {
        /// Eta-file length after the append.
        etas: usize,
        /// Total nonzeros stored across the eta file.
        eta_nnz: usize,
    },
    /// The revised solver is about to rebuild its LU factorization.
    RefactorStarted {
        /// What triggered the rebuild.
        reason: RefactorReason,
        /// Eta-file length at the trigger point.
        etas: usize,
        /// Eta-file nonzeros at the trigger point.
        eta_nnz: usize,
    },
    /// The LU rebuild finished.
    RefactorFinished {
        /// Nonzeros of the fresh factorization — together with `dim` this is
        /// the Markowitz quality measure (fill per row = `lu_nnz / dim`).
        lu_nnz: usize,
        /// Basis dimension.
        dim: usize,
    },
    /// A supplied warm basis resolved to an outcome.
    WarmStart {
        /// How the basis was used.
        outcome: WarmOutcome,
    },
    /// The certified pipeline fell back to the exact simplex.
    Fallback {
        /// Why the fast path was abandoned.
        cause: FallbackCause,
    },
}

/// A sink for [`SolveEvent`]s, threaded through every solver entry point.
///
/// Implementations must not (and cannot) influence the solve: they receive
/// copies of solver state only.  Set [`SolveObserver::ENABLED`] to `false`
/// (as [`NoopObserver`] does) to compile all emission sites away.
pub trait SolveObserver {
    /// `false` disables event construction statically; emission sites are
    /// guarded by `if O::ENABLED` and fold to nothing when it is `false`.
    const ENABLED: bool = true;

    /// Receives one event.
    fn on_event(&mut self, event: SolveEvent);
}

/// The default observer: statically disabled, so observed entry points
/// instantiated with it are bit-for-bit the uninstrumented solver.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SolveObserver for NoopObserver {
    const ENABLED: bool = false;

    fn on_event(&mut self, _event: SolveEvent) {}
}

/// Fans one event stream into two observers (events are cloned only when
/// both sides are enabled).
#[derive(Debug)]
pub struct Chain<'a, A, B>(pub &'a mut A, pub &'a mut B);

impl<A: SolveObserver, B: SolveObserver> SolveObserver for Chain<'_, A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn on_event(&mut self, event: SolveEvent) {
        if A::ENABLED && B::ENABLED {
            self.0.on_event(event.clone());
            self.1.on_event(event);
        } else if A::ENABLED {
            self.0.on_event(event);
        } else if B::ENABLED {
            self.1.on_event(event);
        }
    }
}

/// Numeric-health aggregate of one logical solve, folded from its event
/// stream.  This is the compact per-solve record the serving layer feeds
/// into histograms and anomaly detection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolveHealth {
    /// Counted pivots across all runs (equals the report's `iterations`).
    pub pivots: usize,
    /// Pivots whose ratio was zero (the vertex did not move) — the
    /// classical degeneracy signal.
    pub degenerate_pivots: usize,
    /// Pivots taken under Bland's anti-cycling rule; any nonzero value
    /// means the Dantzig→Bland switch fired.
    pub bland_pivots: usize,
    /// Dual-simplex pivots (subset of `pivots`).
    pub dual_pivots: usize,
    /// Mid-solve LU refactorizations of the revised solver.
    pub refactorizations: usize,
    /// Longest eta file reached between refactorizations.
    pub peak_eta: usize,
    /// Largest eta-file fill (total stored nonzeros) reached.
    pub peak_eta_nnz: usize,
    /// Certified-pipeline fallback, when one fired (the last one wins if a
    /// solve somehow chains several).
    pub fallback: Option<FallbackCause>,
}

impl SolveHealth {
    /// Folds one event into the aggregate.
    pub fn observe(&mut self, event: &SolveEvent) {
        match event {
            SolveEvent::Pivot { kind, rule, degenerate, .. } => {
                self.pivots += 1;
                if *degenerate {
                    self.degenerate_pivots += 1;
                }
                if *rule == PivotRule::Bland {
                    self.bland_pivots += 1;
                }
                if *kind == PivotKind::Dual {
                    self.dual_pivots += 1;
                }
            }
            SolveEvent::EtaAppended { etas, eta_nnz } => {
                self.peak_eta = self.peak_eta.max(*etas);
                self.peak_eta_nnz = self.peak_eta_nnz.max(*eta_nnz);
            }
            SolveEvent::RefactorFinished { .. } => self.refactorizations += 1,
            SolveEvent::Fallback { cause } => self.fallback = Some(cause.clone()),
            SolveEvent::RunStarted { .. }
            | SolveEvent::PhaseStarted { .. }
            | SolveEvent::RefactorStarted { .. }
            | SolveEvent::WarmStart { .. } => {}
        }
    }

    /// Fraction of pivots that were degenerate (0 when no pivots ran).
    pub fn degenerate_fraction(&self) -> f64 {
        if self.pivots == 0 {
            0.0
        } else {
            self.degenerate_pivots as f64 / self.pivots as f64
        }
    }

    /// `true` when the Dantzig→Bland anti-cycling switch fired.
    pub fn bland_switched(&self) -> bool {
        self.bland_pivots > 0
    }

    /// `true` when the certified pipeline abandoned its fast path.
    pub fn fell_back(&self) -> bool {
        self.fallback.is_some()
    }
}

/// An observer that folds the stream into a [`SolveHealth`] and keeps
/// nothing else — cheap enough to leave attached to every serving solve.
#[derive(Debug, Default)]
pub struct HealthObserver {
    health: SolveHealth,
}

impl HealthObserver {
    /// A fresh, empty aggregate.
    pub fn new() -> HealthObserver {
        HealthObserver::default()
    }

    /// The aggregate so far.
    pub fn health(&self) -> &SolveHealth {
        &self.health
    }

    /// Consumes the observer, returning the aggregate.
    pub fn into_health(self) -> SolveHealth {
        self.health
    }
}

impl SolveObserver for HealthObserver {
    fn on_event(&mut self, event: SolveEvent) {
        self.health.observe(&event);
    }
}

/// A [`SolveEvent`] stamped with nanoseconds since the recording began.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedEvent {
    /// Nanoseconds from [`RecordingObserver`] construction to the event.
    pub at_nanos: u64,
    /// The event itself.
    pub event: SolveEvent,
}

/// An observer that keeps a timestamped timeline of the event stream (up to
/// a capacity; later events are counted, not stored) alongside the
/// [`SolveHealth`] aggregate.  The timeline is what the serving layer's
/// flight recorder and the `steady explain` command render.
#[derive(Debug)]
pub struct RecordingObserver {
    start: Instant,
    events: Vec<TimedEvent>,
    capacity: usize,
    truncated: usize,
    health: SolveHealth,
}

impl RecordingObserver {
    /// Records at most `capacity` events; the rest only update the health
    /// aggregate and the truncation counter.
    pub fn new(capacity: usize) -> RecordingObserver {
        RecordingObserver {
            start: Instant::now(),
            events: Vec::new(),
            capacity: capacity.max(1),
            truncated: 0,
            health: SolveHealth::default(),
        }
    }

    /// Records every event (bounded only by memory); for offline tools.
    pub fn unbounded() -> RecordingObserver {
        RecordingObserver::new(usize::MAX)
    }

    /// The health aggregate so far.
    pub fn health(&self) -> &SolveHealth {
        &self.health
    }

    /// The recorded timeline so far.
    pub fn events(&self) -> &[TimedEvent] {
        &self.events
    }

    /// Events observed but not stored (capacity overflow).
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Nanoseconds since the recording began.
    pub fn elapsed_nanos(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Seals the recording, stamping the total wall time.
    pub fn finish(self) -> SolveRecording {
        SolveRecording {
            total_nanos: self.start.elapsed().as_nanos() as u64,
            events: self.events,
            truncated: self.truncated,
            health: self.health,
        }
    }
}

impl SolveObserver for RecordingObserver {
    fn on_event(&mut self, event: SolveEvent) {
        self.health.observe(&event);
        if self.events.len() < self.capacity {
            let at_nanos = self.start.elapsed().as_nanos() as u64;
            self.events.push(TimedEvent { at_nanos, event });
        } else {
            self.truncated += 1;
        }
    }
}

/// A sealed solve timeline: the events, the truncation count, the health
/// aggregate and the total wall time of the solve they were recorded from.
#[derive(Debug, Clone, Default)]
pub struct SolveRecording {
    /// Wall nanoseconds from recording start to [`RecordingObserver::finish`].
    pub total_nanos: u64,
    /// The recorded, timestamped events in emission order.
    pub events: Vec<TimedEvent>,
    /// Events observed but not stored.
    pub truncated: usize,
    /// The health aggregate over **all** events (stored or truncated).
    pub health: SolveHealth,
}

impl SolveRecording {
    /// Derives the wall-clock phase breakdown from the timeline: each
    /// [`SolveEvent::PhaseStarted`] marker opens an interval that the next
    /// phase/run marker (or the end of the solve) closes.  The phase buckets
    /// are disjoint sub-intervals of the solve, so their sum never exceeds
    /// [`SolveRecording::total_nanos`].
    pub fn breakdown(&self) -> PhaseBreakdown {
        let mut out = PhaseBreakdown::default();
        let mut open: Option<(SolvePhase, u64)> = None;
        let mut refactor_open: Option<u64> = None;
        let close = |open: &mut Option<(SolvePhase, u64)>, now: u64, out: &mut PhaseBreakdown| {
            if let Some((phase, since)) = open.take() {
                let span = now.saturating_sub(since);
                match phase {
                    SolvePhase::Phase1 => out.phase1_nanos += span,
                    SolvePhase::Phase2 => out.phase2_nanos += span,
                    SolvePhase::DualRepair => out.dual_nanos += span,
                }
            }
        };
        for e in &self.events {
            match &e.event {
                SolveEvent::RunStarted { .. } => close(&mut open, e.at_nanos, &mut out),
                SolveEvent::PhaseStarted { phase } => {
                    close(&mut open, e.at_nanos, &mut out);
                    open = Some((*phase, e.at_nanos));
                }
                SolveEvent::RefactorStarted { .. } => refactor_open = Some(e.at_nanos),
                SolveEvent::RefactorFinished { .. } => {
                    if let Some(since) = refactor_open.take() {
                        out.refactor_nanos += e.at_nanos.saturating_sub(since);
                    }
                }
                _ => {}
            }
        }
        close(&mut open, self.total_nanos, &mut out);
        out
    }
}

/// Where a solve's wall time went, by simplex phase.  `refactor_nanos` is
/// time spent rebuilding LU factorizations and is *included* in the phase
/// the rebuild happened in (it is reported separately, not additionally).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Wall nanoseconds in phase 1 (feasibility search), all runs summed.
    pub phase1_nanos: u64,
    /// Wall nanoseconds in phase 2 (optimization).
    pub phase2_nanos: u64,
    /// Wall nanoseconds in dual-simplex repair.
    pub dual_nanos: u64,
    /// Wall nanoseconds inside LU refactorizations (subset of the above).
    pub refactor_nanos: u64,
}

impl PhaseBreakdown {
    /// Sum of the disjoint phase buckets — by construction never more than
    /// the total solve time they were carved from.
    pub fn phase_total_nanos(&self) -> u64 {
        self.phase1_nanos + self.phase2_nanos + self.dual_nanos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pivot(degenerate: bool, rule: PivotRule, kind: PivotKind) -> SolveEvent {
        SolveEvent::Pivot {
            phase: SolvePhase::Phase2,
            kind,
            rule,
            entering: 1,
            leaving: 2,
            degenerate,
        }
    }

    #[test]
    fn noop_observer_is_statically_disabled() {
        const { assert!(!NoopObserver::ENABLED) };
        const { assert!(HealthObserver::ENABLED) };
    }

    #[test]
    fn health_folds_the_stream() {
        let mut h = SolveHealth::default();
        h.observe(&pivot(true, PivotRule::Dantzig, PivotKind::Primal));
        h.observe(&pivot(false, PivotRule::Bland, PivotKind::Dual));
        h.observe(&SolveEvent::EtaAppended { etas: 3, eta_nnz: 17 });
        h.observe(&SolveEvent::EtaAppended { etas: 1, eta_nnz: 5 });
        h.observe(&SolveEvent::RefactorFinished { lu_nnz: 40, dim: 10 });
        h.observe(&SolveEvent::Fallback { cause: FallbackCause::FloatFailed });
        assert_eq!(h.pivots, 2);
        assert_eq!(h.degenerate_pivots, 1);
        assert_eq!(h.bland_pivots, 1);
        assert_eq!(h.dual_pivots, 1);
        assert_eq!(h.refactorizations, 1);
        assert_eq!(h.peak_eta, 3);
        assert_eq!(h.peak_eta_nnz, 17);
        assert!((h.degenerate_fraction() - 0.5).abs() < 1e-12);
        assert!(h.bland_switched());
        assert!(h.fell_back());
        assert_eq!(h.fallback.as_ref().unwrap().kind_name(), "float-failed");
    }

    #[test]
    fn chain_feeds_both_sides() {
        let mut a = HealthObserver::new();
        let mut b = HealthObserver::new();
        let mut chain = Chain(&mut a, &mut b);
        chain.on_event(pivot(false, PivotRule::Dantzig, PivotKind::Primal));
        assert_eq!(a.health().pivots, 1);
        assert_eq!(b.health().pivots, 1);
    }

    #[test]
    fn recording_truncates_but_keeps_counting() {
        let mut rec = RecordingObserver::new(2);
        for _ in 0..5 {
            rec.on_event(pivot(false, PivotRule::Dantzig, PivotKind::Primal));
        }
        assert_eq!(rec.events().len(), 2);
        assert_eq!(rec.truncated(), 3);
        let sealed = rec.finish();
        assert_eq!(sealed.health.pivots, 5);
        assert_eq!(sealed.truncated, 3);
    }

    #[test]
    fn breakdown_carves_disjoint_phase_intervals() {
        let rec = SolveRecording {
            total_nanos: 100,
            events: vec![
                TimedEvent {
                    at_nanos: 0,
                    event: SolveEvent::RunStarted { path: SolvePath::Revised },
                },
                TimedEvent {
                    at_nanos: 10,
                    event: SolveEvent::PhaseStarted { phase: SolvePhase::Phase1 },
                },
                TimedEvent {
                    at_nanos: 20,
                    event: SolveEvent::RefactorStarted {
                        reason: RefactorReason::EtaInterval,
                        etas: 4,
                        eta_nnz: 9,
                    },
                },
                TimedEvent {
                    at_nanos: 25,
                    event: SolveEvent::RefactorFinished { lu_nnz: 12, dim: 4 },
                },
                TimedEvent {
                    at_nanos: 40,
                    event: SolveEvent::PhaseStarted { phase: SolvePhase::Phase2 },
                },
            ],
            truncated: 0,
            health: SolveHealth::default(),
        };
        let b = rec.breakdown();
        assert_eq!(b.phase1_nanos, 30);
        assert_eq!(b.phase2_nanos, 60);
        assert_eq!(b.dual_nanos, 0);
        assert_eq!(b.refactor_nanos, 5);
        assert!(b.phase_total_nanos() <= rec.total_nanos);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SolvePath::Dense.name(), "dense");
        assert_eq!(SolvePath::Revised.name(), "revised");
        assert_eq!(SolvePhase::DualRepair.name(), "dual-repair");
        assert_eq!(RefactorReason::FillGrowth.name(), "fill-growth");
        assert_eq!(WarmOutcome::StillOptimal.name(), "still-optimal");
        assert_eq!(
            FallbackCause::CertificationFailed { reason: "gap".into() }.kind_name(),
            "certification-failed"
        );
    }
}
