//! Linear-programming toolkit for the steady-state collective scheduler.
//!
//! The optimal steady-state throughput of a series of scatters, gossips or
//! reduces is the value of a linear program (`SSSP(G)`, `SSPA2A(G)`, `SSR(G)`
//! in the paper).  The original authors solved these programs with `lpsolve`
//! or Maple; this crate is the from-scratch substitute:
//!
//! * [`model`] — a small modelling layer ([`LpProblem`], [`LinearExpr`]) over
//!   named non-negative rational variables;
//! * [`simplex`] — a dense two-phase primal simplex, generic over the scalar
//!   type, instantiated both for `f64` and for exact [`Ratio`] arithmetic;
//! * [`exact`] — the certified solving pipeline: solve fast in `f64`,
//!   rationalize the primal/dual pair with continued fractions, verify
//!   feasibility and strong duality exactly, and fall back to the exact
//!   simplex when certification fails.
//!
//! # Example
//!
//! ```
//! use steady_lp::{LpProblem, LinearExpr, Sense, solve_certified};
//! use steady_rational::rat;
//!
//! // maximize x + y  subject to  2x + y <= 1,  x + 3y <= 1,  x, y >= 0
//! let mut lp = LpProblem::maximize();
//! let x = lp.add_var("x");
//! let y = lp.add_var("y");
//! lp.set_objective(x, rat(1, 1));
//! lp.set_objective(y, rat(1, 1));
//! let mut c1 = LinearExpr::new();
//! c1.add_term(x, rat(2, 1)).add_term(y, rat(1, 1));
//! lp.add_constraint("c1", c1, Sense::Le, rat(1, 1));
//! let mut c2 = LinearExpr::new();
//! c2.add_term(x, rat(1, 1)).add_term(y, rat(3, 1));
//! lp.add_constraint("c2", c2, Sense::Le, rat(1, 1));
//!
//! let sol = solve_certified(&lp).unwrap();
//! assert_eq!(sol.objective, rat(3, 5));          // exact optimum
//! assert_eq!(sol.values, vec![rat(2, 5), rat(1, 5)]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod exact;
pub mod instrument;
pub mod model;
pub mod ranging;
pub mod revised;
pub mod scalar;
pub mod simplex;
pub mod sparse;

pub use exact::{
    certify, routes_to_revised, solve_certified, solve_certified_dual,
    solve_certified_dual_observed, solve_certified_warm, solve_certified_warm_observed,
    solve_certified_with_options, Certificate, CertifiedSolution, CertifyError, CertifyOptions,
    SolveTrace,
};
pub use instrument::{
    Chain, FallbackCause, HealthObserver, NoopObserver, PhaseBreakdown, PivotKind, PivotRule,
    RecordingObserver, RefactorReason, SolveEvent, SolveHealth, SolveObserver, SolvePath,
    SolvePhase, SolveRecording, TimedEvent, WarmOutcome,
};
pub use model::{Constraint, LinearExpr, LpProblem, Objective, Sense, VarId};
pub use ranging::{
    basis_still_optimal, objective_ranging, rhs_ranging, CostRange, RangingError, RhsRange,
};
pub use revised::{
    solve_revised, solve_revised_report, solve_revised_report_observed, solve_revised_with_basis,
    solve_revised_with_basis_options, solve_revised_with_options, Eta, RevisedOptions,
    RevisedStats, SparseLu,
};
pub use scalar::Scalar;
pub use simplex::{
    solve_dual_with_basis, solve_dual_with_basis_options, solve_dual_with_basis_options_observed,
    solve_exact, solve_f64, solve_with_basis, solve_with_basis_options,
    solve_with_basis_options_observed, solve_with_options, solve_with_options_observed,
    DualOutcome, LpStatus, SimplexError, SimplexOptions, Solution, SolvedBasis,
};
pub use sparse::CscMatrix;

use steady_rational::Ratio;

/// Solves a problem exactly, choosing the strategy by problem size: small
/// problems go straight to the exact simplex, larger ones use the certified
/// `f64` path with exact-simplex fallback.
///
/// This is the entry point used by the steady-state schedulers.
pub fn solve_exact_auto(problem: &LpProblem) -> Result<CertifiedSolution, CertifyError> {
    solve_exact_auto_with(problem, None)
}

/// [`solve_exact_auto`], optionally warm-starting from a previously solved
/// basis (see [`SolvedBasis`]).
///
/// The strategy choice is identical to the cold path, so warm and cold
/// solves of the same problem run the same arithmetic and return the same
/// exact optimum — the basis only changes where the simplex *starts*.
pub fn solve_exact_auto_with(
    problem: &LpProblem,
    warm: Option<&SolvedBasis>,
) -> Result<CertifiedSolution, CertifyError> {
    solve_exact_auto_observed(problem, warm, &mut NoopObserver)
}

/// [`solve_exact_auto_with`] with a [`SolveObserver`] tap on every run the
/// strategy executes (see [`instrument`]).  The observer cannot influence the
/// solve; with [`NoopObserver`] this is the uninstrumented pipeline.
pub fn solve_exact_auto_observed<O: SolveObserver>(
    problem: &LpProblem,
    warm: Option<&SolvedBasis>,
    obs: &mut O,
) -> Result<CertifiedSolution, CertifyError> {
    if below_exact_simplex_limit(problem) {
        let options = SimplexOptions::default();
        let sol = match warm {
            Some(basis) => simplex::solve_with_basis_options_observed::<Ratio, O>(
                problem, basis, &options, obs,
            )?,
            None => simplex::solve_with_options_observed::<Ratio, O>(problem, &options, obs)?,
        };
        Ok(exact_simplex_certified(sol))
    } else {
        exact::solve_certified_warm_observed(problem, &CertifyOptions::default(), warm, obs)
    }
}

/// Solves `problem` exactly, resuming from `basis` with the **dual simplex**
/// (see [`solve_dual_with_basis`]) and reporting how the basis was used.
///
/// The size-based strategy split mirrors [`solve_exact_auto_with`]: small
/// problems run the exact rational dual simplex directly; large ones run it
/// in `f64`, certify the rationalized optimum, and fall back to the exact
/// simplex seeded from the float basis when certification fails.  Every path
/// returns the same exact optimum as a cold [`solve_exact_auto`] — the
/// [`DualOutcome`] only describes how much work the basis saved.
pub fn solve_exact_dual_auto(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<(CertifiedSolution, DualOutcome), CertifyError> {
    solve_exact_dual_auto_observed(problem, basis, &mut NoopObserver)
}

/// [`solve_exact_dual_auto`] with a [`SolveObserver`] tap on every run the
/// strategy executes.
pub fn solve_exact_dual_auto_observed<O: SolveObserver>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    obs: &mut O,
) -> Result<(CertifiedSolution, DualOutcome), CertifyError> {
    if below_exact_simplex_limit(problem) {
        let (sol, outcome) = simplex::solve_dual_with_basis_options_observed::<Ratio, O>(
            problem,
            basis,
            &SimplexOptions::default(),
            obs,
        )?;
        Ok((exact_simplex_certified(sol), outcome))
    } else {
        exact::solve_certified_dual_observed(problem, &CertifyOptions::default(), basis, obs)
    }
}

/// Problem-size split between the direct exact simplex and the certified
/// `f64`-then-exact pipeline.
fn below_exact_simplex_limit(problem: &LpProblem) -> bool {
    const EXACT_SIMPLEX_LIMIT: usize = 2_000;
    problem.num_vars() * problem.num_constraints().max(1) <= EXACT_SIMPLEX_LIMIT
}

/// Wraps an exact-simplex solution as a [`CertifiedSolution`] (optimal by
/// construction).
fn exact_simplex_certified(sol: Solution<Ratio>) -> CertifiedSolution {
    CertifiedSolution {
        values: sol.values,
        objective: sol.objective,
        duals: sol.duals,
        certificate: Certificate::ExactSimplex,
        iterations: sol.iterations,
        phase1_iterations: sol.phase1_iterations,
        warm_started: sol.warm_started,
        basis: Some(sol.basis),
        refactorizations: 0,
    }
}

/// Convenience: exact objective value of the solved problem, for callers that
/// only need the optimal throughput.
pub fn optimal_value(problem: &LpProblem) -> Result<Ratio, CertifyError> {
    Ok(solve_exact_auto(problem)?.objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn auto_strategy_small_and_large() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("cap", LinearExpr::var(x), Sense::Le, rat(7, 3));
        let sol = solve_exact_auto(&lp).unwrap();
        assert_eq!(sol.objective, rat(7, 3));
        assert_eq!(optimal_value(&lp).unwrap(), rat(7, 3));
    }
}
