//! Dense two-phase primal simplex, generic over the scalar type.
//!
//! The same pivoting code is instantiated twice:
//!
//! * with `f64` — fast, used to locate the optimal vertex of the large
//!   steady-state LPs (e.g. the Figure-9 reduce instance);
//! * with [`steady_rational::Ratio`] — exact, used on small and medium
//!   instances and as the reference implementation the floating-point result
//!   is certified against (see [`crate::exact`]).
//!
//! The implementation is a classical dense tableau simplex: constraints are
//! brought to equality standard form with slack/surplus/artificial variables,
//! phase 1 minimizes the sum of artificials, phase 2 optimizes the real
//! objective.  Dantzig's rule is used by default and the solver switches to
//! Bland's rule after a configurable number of iterations so that cycling on
//! degenerate vertices cannot prevent termination.

use crate::instrument::{
    NoopObserver, PivotKind, PivotRule, SolveEvent, SolveObserver, SolvePath, SolvePhase,
    WarmOutcome,
};
use crate::model::{LpProblem, Objective, Sense};
use crate::scalar::Scalar;
use steady_rational::Ratio;

/// Outcome classification of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraint set is empty.
    Infeasible,
    /// The objective is unbounded above (for maximization).
    Unbounded,
}

/// Errors produced by the simplex solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimplexError {
    /// The problem is infeasible.
    Infeasible,
    /// The objective is unbounded.
    Unbounded,
    /// The iteration limit was exceeded (should not happen with Bland's rule;
    /// kept as a defensive backstop).
    IterationLimit {
        /// Number of pivots performed before giving up.
        iterations: usize,
    },
}

impl std::fmt::Display for SimplexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::IterationLimit { iterations } => {
                write!(f, "simplex iteration limit exceeded after {iterations} pivots")
            }
        }
    }
}

impl std::error::Error for SimplexError {}

/// The final basis of a solved LP, in the solver's equality standard form.
///
/// A basis is the partition of the standard-form columns (structural
/// variables first, then slacks, then artificials) into `m` *basic* columns —
/// one per constraint row, recorded here in row order — and the rest, which
/// are non-basic at zero.  It is the piece of solver state worth keeping
/// between solves: [`solve_with_basis`] resumes the simplex from a previously
/// optimal basis, which on a problem that differs only in its numeric data
/// (e.g. perturbed edge costs) is usually optimal or near-optimal already.
///
/// # Invariants
///
/// * `cols.len()` equals the number of constraint rows of the problem the
///   basis was extracted from, and `cols[i]` is the column basic in row `i`.
/// * Every entry is unique and `< num_cols`; `num_cols` and `n_structural`
///   describe the standard form (total columns / structural prefix) and are
///   used by [`solve_with_basis`] to reject a basis from a *structurally
///   different* problem before attempting to install it.
/// * A basis is advisory, never load-bearing: installing it on a compatible
///   problem yields a starting vertex, after which the simplex re-optimizes
///   to provable optimality.  A basis that turns out to be singular or primal
///   infeasible for the new data is discarded and the solve falls back to
///   the ordinary two-phase method, so a stale or even corrupted basis can
///   cost time but can never change the reported optimum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SolvedBasis {
    /// Basic column of each constraint row, in row order.
    pub cols: Vec<usize>,
    /// Total number of standard-form columns (structural + slack + artificial).
    pub num_cols: usize,
    /// Number of structural (user-declared) columns.
    pub n_structural: usize,
}

impl SolvedBasis {
    /// Serializes the basis as a single JSON object
    /// (`{"cols":[...],"num_cols":N,"n_structural":K}`).
    pub fn to_json(&self) -> String {
        let cols: Vec<String> = self.cols.iter().map(|c| c.to_string()).collect();
        format!(
            "{{\"cols\":[{}],\"num_cols\":{},\"n_structural\":{}}}",
            cols.join(","),
            self.num_cols,
            self.n_structural
        )
    }

    /// Parses the representation produced by [`SolvedBasis::to_json`].
    pub fn from_json(text: &str) -> Result<SolvedBasis, String> {
        let field = |name: &str| -> Result<&str, String> {
            let tag = format!("\"{name}\":");
            let start =
                text.find(&tag).ok_or_else(|| format!("missing field '{name}'"))? + tag.len();
            let rest = &text[start..];
            let end =
                rest.find([',', '}']).ok_or_else(|| format!("unterminated field '{name}'"))?;
            Ok(rest[..end].trim())
        };
        let cols_start =
            text.find("\"cols\":[").ok_or_else(|| "missing field 'cols'".to_string())? + 8;
        let cols_end =
            text[cols_start..].find(']').ok_or_else(|| "unterminated 'cols' array".to_string())?
                + cols_start;
        let body = text[cols_start..cols_end].trim();
        let cols = if body.is_empty() {
            Vec::new()
        } else {
            body.split(',')
                .map(|c| c.trim().parse::<usize>().map_err(|e| format!("bad column: {e}")))
                .collect::<Result<Vec<usize>, String>>()?
        };
        let num_cols =
            field("num_cols")?.parse::<usize>().map_err(|e| format!("bad num_cols: {e}"))?;
        let n_structural = field("n_structural")?
            .parse::<usize>()
            .map_err(|e| format!("bad n_structural: {e}"))?;
        Ok(SolvedBasis { cols, num_cols, n_structural })
    }
}

/// Solution of a linear program in scalar type `S`.
#[derive(Debug, Clone)]
pub struct Solution<S> {
    /// Values of the structural (user-declared) variables.
    pub values: Vec<S>,
    /// Objective value in the problem's own direction.
    pub objective: S,
    /// Dual value per original constraint (sign convention: dual of the
    /// maximization problem; `>= 0` for `<=` rows, `<= 0` for `>=` rows,
    /// free for `==` rows).
    pub duals: Vec<S>,
    /// Number of simplex pivots performed (both phases).
    pub iterations: usize,
    /// Number of those pivots spent in phase 1 (feasibility search).
    pub phase1_iterations: usize,
    /// `true` when the solve resumed from a supplied [`SolvedBasis`] (the
    /// basis installed cleanly and was primal feasible for this data).
    pub warm_started: bool,
    /// The final basis, reusable to warm-start a structurally identical solve.
    pub basis: SolvedBasis,
}

impl<S: Scalar> Solution<S> {
    /// Value of variable `v` as `f64` (reporting convenience).
    pub fn value_f64(&self, v: crate::model::VarId) -> f64 {
        self.values[v.index()].to_f64()
    }
}

/// Tunable parameters of the solver.
#[derive(Debug, Clone)]
pub struct SimplexOptions {
    /// Hard cap on the number of pivots (defensive; default `50 (m + n) + 10_000`
    /// when `None`).
    pub max_iterations: Option<usize>,
    /// Number of Dantzig-rule pivots before switching to Bland's rule.
    pub bland_after: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions { max_iterations: None, bland_after: 10_000 }
    }
}

/// Solves `problem` with the default options.
pub fn solve<S: Scalar>(problem: &LpProblem) -> Result<Solution<S>, SimplexError> {
    solve_with_options(problem, &SimplexOptions::default())
}

/// Solves `problem` in `f64` arithmetic.
pub fn solve_f64(problem: &LpProblem) -> Result<Solution<f64>, SimplexError> {
    solve(problem)
}

/// Solves `problem` in exact rational arithmetic.
pub fn solve_exact(problem: &LpProblem) -> Result<Solution<Ratio>, SimplexError> {
    solve(problem)
}

/// Solves `problem` with explicit options.
pub fn solve_with_options<S: Scalar>(
    problem: &LpProblem,
    options: &SimplexOptions,
) -> Result<Solution<S>, SimplexError> {
    solve_with_options_observed(problem, options, &mut NoopObserver)
}

/// [`solve_with_options`] with a [`SolveObserver`] tap on the run.  The
/// observer receives phase and pivot events but cannot influence the solve;
/// instantiated with [`NoopObserver`] this compiles to the uninstrumented
/// solver.
pub fn solve_with_options_observed<S: Scalar, O: SolveObserver>(
    problem: &LpProblem,
    options: &SimplexOptions,
    obs: &mut O,
) -> Result<Solution<S>, SimplexError> {
    if O::ENABLED {
        obs.on_event(SolveEvent::RunStarted { path: SolvePath::Dense });
    }
    Tableau::<S>::build(problem).run(problem, options, false, obs)
}

/// Solves `problem`, resuming the simplex from a previously solved basis.
///
/// The basis must come from a problem with the same standard-form shape
/// (same constraint rows in the same order, same senses, same variables) —
/// typically the same steady-state LP with different numeric costs.  When the
/// basis installs cleanly and is primal feasible for the new data, phase 1 is
/// skipped entirely (unless the installed point leaves an artificial variable
/// positive, in which case phase 1 re-runs from it); when it is incompatible,
/// singular or infeasible, the solve silently falls back to the ordinary
/// two-phase method, so the result is identical to [`solve`] either way —
/// only the pivot count changes.
pub fn solve_with_basis<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<Solution<S>, SimplexError> {
    solve_with_basis_options(problem, basis, &SimplexOptions::default())
}

/// [`solve_with_basis`] with explicit options.
pub fn solve_with_basis_options<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    options: &SimplexOptions,
) -> Result<Solution<S>, SimplexError> {
    solve_with_basis_options_observed(problem, basis, options, &mut NoopObserver)
}

/// [`solve_with_basis_options`] with a [`SolveObserver`] tap on the run
/// (including the warm-start install outcome).
pub fn solve_with_basis_options_observed<S: Scalar, O: SolveObserver>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    options: &SimplexOptions,
    obs: &mut O,
) -> Result<Solution<S>, SimplexError> {
    if O::ENABLED {
        obs.on_event(SolveEvent::RunStarted { path: SolvePath::Dense });
    }
    let mut tableau = Tableau::<S>::build(problem);
    if basis_compatible(basis, &tableau)
        && tableau.install_basis(&basis.cols)
        && tableau.rhs.iter().all(|b| !b.is_negative())
    {
        if O::ENABLED {
            obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::Installed });
        }
        return tableau.run(problem, options, true, obs);
    }
    if O::ENABLED {
        obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::Rejected });
    }
    // The install pivoted the tableau partway; rebuild and solve cold.
    Tableau::<S>::build(problem).run(problem, options, false, obs)
}

/// How [`solve_dual_with_basis`] ended up using the supplied basis.
///
/// The variants order the outcomes from cheapest to most expensive; the
/// serving layer's drift triage maps them onto its `InRange` / `DualRepair`
/// / `Resolve` classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DualOutcome {
    /// The basis installed cleanly and was still both primal and dual
    /// feasible for the new data: the old vertex is still optimal, zero
    /// pivots were spent, the solution was merely re-priced.
    StillOptimal,
    /// The basis installed primal-infeasible but dual-feasible — the classic
    /// post-perturbation shape — and dual simplex pivots repaired it in
    /// place without ever leaving the dual-feasible region.
    DualRepaired {
        /// Dual pivots spent restoring primal feasibility.
        pivots: usize,
    },
    /// The basis installed primal-feasible but no longer dual-feasible (the
    /// perturbation moved the optimum); ordinary primal phase-2 pivots
    /// re-optimized from the installed vertex.
    PrimalReoptimized {
        /// Primal pivots spent reaching the new optimum.
        pivots: usize,
    },
    /// The basis could not be exploited (incompatible shape, singular for
    /// the new data, an artificial left basic at a positive value, or
    /// neither primal- nor dual-feasible); the result comes from a fresh
    /// two-phase solve — or, for the positive-artificial case, a phase-1
    /// restart from the installed point.
    FellBack,
}

/// Solves `problem` with the **dual simplex**, resuming from a previously
/// optimal basis of a structurally identical problem.
///
/// After a data perturbation (drifted edge costs, changed right-hand sides)
/// the old optimal basis typically stays *dual* feasible — reduced costs
/// depend on the objective, not the rhs — while the primal point it induces
/// may turn infeasible.  The primal warm start ([`solve_with_basis`]) must
/// discard such a basis and fall back to a full two-phase solve; this solver
/// instead repairs it in place with dual pivots, which preserve dual
/// feasibility and terminate at the new optimum, usually within a handful of
/// iterations.  The returned [`DualOutcome`] reports which path was taken.
///
/// Every path returns the same exact optimum as a cold [`solve`]: the basis
/// is advisory, and any situation the dual method cannot handle (including a
/// failed dual ratio test, which in exact arithmetic certifies primal
/// infeasibility) falls back to the ordinary two-phase method rather than
/// trusting warm state for an infeasibility verdict.
pub fn solve_dual_with_basis<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<(Solution<S>, DualOutcome), SimplexError> {
    solve_dual_with_basis_options(problem, basis, &SimplexOptions::default())
}

/// [`solve_dual_with_basis`] with explicit options.
pub fn solve_dual_with_basis_options<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    options: &SimplexOptions,
) -> Result<(Solution<S>, DualOutcome), SimplexError> {
    solve_dual_with_basis_options_observed(problem, basis, options, &mut NoopObserver)
}

/// [`solve_dual_with_basis_options`] with a [`SolveObserver`] tap on the run.
/// The emitted [`SolveEvent::WarmStart`] outcome mirrors the returned
/// [`DualOutcome`] (it is emitted as soon as the outcome is known, so fallback
/// runs are observed *after* their `fell-back` marker).
pub fn solve_dual_with_basis_options_observed<S: Scalar, O: SolveObserver>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    options: &SimplexOptions,
    obs: &mut O,
) -> Result<(Solution<S>, DualOutcome), SimplexError> {
    if O::ENABLED {
        obs.on_event(SolveEvent::RunStarted { path: SolvePath::Dense });
    }
    let mut tableau = Tableau::<S>::build(problem);
    if !basis_compatible(basis, &tableau) || !tableau.install_basis(&basis.cols) {
        if O::ENABLED {
            obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::FellBack });
        }
        let sol = Tableau::<S>::build(problem).run(problem, options, false, obs)?;
        return Ok((sol, DualOutcome::FellBack));
    }
    // Pivot basic artificials out wherever a real column is available —
    // exactly what the two-phase path does before phase 2.  This is
    // load-bearing here, not cosmetic: an artificial left basic in a row
    // that is *not* all-zero (the installed basis came from different
    // numeric data) could be driven to a positive value by later primal or
    // dual pivots, silently turning the "optimum" infeasible for the real
    // constraints.  After the drive-out, any remaining basic artificial sits
    // in an all-zero real row, where no allowed pivot can ever change its
    // value.
    tableau.drive_out_artificials();
    // An artificial still basic at a strictly positive value means the
    // installed point violates a real constraint the dual method cannot see
    // — re-run phase 1 from the installed basis like the primal warm path
    // does.  (A *negative* one makes its row the dual leaving row with no
    // eligible entering column, so the dual path below falls back cold.)
    let positive_artificial = (0..tableau.num_rows()).any(|i| {
        tableau.kinds[tableau.basis[i]] == ColKind::Artificial && tableau.rhs[i].is_positive()
    });
    if positive_artificial {
        if O::ENABLED {
            obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::FellBack });
        }
        let sol = tableau.run(problem, options, true, obs)?;
        return Ok((sol, DualOutcome::FellBack));
    }

    let primal_feasible = tableau.rhs.iter().all(|b| !b.is_negative());
    let allowed: Vec<bool> = tableau.kinds.iter().map(|k| *k != ColKind::Artificial).collect();
    let costs = tableau.costs.clone();
    let mut reduced = tableau.reduced_cost_row(&costs);
    let dual_feasible = tableau.choose_entering(&reduced, &allowed, false).is_none();
    let mut iterations = 0usize;
    match (primal_feasible, dual_feasible) {
        (true, true) => {
            if O::ENABLED {
                obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::StillOptimal });
            }
            Ok((tableau.finish(problem, 0, 0, true), DualOutcome::StillOptimal))
        }
        (true, false) => {
            if O::ENABLED {
                obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::PrimalReoptimized });
                obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase2 });
            }
            tableau.optimize(
                &costs,
                &allowed,
                options,
                &mut iterations,
                SolvePhase::Phase2,
                obs,
            )?;
            let pivots = iterations;
            Ok((
                tableau.finish(problem, iterations, 0, true),
                DualOutcome::PrimalReoptimized { pivots },
            ))
        }
        (false, true) => {
            if O::ENABLED {
                obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::DualRepair });
            }
            match tableau.dual_optimize(&allowed, &mut reduced, options, &mut iterations, obs)? {
                DualRun::Restored => {
                    let dual_pivots = iterations;
                    if O::ENABLED {
                        obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::DualRepaired });
                        obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase2 });
                    }
                    // Dual feasibility is invariant under the dual ratio
                    // test, so the repaired vertex is already optimal; the
                    // primal pass is a no-op in exact arithmetic and guards
                    // the f64 instantiation against tolerance drift.
                    tableau.optimize(
                        &costs,
                        &allowed,
                        options,
                        &mut iterations,
                        SolvePhase::Phase2,
                        obs,
                    )?;
                    Ok((
                        tableau.finish(problem, iterations, 0, true),
                        DualOutcome::DualRepaired { pivots: dual_pivots },
                    ))
                }
                DualRun::RatioTestFailed => {
                    if O::ENABLED {
                        obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::FellBack });
                    }
                    // Dual unboundedness certifies primal infeasibility in
                    // exact arithmetic, but never trust a warm basis for an
                    // infeasibility verdict: re-solve from scratch.
                    let sol = Tableau::<S>::build(problem).run(problem, options, false, obs)?;
                    Ok((sol, DualOutcome::FellBack))
                }
            }
        }
        (false, false) => {
            if O::ENABLED {
                obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::FellBack });
            }
            let sol = Tableau::<S>::build(problem).run(problem, options, false, obs)?;
            Ok((sol, DualOutcome::FellBack))
        }
    }
}

/// Shape compatibility of a basis with a freshly built tableau: same row
/// count, same standard form, in-range and duplicate-free columns.
fn basis_compatible<S: Scalar>(basis: &SolvedBasis, tableau: &Tableau<S>) -> bool {
    basis.cols.len() == tableau.num_rows()
        && basis.num_cols == tableau.num_cols()
        && basis.n_structural == tableau.n_structural
        && basis.cols.iter().all(|&c| c < basis.num_cols)
        && {
            let mut sorted = basis.cols.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        }
}

pub(crate) use crate::sparse::ColKind;

/// How a dual-simplex run ended.
enum DualRun {
    /// Primal feasibility restored; the basis is optimal.
    Restored,
    /// A leaving row had no eligible entering column (dual unbounded).
    RatioTestFailed,
}

/// Dense standard-form tableau.
struct Tableau<S> {
    /// `rows[i]` holds the coefficients of row `i` over all columns.
    rows: Vec<Vec<S>>,
    /// Right-hand side per row (kept separately; always `>= 0` in exact
    /// arithmetic, up to tolerance in `f64`).
    rhs: Vec<S>,
    /// Index of the basic column of each row.
    basis: Vec<usize>,
    /// Kind of every column.
    kinds: Vec<ColKind>,
    /// Phase-2 objective coefficient per column (maximization form).
    costs: Vec<S>,
    /// Column that formed the initial identity of each row (used to read the duals).
    init_col: Vec<usize>,
    /// Whether the original constraint was negated during rhs normalization.
    negated: Vec<bool>,
    /// Number of structural columns.
    n_structural: usize,
}

impl<S: Scalar> Tableau<S> {
    fn build(problem: &LpProblem) -> Self {
        let n = problem.num_vars();
        let m = problem.num_constraints();

        // Count extra columns.
        let mut n_slack = 0;
        let mut n_art = 0;
        for c in problem.constraints() {
            let rhs_neg = c.rhs.is_negative();
            let sense = effective_sense(c.sense, rhs_neg);
            match sense {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }

        let total_cols = n + n_slack + n_art;
        let mut kinds = vec![ColKind::Structural; n];
        kinds.extend(std::iter::repeat_n(ColKind::Slack, n_slack));
        kinds.extend(std::iter::repeat_n(ColKind::Artificial, n_art));

        // Phase-2 costs: maximization form.
        let flip = matches!(problem.direction(), Objective::Minimize);
        let mut costs = vec![S::zero(); total_cols];
        for (j, c) in problem.objective_vector().iter().enumerate() {
            let v = S::from_ratio(c);
            costs[j] = if flip { v.neg() } else { v };
        }

        let mut rows = Vec::with_capacity(m);
        let mut rhs = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut init_col = Vec::with_capacity(m);
        let mut negated = Vec::with_capacity(m);

        let mut next_slack = n;
        let mut next_art = n + n_slack;

        for c in problem.constraints() {
            let rhs_neg = c.rhs.is_negative();
            let sense = effective_sense(c.sense, rhs_neg);
            let mut row = vec![S::zero(); total_cols];
            for (v, coeff) in c.expr.terms() {
                let val = S::from_ratio(coeff);
                row[v.index()] = if rhs_neg { val.neg() } else { val };
            }
            let b = {
                let val = S::from_ratio(&c.rhs);
                if rhs_neg {
                    val.neg()
                } else {
                    val
                }
            };
            match sense {
                Sense::Le => {
                    row[next_slack] = S::one();
                    basis.push(next_slack);
                    init_col.push(next_slack);
                    next_slack += 1;
                }
                Sense::Ge => {
                    row[next_slack] = S::one().neg();
                    next_slack += 1;
                    row[next_art] = S::one();
                    basis.push(next_art);
                    init_col.push(next_art);
                    next_art += 1;
                }
                Sense::Eq => {
                    row[next_art] = S::one();
                    basis.push(next_art);
                    init_col.push(next_art);
                    next_art += 1;
                }
            }
            rows.push(row);
            rhs.push(b);
            negated.push(rhs_neg);
        }

        Tableau { rows, rhs, basis, kinds, costs, init_col, negated, n_structural: n }
    }

    fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn num_cols(&self) -> usize {
        self.kinds.len()
    }

    /// Performs a pivot on (`row`, `col`).
    fn pivot(&mut self, row: usize, col: usize) {
        let pivot_val = self.rows[row][col].clone();
        debug_assert!(!pivot_val.is_zero(), "pivot on a zero entry");
        // Normalize the pivot row.
        for v in self.rows[row].iter_mut() {
            if !v.is_zero() {
                *v = v.div(&pivot_val);
            }
        }
        self.rhs[row] = self.rhs[row].div(&pivot_val);
        self.rows[row][col] = S::one();

        // Eliminate the pivot column from all other rows.
        for i in 0..self.num_rows() {
            if i == row {
                continue;
            }
            let factor = self.rows[i][col].clone();
            if factor.is_zero() {
                continue;
            }
            let (pivot_row, other_row) = if i < row {
                let (a, b) = self.rows.split_at_mut(row);
                (&b[0], &mut a[i])
            } else {
                let (a, b) = self.rows.split_at_mut(i);
                (&a[row], &mut b[0])
            };
            for (dst, src) in other_row.iter_mut().zip(pivot_row.iter()) {
                if !src.is_zero() {
                    *dst = dst.sub(&factor.mul(src));
                }
            }
            other_row[col] = S::zero();
            self.rhs[i] = self.rhs[i].sub(&factor.mul(&self.rhs[row]));
        }
        self.basis[row] = col;
    }

    /// Reduced cost of column `j` w.r.t. the cost vector `costs`:
    /// `r_j = c_j - sum_i c_{basis[i]} * T[i][j]`.
    fn reduced_cost(&self, costs: &[S], j: usize) -> S {
        let mut acc = costs[j].clone();
        for i in 0..self.num_rows() {
            let cb = &costs[self.basis[i]];
            if cb.is_zero() {
                continue;
            }
            let t = &self.rows[i][j];
            if t.is_zero() {
                continue;
            }
            acc = acc.sub(&cb.mul(t));
        }
        acc
    }

    /// Full vector of reduced costs (computed from scratch, `O(m n)`).  Used
    /// once per phase; afterwards the vector is updated incrementally at each
    /// pivot so that the entering-column choice costs `O(n)`.
    fn reduced_cost_row(&self, costs: &[S]) -> Vec<S> {
        (0..self.num_cols()).map(|j| self.reduced_cost(costs, j)).collect()
    }

    /// Chooses the entering column: Dantzig (largest reduced cost) or Bland
    /// (smallest index with positive reduced cost).  Columns for which
    /// `allowed` is false never enter.
    fn choose_entering(&self, reduced: &[S], allowed: &[bool], bland: bool) -> Option<usize> {
        let mut best: Option<(usize, &S)> = None;
        for (j, r) in reduced.iter().enumerate() {
            if !allowed[j] {
                continue;
            }
            if r.is_positive() {
                if bland {
                    return Some(j);
                }
                match &best {
                    None => best = Some((j, r)),
                    Some((_, rb)) if rb.lt(r) => best = Some((j, r)),
                    _ => {}
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Ratio test: returns the leaving row, or `None` if the column is
    /// unbounded.  Ties are broken by the smallest basic variable index
    /// (lexicographic protection together with Bland's entering rule).
    fn choose_leaving(&self, col: usize) -> Option<usize> {
        let mut best: Option<(usize, S)> = None;
        for i in 0..self.num_rows() {
            let a = &self.rows[i][col];
            if !a.is_positive() {
                continue;
            }
            let ratio = self.rhs[i].div(a);
            match &best {
                None => best = Some((i, ratio)),
                Some((bi, br)) => {
                    if ratio.lt(br) || (!br.lt(&ratio) && self.basis[i] < self.basis[*bi]) {
                        best = Some((i, ratio));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Runs simplex iterations with the given cost vector until optimality.
    ///
    /// The reduced-cost row is computed once and updated incrementally at each
    /// pivot, so that an iteration costs `O(m n)` for the pivot itself plus
    /// `O(n)` for pricing (instead of `O(m n)` pricing per iteration).
    fn optimize<O: SolveObserver>(
        &mut self,
        costs: &[S],
        allowed: &[bool],
        options: &SimplexOptions,
        iterations: &mut usize,
        phase: SolvePhase,
        obs: &mut O,
    ) -> Result<(), SimplexError> {
        let default_cap = 50 * (self.num_rows() + self.num_cols()) + 10_000;
        let cap = options.max_iterations.unwrap_or(default_cap);
        let mut reduced = self.reduced_cost_row(costs);
        loop {
            if *iterations > cap {
                return Err(SimplexError::IterationLimit { iterations: *iterations });
            }
            let bland = *iterations >= options.bland_after;
            let Some(col) = self.choose_entering(&reduced, allowed, bland) else {
                return Ok(());
            };
            let Some(row) = self.choose_leaving(col) else {
                return Err(SimplexError::Unbounded);
            };
            if O::ENABLED {
                obs.on_event(SolveEvent::Pivot {
                    phase,
                    kind: PivotKind::Primal,
                    rule: if bland { PivotRule::Bland } else { PivotRule::Dantzig },
                    entering: col,
                    leaving: self.basis[row],
                    degenerate: self.rhs[row].is_zero(),
                });
            }
            let entering_cost = reduced[col].clone();
            self.pivot(row, col);
            // r <- r - r[col] * (normalized pivot row).
            for (r, t) in reduced.iter_mut().zip(self.rows[row].iter()) {
                if !t.is_zero() {
                    *r = r.sub(&entering_cost.mul(t));
                }
            }
            reduced[col] = S::zero();
            *iterations += 1;
        }
    }

    /// Attempts to pivot the tableau onto the supplied basis (column `cols[i]`
    /// basic in row `i`).  Targets whose pivot entry is currently zero are
    /// retried after other installs create fill-in; if a full pass makes no
    /// progress the basis is singular for this problem's data and `false` is
    /// returned (the tableau is then partially pivoted and must be discarded).
    /// A successful install says nothing about primal feasibility: the
    /// induced vertex may have negative basic values, which the *primal*
    /// simplex cannot start from (its ratio test assumes `rhs >= 0`) but the
    /// *dual* simplex repairs — callers check `rhs` themselves.
    fn install_basis(&mut self, cols: &[usize]) -> bool {
        let m = self.num_rows();
        let target: std::collections::HashSet<usize> = cols.iter().copied().collect();
        // A basis is a *set* of columns; which row each one ends up basic in
        // is irrelevant (the tableau is the same up to row order), and fixing
        // the row assignment up front would wrongly fail on bases that
        // permute the current one.  Rows already holding a target column are
        // claimed; every other target is pivoted into some unclaimed row.
        let mut claimed: Vec<bool> = (0..m).map(|i| target.contains(&self.basis[i])).collect();
        let mut pending: Vec<usize> = {
            let basic: std::collections::HashSet<usize> = self.basis.iter().copied().collect();
            cols.iter().copied().filter(|c| !basic.contains(c)).collect()
        };
        // Multi-pass: a pivot creates fill-in that can unlock a target column
        // whose entries in the unclaimed rows were all zero so far.
        while !pending.is_empty() {
            let before = pending.len();
            pending.retain(|&c| {
                // Pick the unclaimed row with the largest pivot magnitude —
                // in exact arithmetic any non-zero works, in f64 it keeps the
                // reconstruction well-conditioned.
                let row = (0..m).filter(|&r| !claimed[r] && !self.rows[r][c].is_zero()).max_by(
                    |&a, &b| {
                        let (va, vb) =
                            (self.rows[a][c].to_f64().abs(), self.rows[b][c].to_f64().abs());
                        va.partial_cmp(&vb).unwrap_or(std::cmp::Ordering::Equal)
                    },
                );
                match row {
                    Some(r) => {
                        self.pivot(r, c);
                        claimed[r] = true;
                        false
                    }
                    None => true,
                }
            });
            if pending.len() == before {
                return false;
            }
        }
        true
    }

    /// Drives artificial variables out of the basis where possible so later
    /// pivots only touch real columns.  Rows where no real column has a
    /// non-zero entry are redundant: their artificial stays basic and —
    /// because every entry an allowed entering column could contribute is
    /// zero there — its value can never change again.  Shared by the
    /// two-phase path (between phases) and the warm dual path (right after
    /// a basis install, where skipping it would let later pivots push a
    /// basic artificial positive and corrupt the reported optimum).
    fn drive_out_artificials(&mut self) {
        for i in 0..self.num_rows() {
            if self.kinds[self.basis[i]] != ColKind::Artificial {
                continue;
            }
            let replacement = (0..self.num_cols())
                .find(|&j| self.kinds[j] != ColKind::Artificial && !self.rows[i][j].is_zero());
            if let Some(j) = replacement {
                self.pivot(i, j);
            }
        }
    }

    /// Runs **dual simplex** iterations until primal feasibility is restored
    /// (`rhs >= 0`), assuming the current basis is dual feasible (all allowed
    /// reduced costs `<= 0`).  Each iteration picks a leaving row with a
    /// negative basic value (most negative first, smallest basic index under
    /// the anti-cycling rule) and an entering column by the dual ratio test —
    /// the allowed column with a negative entry in that row minimizing
    /// `reduced / entry`, which keeps every reduced cost non-positive — so
    /// the first primal-feasible basis reached is optimal.
    ///
    /// Returns [`DualRun::RatioTestFailed`] when a leaving row has no
    /// negative entry in any allowed column: the dual is unbounded, i.e. the
    /// primal is infeasible (callers re-verify that verdict from scratch).
    ///
    /// `reduced` is the caller's already-computed reduced-cost row for the
    /// phase-2 objective (the dual-feasibility probe needs it anyway); it is
    /// updated incrementally at each pivot, so no `O(m n)` re-pricing
    /// happens here.
    ///
    /// Pivot events are buffered and flushed only on [`DualRun::Restored`]:
    /// pivots of a run that ends in [`DualRun::RatioTestFailed`] are thrown
    /// away together with the tableau (the caller re-solves cold and reports
    /// the fresh run's counts), so emitting them would break the
    /// events-equal-iterations conservation contract.
    fn dual_optimize<O: SolveObserver>(
        &mut self,
        allowed: &[bool],
        reduced: &mut [S],
        options: &SimplexOptions,
        iterations: &mut usize,
        obs: &mut O,
    ) -> Result<DualRun, SimplexError> {
        let default_cap = 50 * (self.num_rows() + self.num_cols()) + 10_000;
        let cap = options.max_iterations.unwrap_or(default_cap);
        let mut pending: Vec<SolveEvent> = Vec::new();
        loop {
            if *iterations > cap {
                return Err(SimplexError::IterationLimit { iterations: *iterations });
            }
            let bland = *iterations >= options.bland_after;
            let mut row: Option<usize> = None;
            for i in 0..self.num_rows() {
                if !self.rhs[i].is_negative() {
                    continue;
                }
                row = Some(match row {
                    None => i,
                    Some(r) if bland => {
                        if self.basis[i] < self.basis[r] {
                            i
                        } else {
                            r
                        }
                    }
                    Some(r) => {
                        if self.rhs[i].lt(&self.rhs[r]) {
                            i
                        } else {
                            r
                        }
                    }
                });
            }
            let Some(row) = row else {
                if O::ENABLED {
                    for event in pending.drain(..) {
                        obs.on_event(event);
                    }
                }
                return Ok(DualRun::Restored);
            };
            // Dual ratio test; iterating in ascending column order keeps the
            // smallest index on ties, which is Bland-compatible.
            let mut entering: Option<(usize, S)> = None;
            for j in 0..self.num_cols() {
                if !allowed[j] {
                    continue;
                }
                let a = &self.rows[row][j];
                if !a.is_negative() {
                    continue;
                }
                let ratio = reduced[j].div(a);
                match &entering {
                    None => entering = Some((j, ratio)),
                    Some((_, best)) if ratio.lt(best) => entering = Some((j, ratio)),
                    _ => {}
                }
            }
            let Some((col, _)) = entering else {
                return Ok(DualRun::RatioTestFailed);
            };
            if O::ENABLED {
                pending.push(SolveEvent::Pivot {
                    phase: SolvePhase::DualRepair,
                    kind: PivotKind::Dual,
                    rule: if bland { PivotRule::Bland } else { PivotRule::Dantzig },
                    entering: col,
                    leaving: self.basis[row],
                    degenerate: reduced[col].is_zero(),
                });
            }
            let entering_cost = reduced[col].clone();
            self.pivot(row, col);
            for (r, t) in reduced.iter_mut().zip(self.rows[row].iter()) {
                if !t.is_zero() {
                    *r = r.sub(&entering_cost.mul(t));
                }
            }
            reduced[col] = S::zero();
            *iterations += 1;
        }
    }

    fn run<O: SolveObserver>(
        mut self,
        problem: &LpProblem,
        options: &SimplexOptions,
        warm_started: bool,
        obs: &mut O,
    ) -> Result<Solution<S>, SimplexError> {
        let mut iterations = 0usize;

        // ---- Phase 1: minimize the sum of artificial variables. ----
        //
        // Cold, phase 1 runs whenever artificials exist: even when they all
        // start at zero (all-zero-rhs equality rows, common in the flow LPs),
        // its pivots select a *well-conditioned* feasible basis, and skipping
        // it leaves phase 2 to fight the degeneracy from an arbitrary one —
        // observed as a >100x pivot blow-up on the steady-state reduce LPs.
        // Warm, the installed basis was optimal for a sibling problem, so
        // phase 1 is only needed if it leaves an artificial basic at a
        // strictly positive value (i.e. the basis is infeasible here).
        let needs_phase1 = if warm_started {
            (0..self.num_rows()).any(|i| {
                self.kinds[self.basis[i]] == ColKind::Artificial && self.rhs[i].is_positive()
            })
        } else {
            self.kinds.contains(&ColKind::Artificial)
        };
        if needs_phase1 {
            if O::ENABLED {
                obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase1 });
            }
            let phase1_costs: Vec<S> = self
                .kinds
                .iter()
                .map(|k| if *k == ColKind::Artificial { S::one().neg() } else { S::zero() })
                .collect();
            let allowed: Vec<bool> = vec![true; self.num_cols()];
            self.optimize(
                &phase1_costs,
                &allowed,
                options,
                &mut iterations,
                SolvePhase::Phase1,
                obs,
            )?;

            // Feasible iff all artificials are zero, i.e. phase-1 objective is 0.
            let mut infeasibility = S::zero();
            for i in 0..self.num_rows() {
                if self.kinds[self.basis[i]] == ColKind::Artificial {
                    infeasibility = infeasibility.add(&self.rhs[i]);
                }
            }
            if infeasibility.is_positive() {
                return Err(SimplexError::Infeasible);
            }
        }
        let phase1_iterations = iterations;

        self.drive_out_artificials();

        // ---- Phase 2: optimize the real objective, artificials locked out. ----
        if O::ENABLED {
            obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase2 });
        }
        let allowed: Vec<bool> = self.kinds.iter().map(|k| *k != ColKind::Artificial).collect();
        let costs = self.costs.clone();
        self.optimize(&costs, &allowed, options, &mut iterations, SolvePhase::Phase2, obs)?;

        Ok(self.finish(problem, iterations, phase1_iterations, warm_started))
    }

    /// Reads the primal solution, objective, duals and final basis out of an
    /// optimized tableau.  Shared by the two-phase [`Tableau::run`] and the
    /// dual-simplex path, which reach optimality by different pivot
    /// sequences but extract the result identically.
    fn finish(
        self,
        problem: &LpProblem,
        iterations: usize,
        phase1_iterations: usize,
        warm_started: bool,
    ) -> Solution<S> {
        let costs = self.costs.clone();

        // ---- Extract the primal solution. ----
        let mut values = vec![S::zero(); self.n_structural];
        for i in 0..self.num_rows() {
            let j = self.basis[i];
            if j < self.n_structural {
                values[j] = clamp_nonneg(self.rhs[i].clone());
            }
        }

        // Objective in maximization form, then flip back for minimization problems.
        let mut objective = S::zero();
        for (j, c) in costs.iter().enumerate().take(self.n_structural) {
            if !c.is_zero() && !values[j].is_zero() {
                objective = objective.add(&c.mul(&values[j]));
            }
        }
        if matches!(problem.direction(), Objective::Minimize) {
            objective = objective.neg();
        }

        // ---- Extract the duals: y_i = c_B^T B^{-1} e_i, read from the column
        // that formed the initial identity of row i. ----
        let mut duals = Vec::with_capacity(self.num_rows());
        for i in 0..self.num_rows() {
            let col = self.init_col[i];
            let mut y = S::zero();
            for r in 0..self.num_rows() {
                let cb = &costs[self.basis[r]];
                if cb.is_zero() {
                    continue;
                }
                let t = &self.rows[r][col];
                if t.is_zero() {
                    continue;
                }
                y = y.add(&cb.mul(t));
            }
            if self.negated[i] {
                y = y.neg();
            }
            duals.push(y);
        }

        let basis = SolvedBasis {
            cols: self.basis.clone(),
            num_cols: self.num_cols(),
            n_structural: self.n_structural,
        };
        Solution { values, objective, duals, iterations, phase1_iterations, warm_started, basis }
    }
}

/// The pieces of an exact optimal tableau that post-optimal sensitivity
/// analysis ([`crate::ranging`]) reads: the pivoted rows, the basis
/// assignment, the reduced-cost row, the mask of columns eligible to enter
/// (non-artificial), and — for rhs ranging — the basic values, the column
/// that formed each row's initial identity (so `B⁻¹ e_i` can be read off),
/// the rhs-negation record and which rows keep a basic artificial.
pub(crate) struct OptimalTableau {
    /// Pivoted tableau rows over all standard-form columns.
    pub rows: Vec<Vec<Ratio>>,
    /// Basic column of each row.
    pub basis: Vec<usize>,
    /// `true` for columns allowed to enter (non-artificial).
    pub allowed: Vec<bool>,
    /// Reduced cost of every column w.r.t. the maximization-form objective.
    pub reduced: Vec<Ratio>,
    /// Number of structural columns.
    pub n_structural: usize,
    /// Value of the basic variable of each row (`B⁻¹ b`, all `>= 0`).
    pub rhs: Vec<Ratio>,
    /// Column that formed the initial identity of row `i`: its pivoted
    /// column now holds `B⁻¹ e_i`.
    pub init_col: Vec<usize>,
    /// Whether the original constraint was negated during rhs normalization.
    pub negated: Vec<bool>,
    /// `true` for rows whose basic column is an artificial (stuck at zero in
    /// a redundant row).
    pub basic_artificial: Vec<bool>,
}

/// Outcome of installing a basis for ranging purposes.
pub(crate) enum InstallVerdict {
    /// The basis is optimal for the problem; the tableau is usable.
    Optimal(Box<OptimalTableau>),
    /// The basis does not fit the problem's standard form or is singular.
    Unusable,
    /// The basis installed but is not optimal for this data.
    NotOptimal,
}

/// Installs `basis` on a fresh exact tableau of `problem` and verifies it is
/// optimal (primal feasible, no positive artificial, dual feasible).
pub(crate) fn install_for_ranging(problem: &LpProblem, basis: &SolvedBasis) -> InstallVerdict {
    let mut tableau = Tableau::<Ratio>::build(problem);
    if !basis_compatible(basis, &tableau) || !tableau.install_basis(&basis.cols) {
        return InstallVerdict::Unusable;
    }
    let feasible = tableau.rhs.iter().all(|b| !b.is_negative())
        && (0..tableau.num_rows()).all(|i| {
            tableau.kinds[tableau.basis[i]] != ColKind::Artificial || tableau.rhs[i].is_zero()
        });
    if !feasible {
        return InstallVerdict::NotOptimal;
    }
    let allowed: Vec<bool> = tableau.kinds.iter().map(|k| *k != ColKind::Artificial).collect();
    let reduced = tableau.reduced_cost_row(&tableau.costs);
    if tableau.choose_entering(&reduced, &allowed, false).is_some() {
        return InstallVerdict::NotOptimal;
    }
    let basic_artificial: Vec<bool> =
        tableau.basis.iter().map(|&col| tableau.kinds[col] == ColKind::Artificial).collect();
    InstallVerdict::Optimal(Box::new(OptimalTableau {
        rows: tableau.rows,
        basis: tableau.basis,
        allowed,
        reduced,
        n_structural: tableau.n_structural,
        rhs: tableau.rhs,
        init_col: tableau.init_col,
        negated: tableau.negated,
        basic_artificial,
    }))
}

/// Clamp tiny negative values (f64 round-off) to zero; exact scalars pass through.
pub(crate) fn clamp_nonneg<S: Scalar>(v: S) -> S {
    if v.is_negative() || v.is_zero() {
        // For exact arithmetic a negative basic value cannot happen (the ratio
        // test preserves rhs >= 0); for f64 it can be a tiny negative epsilon.
        if v.to_f64() < 0.0 {
            S::zero()
        } else {
            v
        }
    } else {
        v
    }
}

/// Sense after multiplying a constraint by -1 when its rhs is negative.
pub(crate) fn effective_sense(sense: Sense, negated: bool) -> Sense {
    if !negated {
        return sense;
    }
    match sense {
        Sense::Le => Sense::Ge,
        Sense::Ge => Sense::Le,
        Sense::Eq => Sense::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, LpProblem};
    use steady_rational::{rat, Ratio};

    fn expr(terms: &[(crate::model::VarId, Ratio)]) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(*v, c.clone());
        }
        e
    }

    /// maximize 3x + 2y s.t. x + y <= 4, x + 3y <= 6 -> optimum (4, 0), value 12.
    fn sample_lp() -> LpProblem {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.set_objective(y, rat(2, 1));
        lp.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Le, rat(4, 1));
        lp.add_constraint("c2", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(6, 1));
        lp
    }

    #[test]
    fn basic_max_f64() {
        let sol = solve_f64(&sample_lp()).unwrap();
        assert!((sol.objective - 12.0).abs() < 1e-6);
        assert!((sol.values[0] - 4.0).abs() < 1e-6);
        assert!(sol.values[1].abs() < 1e-6);
    }

    #[test]
    fn basic_max_exact() {
        let sol = solve_exact(&sample_lp()).unwrap();
        assert_eq!(sol.objective, rat(12, 1));
        assert_eq!(sol.values, vec![rat(4, 1), rat(0, 1)]);
    }

    #[test]
    fn fractional_optimum_exact() {
        // maximize x + y s.t. 2x + y <= 1, x + 3y <= 1 -> x = 2/5, y = 1/5, obj 3/5.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("b", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(1, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(3, 5));
        assert_eq!(sol.values, vec![rat(2, 5), rat(1, 5)]);
    }

    #[test]
    fn equality_and_ge_constraints() {
        // minimize 2x + 3y s.t. x + y == 10, x >= 3, y >= 2 -> x = 8, y = 2, obj 22.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(2, 1));
        lp.set_objective(y, rat(3, 1));
        lp.add_constraint("sum", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(10, 1));
        lp.add_constraint("xmin", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(3, 1));
        lp.add_constraint("ymin", expr(&[(y, rat(1, 1))]), Sense::Ge, rat(2, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(22, 1));
        assert_eq!(sol.values, vec![rat(8, 1), rat(2, 1)]);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("lo", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(5, 1));
        lp.add_constraint("hi", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        assert_eq!(solve_exact(&lp).unwrap_err(), SimplexError::Infeasible);
        assert_eq!(solve_f64(&lp).unwrap_err(), SimplexError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("only_y", expr(&[(y, rat(1, 1))]), Sense::Le, rat(1, 1));
        assert_eq!(solve_exact(&lp).unwrap_err(), SimplexError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // maximize x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("neg", expr(&[(x, rat(-1, 1))]), Sense::Le, rat(-2, 1));
        lp.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(5, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(5, 1));
    }

    #[test]
    fn minimization_direction() {
        // minimize x + y s.t. x + 2y >= 4, 3x + y >= 6 -> x = 8/5, y = 6/5, obj 14/5.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Ge, rat(4, 1));
        lp.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Ge, rat(6, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(14, 5));
        assert_eq!(sol.values, vec![rat(8, 5), rat(6, 5)]);
    }

    #[test]
    fn redundant_equalities_do_not_break() {
        // x + y == 2 stated twice plus the implied sum; phase 1 leaves an
        // artificial basic at zero in a redundant row.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("e1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(2, 1));
        lp.add_constraint("e2", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(2, 1));
        lp.add_constraint("e3", expr(&[(x, rat(2, 1)), (y, rat(2, 1))]), Sense::Eq, rat(4, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(2, 1));
        assert_eq!(sol.values[0], rat(2, 1));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-like degeneracy: many redundant constraints through the origin.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        let z = lp.add_var("z");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.set_objective(z, rat(1, 1));
        for i in 0..12 {
            lp.add_constraint(
                format!("c{i}"),
                expr(&[(x, rat(1 + (i % 3), 1)), (y, rat(1, 1)), (z, rat(1, 1))]),
                Sense::Le,
                rat(0, 1),
            );
        }
        lp.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(1, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, rat(0, 1));
    }

    #[test]
    fn duals_certify_optimum() {
        // For the sample LP, strong duality: y1*4 + y2*6 == 12 with y >= 0 and
        // A^T y >= c.
        let lp = sample_lp();
        let sol = solve_exact(&lp).unwrap();
        let y1 = &sol.duals[0];
        let y2 = &sol.duals[1];
        assert!(!y1.is_negative() && !y2.is_negative());
        assert_eq!(y1 * &rat(4, 1) + y2 * &rat(6, 1), rat(12, 1));
        // Dual feasibility: column x: y1 + y2 >= 3; column y: y1 + 3 y2 >= 2.
        assert!(y1 + y2 >= rat(3, 1));
        assert!(y1 + &(y2 * &rat(3, 1)) >= rat(2, 1));
    }

    #[test]
    fn empty_problem() {
        let lp = LpProblem::maximize();
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, Ratio::zero());
        assert!(sol.values.is_empty());
    }

    #[test]
    fn zero_objective_feasible() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        let sol = solve_exact(&lp).unwrap();
        assert_eq!(sol.objective, Ratio::zero());
    }

    #[test]
    fn warm_start_on_identical_problem_repivots_nothing() {
        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        assert!(!cold.warm_started);
        let warm = solve_with_basis::<Ratio>(&lp, &cold.basis).unwrap();
        assert!(warm.warm_started);
        assert_eq!(warm.iterations, 0, "the optimal basis needs no further pivots");
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.basis, cold.basis);
    }

    #[test]
    fn warm_start_with_perturbed_costs_matches_cold_solve() {
        // Same constraint structure, different coefficients and rhs: the old
        // basis seeds the solve, the optimum must match a cold solve exactly.
        let lp = sample_lp();
        let cold_basis = solve_exact(&lp).unwrap().basis;
        let mut perturbed = LpProblem::maximize();
        let x = perturbed.add_var("x");
        let y = perturbed.add_var("y");
        perturbed.set_objective(x, rat(3, 1));
        perturbed.set_objective(y, rat(2, 1));
        perturbed.add_constraint(
            "c1",
            expr(&[(x, rat(1, 1)), (y, rat(2, 1))]),
            Sense::Le,
            rat(5, 1),
        );
        perturbed.add_constraint(
            "c2",
            expr(&[(x, rat(1, 1)), (y, rat(3, 1))]),
            Sense::Le,
            rat(7, 1),
        );
        let warm = solve_with_basis::<Ratio>(&perturbed, &cold_basis).unwrap();
        let cold = solve_exact(&perturbed).unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
        assert!(warm.warm_started);
    }

    #[test]
    fn incompatible_basis_falls_back_to_cold_solve() {
        let lp = sample_lp();
        let foreign = SolvedBasis { cols: vec![0, 1, 2], num_cols: 9, n_structural: 3 };
        let sol = solve_with_basis::<Ratio>(&lp, &foreign).unwrap();
        assert!(!sol.warm_started);
        assert_eq!(sol.objective, rat(12, 1));
    }

    #[test]
    fn warm_start_reruns_phase1_when_an_artificial_stays_positive() {
        // maximize x s.t. x + y == 3, x <= 2.  Standard-form columns:
        // x(0), y(1), slack of c2 (2), artificial of c1 (3).  Installing the
        // basis {artificial, slack} reproduces the initial tableau — the
        // artificial is basic at 3 > 0, so the warm solve must re-enter
        // phase 1 and still reach the exact optimum (2, 1).
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("sum", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(3, 1));
        lp.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(2, 1));
        let infeasible_basis = SolvedBasis { cols: vec![3, 2], num_cols: 4, n_structural: 2 };
        let warm = solve_with_basis::<Ratio>(&lp, &infeasible_basis).unwrap();
        assert!(warm.warm_started);
        assert!(warm.phase1_iterations > 0, "phase 1 must re-run from the infeasible basis");
        let cold = solve_exact(&lp).unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.values, vec![rat(2, 1), rat(1, 1)]);
    }

    #[test]
    fn primal_infeasible_basis_falls_back_to_cold_solve() {
        // maximize x s.t. x - y <= 2, x <= 5.  Columns: x(0), y(1), sl1(2),
        // sl2(3).  The basis {y, sl2} pivots row 1 on the -1 entry of y,
        // turning the rhs negative — primal infeasible, so the warm solve
        // must discard the basis and run the ordinary two-phase method.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(-1, 1))]), Sense::Le, rat(2, 1));
        lp.add_constraint("c2", expr(&[(x, rat(1, 1))]), Sense::Le, rat(5, 1));
        let bad = SolvedBasis { cols: vec![1, 3], num_cols: 4, n_structural: 2 };
        let sol = solve_with_basis::<Ratio>(&lp, &bad).unwrap();
        assert!(!sol.warm_started);
        assert_eq!(sol.objective, rat(5, 1));
    }

    #[test]
    fn dual_solver_reprices_the_unchanged_problem_with_zero_pivots() {
        let lp = sample_lp();
        let cold = solve_exact(&lp).unwrap();
        let (sol, outcome) = solve_dual_with_basis::<Ratio>(&lp, &cold.basis).unwrap();
        assert_eq!(outcome, DualOutcome::StillOptimal);
        assert_eq!(sol.iterations, 0);
        assert!(sol.warm_started);
        assert_eq!(sol.objective, cold.objective);
        assert_eq!(sol.values, cold.values);
        assert_eq!(sol.duals, cold.duals);
        assert_eq!(sol.basis, cold.basis);
    }

    #[test]
    fn dual_repair_of_a_tightened_rhs() {
        // Optimum of the sample LP is x = 4 with basis {x, s2} (s2 = 2).
        // Tightening c2's rhs from 6 to 2 drives the installed s2 to -2:
        // the basis stays dual feasible but turns primal infeasible, so the
        // dual simplex must repair it and land exactly on the cold optimum
        // (x = 2, objective 6).
        let old = solve_exact(&sample_lp()).unwrap();
        let mut tight = LpProblem::maximize();
        let x = tight.add_var("x");
        let y = tight.add_var("y");
        tight.set_objective(x, rat(3, 1));
        tight.set_objective(y, rat(2, 1));
        tight.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Le, rat(4, 1));
        tight.add_constraint("c2", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(2, 1));
        let cold = solve_exact(&tight).unwrap();
        let (warm, outcome) = solve_dual_with_basis::<Ratio>(&tight, &old.basis).unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.objective, rat(6, 1));
        assert_eq!(warm.values, cold.values);
        assert!(warm.warm_started);
        assert!(matches!(outcome, DualOutcome::DualRepaired { pivots } if pivots >= 1));
    }

    #[test]
    fn dual_repair_matches_cold_on_negative_rhs_perturbations() {
        // maximize x + y s.t. x + 2y <= 6, 3x + y <= 9 has optimum at the
        // intersection of both constraints; shrinking the first rhs alone
        // pushes the induced vertex below zero (primal infeasible).
        // Exercise both scalar backends.
        let mut base = LpProblem::maximize();
        let x = base.add_var("x");
        let y = base.add_var("y");
        base.set_objective(x, rat(1, 1));
        base.set_objective(y, rat(1, 1));
        base.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Le, rat(6, 1));
        base.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Le, rat(9, 1));
        let basis = solve_exact(&base).unwrap().basis;

        let mut shrunk = LpProblem::maximize();
        let x = shrunk.add_var("x");
        let y = shrunk.add_var("y");
        shrunk.set_objective(x, rat(1, 1));
        shrunk.set_objective(y, rat(1, 1));
        shrunk.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Le, rat(2, 1));
        shrunk.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Le, rat(9, 1));
        let cold = solve_exact(&shrunk).unwrap();
        let (warm, outcome) = solve_dual_with_basis::<Ratio>(&shrunk, &basis).unwrap();
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
        assert!(matches!(outcome, DualOutcome::StillOptimal | DualOutcome::DualRepaired { .. }));
        let (warm_f64, _) = solve_dual_with_basis::<f64>(&shrunk, &basis).unwrap();
        assert!((warm_f64.objective - cold.objective.to_f64()).abs() < 1e-9);
    }

    #[test]
    fn dual_solver_falls_back_when_the_problem_turns_infeasible() {
        // The perturbation makes the problem infeasible: the dual ratio test
        // fails (dual unbounded) and the solver must re-verify from scratch,
        // reporting Infeasible like a cold solve.
        let mut feasible = LpProblem::maximize();
        let x = feasible.add_var("x");
        feasible.set_objective(x, rat(1, 1));
        feasible.add_constraint("lo", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(1, 1));
        feasible.add_constraint("hi", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        let basis = solve_exact(&feasible).unwrap().basis;

        let mut infeasible = LpProblem::maximize();
        let x = infeasible.add_var("x");
        infeasible.set_objective(x, rat(1, 1));
        infeasible.add_constraint("lo", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(5, 1));
        infeasible.add_constraint("hi", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        assert_eq!(
            solve_dual_with_basis::<Ratio>(&infeasible, &basis).unwrap_err(),
            SimplexError::Infeasible
        );
    }

    #[test]
    fn dual_solver_stays_feasible_when_the_prior_basis_kept_an_artificial() {
        // maximize x + 3y s.t. e1: x + y == 2, e2: 2x + y == 4, cap: x <= 2.
        // The unique feasible point is (2, 0).  Standard-form columns:
        // x(0), y(1), cap's slack(2), artificials a1(3), a2(4).
        //
        // The basis {x, slack, a2} — the shape a cold solve of a sibling
        // whose e2 was *redundant* leaves behind — installs consistently:
        // x = 2 and a2 = 0 (e2 holds at the installed point), so the
        // positive-artificial bail-out does not fire, and the a2 row reads
        // `-y + a2 = 0`.  The point is primal feasible but not dual optimal
        // (y's reduced cost is positive), so phase-2 pivots y in — and
        // without the post-install artificial drive-out, that pivot pushes
        // a2 to 2 and "optimizes" to (0, 2), which violates e2.  The solver
        // must instead return the exact cold optimum (2, 0) and a feasible
        // point.
        let mut drifted = LpProblem::maximize();
        let x = drifted.add_var("x");
        let y = drifted.add_var("y");
        drifted.set_objective(x, rat(1, 1));
        drifted.set_objective(y, rat(3, 1));
        drifted.add_constraint("e1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(2, 1));
        drifted.add_constraint("e2", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Eq, rat(4, 1));
        drifted.add_constraint("cap", expr(&[(x, rat(1, 1))]), Sense::Le, rat(2, 1));

        let stale = SolvedBasis { cols: vec![0, 2, 4], num_cols: 5, n_structural: 2 };
        let cold = solve_exact(&drifted).unwrap();
        assert_eq!(cold.values, vec![rat(2, 1), rat(0, 1)]);
        let (warm, _) = solve_dual_with_basis::<Ratio>(&drifted, &stale).unwrap();
        assert!(
            drifted.check_feasible(&warm.values).is_ok(),
            "dual reuse returned an infeasible point: {:?}",
            warm.values
        );
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.values, cold.values);
    }

    #[test]
    fn dual_solver_falls_back_on_foreign_or_singular_bases() {
        let lp = sample_lp();
        let foreign = SolvedBasis { cols: vec![0, 1, 2], num_cols: 9, n_structural: 3 };
        let (sol, outcome) = solve_dual_with_basis::<Ratio>(&lp, &foreign).unwrap();
        assert_eq!(outcome, DualOutcome::FellBack);
        assert!(!sol.warm_started);
        assert_eq!(sol.objective, rat(12, 1));
    }

    #[test]
    fn dual_solver_reoptimizes_primal_feasible_but_suboptimal_bases() {
        // The all-slack basis of the sample LP is primal feasible (rhs >= 0)
        // but not dual feasible (positive reduced costs): the solver should
        // take the primal phase-2 path from the installed vertex.
        let lp = sample_lp();
        let slack_basis = SolvedBasis { cols: vec![2, 3], num_cols: 4, n_structural: 2 };
        let (sol, outcome) = solve_dual_with_basis::<Ratio>(&lp, &slack_basis).unwrap();
        assert!(matches!(outcome, DualOutcome::PrimalReoptimized { pivots } if pivots >= 1));
        assert!(sol.warm_started);
        assert_eq!(sol.objective, rat(12, 1));
    }

    #[test]
    fn solved_basis_json_round_trip() {
        let basis = solve_exact(&sample_lp()).unwrap().basis;
        let parsed = SolvedBasis::from_json(&basis.to_json()).unwrap();
        assert_eq!(parsed, basis);
        let empty = SolvedBasis::default();
        assert_eq!(SolvedBasis::from_json(&empty.to_json()).unwrap(), empty);
        assert!(SolvedBasis::from_json("{\"cols\":[1,2]}").is_err());
        assert!(SolvedBasis::from_json("not json").is_err());
    }

    #[test]
    fn f64_and_exact_agree_on_random_instances() {
        // Deterministic pseudo-random feasible bounded LPs; compare the two backends.
        let mut seed: u64 = 0x9e3779b97f4a7c15;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _case in 0..20 {
            let mut lp = LpProblem::maximize();
            let nv = 2 + (next() % 4) as usize;
            let nc = 2 + (next() % 4) as usize;
            let vars: Vec<_> = (0..nv).map(|i| lp.add_var(format!("x{i}"))).collect();
            for &v in &vars {
                lp.set_objective(v, rat((next() % 9 + 1) as i64, 1));
            }
            for c in 0..nc {
                let mut e = LinearExpr::new();
                for &v in &vars {
                    e.add_term(v, rat((next() % 5 + 1) as i64, (next() % 3 + 1) as i64));
                }
                lp.add_constraint(format!("c{c}"), e, Sense::Le, rat((next() % 20 + 1) as i64, 1));
            }
            let exact = solve_exact(&lp).unwrap();
            let float = solve_f64(&lp).unwrap();
            let diff = (exact.objective.to_f64() - float.objective).abs();
            assert!(
                diff <= 1e-6 * exact.objective.to_f64().abs().max(1.0),
                "objective mismatch: exact {} vs f64 {}",
                exact.objective,
                float.objective
            );
            // The exact solution must be feasible for the original problem.
            assert!(lp.check_feasible(&exact.values).is_ok());
        }
    }
}
