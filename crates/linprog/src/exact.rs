//! Exact solutions and optimality certification.
//!
//! The paper's schedule-construction step needs the LP solution as *exact
//! rationals*: the period of the schedule is the least common multiple of the
//! denominators (§3.1, §4.2).  Two ways of obtaining such a solution are
//! provided:
//!
//! * [`solve_exact`](crate::simplex::solve_exact) — run the simplex entirely
//!   in rational arithmetic.  Robust but expensive for the larger instances
//!   (the Figure-9 reduce LP has a few thousand variables).
//! * [`solve_certified`] — run the simplex in `f64`, *rationalize* the primal
//!   and dual solutions with continued fractions, and verify exactly that
//!   (a) the primal is feasible, (b) the dual is feasible, and (c) the two
//!   objective values coincide (strong duality).  When all three checks pass
//!   the rational primal solution is a certified optimum, with the heavy
//!   arithmetic done once instead of at every pivot.  When any check fails the
//!   solver falls back to the exact simplex.
//!
//! The vertex solutions of the steady-state LPs have small denominators (they
//! solve linear systems with small integer data), so the rationalization step
//! recovers them exactly in practice — e.g. `2/9` for the Figure-9/10 reduce
//! experiment.

use crate::instrument::{FallbackCause, NoopObserver, SolveEvent, SolveObserver};
use crate::model::{LpProblem, Objective, Sense};
use crate::revised::{self, RevisedOptions};
use crate::simplex::{self, SimplexError, SimplexOptions, Solution, SolvedBasis};
use steady_rational::Ratio;

/// How the returned exact solution was validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Certificate {
    /// Primal feasibility, dual feasibility and zero duality gap were all
    /// verified in exact arithmetic: the solution is provably optimal.
    Optimal,
    /// The solution was produced by the exact rational simplex (optimal by
    /// construction).
    ExactSimplex,
}

/// An exact, certified LP solution.
#[derive(Debug, Clone)]
pub struct CertifiedSolution {
    /// Exact values of the structural variables.
    pub values: Vec<Ratio>,
    /// Exact objective value.
    pub objective: Ratio,
    /// Exact dual values (empty when produced by the exact-simplex fallback
    /// path and duals were not needed).
    pub duals: Vec<Ratio>,
    /// How optimality was established.
    pub certificate: Certificate,
    /// Total simplex pivots performed (f64 + fallback).
    pub iterations: usize,
    /// Pivots spent in phase 1 (feasibility search), summed over the same
    /// runs as [`iterations`](Self::iterations); the remainder is phase 2.
    pub phase1_iterations: usize,
    /// `true` when the underlying simplex resumed from a supplied basis.
    pub warm_started: bool,
    /// Final basis of the underlying simplex run, reusable to warm-start a
    /// structurally identical solve (`None` only for hand-built solutions).
    pub basis: Option<SolvedBasis>,
    /// Basis refactorizations performed by the revised sparse solver, summed
    /// over the `f64` and exact runs behind this solution.  Always `0` on the
    /// dense tableau route (it has no factorization to rebuild).
    pub refactorizations: usize,
}

impl CertifiedSolution {
    /// Per-phase pivot accounting of the runs behind this solution.
    pub fn trace(&self) -> SolveTrace {
        SolveTrace {
            phase1_pivots: self.phase1_iterations,
            phase2_pivots: self.iterations - self.phase1_iterations,
            warm_started: self.warm_started,
        }
    }
}

/// Where a solve spent its pivots, split by simplex phase.
///
/// The observability layer surfaces one of these per query so latency
/// reports can distinguish feasibility search (phase 1) from optimization
/// (phase 2) — a warm start that *takes* skips phase 1 entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveTrace {
    /// Pivots spent restoring feasibility (phase 1), all runs summed.
    pub phase1_pivots: usize,
    /// Pivots spent optimizing from a feasible vertex (phase 2).
    pub phase2_pivots: usize,
    /// `true` when the simplex resumed from a supplied basis.
    pub warm_started: bool,
}

impl SolveTrace {
    /// Total pivots across both phases.
    pub fn total_pivots(&self) -> usize {
        self.phase1_pivots + self.phase2_pivots
    }
}

/// Options controlling [`solve_certified`].
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Maximum denominator used when rationalizing `f64` values.
    pub max_denominator: u64,
    /// Underlying simplex options.
    pub simplex: SimplexOptions,
    /// If `true`, never fall back to the exact simplex; return an error
    /// instead.  Useful in benchmarks isolating the certification path.
    pub forbid_fallback: bool,
    /// Dense-vs-revised routing split, compared against
    /// `num_vars · max(num_constraints, 1)`.
    ///
    /// At or below the threshold the `f64` stage (and any exact fallback it
    /// needs) runs on the dense tableau ([`crate::simplex`]); above it, on
    /// the revised sparse simplex with an LU-factorized basis
    /// ([`crate::revised`]), whose per-pivot work scales with the basis
    /// nonzeros rather than the full `m · n` tableau.  Both routes use the
    /// same pivot rules, so they certify the same exact optimum; the default
    /// keeps every paper-scale workload (the Figure-9 reduce LP is ~10⁶) on
    /// the dense path and reserves the sparse path for the thousand-node
    /// platforms it was built for.
    pub revised_threshold: usize,
}

impl Default for CertifyOptions {
    fn default() -> Self {
        CertifyOptions {
            max_denominator: 1_000_000,
            simplex: SimplexOptions::default(),
            forbid_fallback: false,
            revised_threshold: 4_000_000,
        }
    }
}

/// Errors returned by the certified solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The underlying simplex failed (infeasible / unbounded / iteration limit).
    Simplex(SimplexError),
    /// Certification failed and fallback was forbidden.
    CertificationFailed {
        /// Reason the exact verification rejected the rationalized solution.
        reason: String,
    },
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::Simplex(e) => write!(f, "{e}"),
            CertifyError::CertificationFailed { reason } => {
                write!(f, "exact certification failed: {reason}")
            }
        }
    }
}

impl std::error::Error for CertifyError {}

impl From<SimplexError> for CertifyError {
    fn from(e: SimplexError) -> Self {
        CertifyError::Simplex(e)
    }
}

/// Solves `problem` and returns an exact solution, preferring the fast
/// `f64`-then-certify path and falling back to the exact rational simplex.
pub fn solve_certified(problem: &LpProblem) -> Result<CertifiedSolution, CertifyError> {
    solve_certified_with_options(problem, &CertifyOptions::default())
}

/// [`solve_certified`] with explicit options.
pub fn solve_certified_with_options(
    problem: &LpProblem,
    options: &CertifyOptions,
) -> Result<CertifiedSolution, CertifyError> {
    solve_certified_warm(problem, options, None)
}

/// [`solve_certified_with_options`], optionally resuming the `f64` simplex
/// from a previously solved basis.
///
/// The warm basis seeds the floating-point solve; when certification fails
/// and the exact rational simplex must re-solve, it is seeded with the
/// basis the `f64` run ended on — which is usually the optimal vertex, so
/// the expensive exact run mostly just confirms it.
pub fn solve_certified_warm(
    problem: &LpProblem,
    options: &CertifyOptions,
    warm: Option<&SolvedBasis>,
) -> Result<CertifiedSolution, CertifyError> {
    solve_certified_warm_observed(problem, options, warm, &mut NoopObserver)
}

/// [`solve_certified_warm`] with a [`SolveObserver`] tap on every run the
/// pipeline executes — the `f64` attempt, any exact fallback run (preceded by
/// a [`SolveEvent::Fallback`] naming the cause), and the warm-start install
/// outcomes inside each.
///
/// Event-conservation caveat: when the `f64` run *errors out* mid-solve its
/// already-emitted pivot events stay in the stream, while the returned
/// iteration counts come from the fresh exact run only — so observed pivots
/// can exceed reported `iterations` exactly when the stream carries a
/// `float-failed` fallback marker.  (A `certification-failed` fallback keeps
/// both runs' counts, so conservation holds there.)
pub fn solve_certified_warm_observed<O: SolveObserver>(
    problem: &LpProblem,
    options: &CertifyOptions,
    warm: Option<&SolvedBasis>,
    obs: &mut O,
) -> Result<CertifiedSolution, CertifyError> {
    let sparse_route = routes_to_revised(problem, options);
    let revised_opts =
        RevisedOptions { simplex: options.simplex.clone(), ..RevisedOptions::default() };
    let mut refactorizations = 0;

    let float = if sparse_route {
        revised::solve_revised_report_observed::<f64, O>(problem, warm, &revised_opts, obs).map(
            |(sol, stats)| {
                refactorizations += stats.refactorizations;
                sol
            },
        )
    } else {
        match warm {
            Some(basis) => simplex::solve_with_basis_options_observed::<f64, O>(
                problem,
                basis,
                &options.simplex,
                obs,
            ),
            None => simplex::solve_with_options_observed::<f64, O>(problem, &options.simplex, obs),
        }
    };
    let float = match float {
        Ok(float) => float,
        // The f64 simplex is an accelerator, never an authority: round-off
        // can produce a spurious Unbounded (a near-zero pivot column read as
        // non-positive in the ratio test) or Infeasible verdict on a
        // well-posed LP, and *which* pivot path is taken depends on row
        // order, so the failure is formulation-order dependent.  The exact
        // rational simplex decides from scratch; only its verdict is real.
        Err(_) if !options.forbid_fallback => {
            if O::ENABLED {
                obs.on_event(SolveEvent::Fallback { cause: FallbackCause::FloatFailed });
            }
            let exact = if sparse_route {
                let (sol, stats) = revised::solve_revised_report_observed::<Ratio, O>(
                    problem,
                    None,
                    &revised_opts,
                    obs,
                )?;
                refactorizations += stats.refactorizations;
                sol
            } else {
                // Mirrors `solve_exact` (default options), as the unobserved
                // path always has.
                simplex::solve_with_options_observed::<Ratio, O>(
                    problem,
                    &SimplexOptions::default(),
                    obs,
                )?
            };
            return Ok(CertifiedSolution {
                values: exact.values,
                objective: exact.objective,
                duals: exact.duals,
                certificate: Certificate::ExactSimplex,
                iterations: exact.iterations,
                phase1_iterations: exact.phase1_iterations,
                warm_started: false,
                basis: Some(exact.basis),
                refactorizations,
            });
        }
        Err(e) => return Err(e.into()),
    };
    match certify(problem, &float, options.max_denominator) {
        Ok(mut sol) => {
            sol.refactorizations = refactorizations;
            Ok(sol)
        }
        Err(reason) => {
            if options.forbid_fallback {
                return Err(CertifyError::CertificationFailed { reason });
            }
            if O::ENABLED {
                obs.on_event(SolveEvent::Fallback {
                    cause: FallbackCause::CertificationFailed { reason: reason.clone() },
                });
            }
            // Seed the exact re-solve from the f64 basis (usually already
            // the optimal vertex); if that start misbehaves — an infeasible
            // float vertex can read as unbounded — re-solve exactly from
            // scratch rather than surfacing the artifact.  (The revised
            // solver folds that retreat-to-cold into one call.)
            let exact = if sparse_route {
                let (sol, stats) = revised::solve_revised_report_observed::<Ratio, O>(
                    problem,
                    Some(&float.basis),
                    &revised_opts,
                    obs,
                )?;
                refactorizations += stats.refactorizations;
                sol
            } else {
                simplex::solve_with_basis_options_observed::<Ratio, O>(
                    problem,
                    &float.basis,
                    &options.simplex,
                    obs,
                )
                .or_else(|_| {
                    // Mirrors `solve_exact` (default options).
                    simplex::solve_with_options_observed::<Ratio, O>(
                        problem,
                        &SimplexOptions::default(),
                        obs,
                    )
                })?
            };
            Ok(CertifiedSolution {
                values: exact.values,
                objective: exact.objective,
                duals: exact.duals,
                certificate: Certificate::ExactSimplex,
                iterations: float.iterations + exact.iterations,
                phase1_iterations: float.phase1_iterations + exact.phase1_iterations,
                // Caller-perspective flag: did the *supplied* basis take?  The
                // exact re-solve is always internally seeded from the f64 basis.
                warm_started: float.warm_started,
                basis: Some(exact.basis),
                refactorizations,
            })
        }
    }
}

/// `true` when `problem` is large enough that [`solve_certified_warm`] routes
/// it through the revised sparse simplex instead of the dense tableau (see
/// [`CertifyOptions::revised_threshold`]).
pub fn routes_to_revised(problem: &LpProblem, options: &CertifyOptions) -> bool {
    problem.num_vars() * problem.num_constraints().max(1) > options.revised_threshold
}

/// [`solve_certified_warm`]'s **dual-simplex** sibling: the `f64` simplex
/// resumes from `basis` via [`simplex::solve_dual_with_basis_options`], the
/// rationalized optimum is certified exactly, and a failed certification
/// falls back to the exact simplex seeded with the basis the float run ended
/// on.
///
/// The returned [`DualOutcome`](crate::simplex::DualOutcome) describes the
/// float run (how the basis was used); the solution itself is exact on every
/// path.
pub fn solve_certified_dual(
    problem: &LpProblem,
    options: &CertifyOptions,
    basis: &SolvedBasis,
) -> Result<(CertifiedSolution, crate::simplex::DualOutcome), CertifyError> {
    solve_certified_dual_observed(problem, options, basis, &mut NoopObserver)
}

/// [`solve_certified_dual`] with a [`SolveObserver`] tap on every run the
/// pipeline executes (same event semantics and conservation caveat as
/// [`solve_certified_warm_observed`]; the `f64`-error fallback here emits
/// [`FallbackCause::DualFloatFailed`]).
pub fn solve_certified_dual_observed<O: SolveObserver>(
    problem: &LpProblem,
    options: &CertifyOptions,
    basis: &SolvedBasis,
    obs: &mut O,
) -> Result<(CertifiedSolution, crate::simplex::DualOutcome), CertifyError> {
    let attempt = simplex::solve_dual_with_basis_options_observed::<f64, O>(
        problem,
        basis,
        &options.simplex,
        obs,
    );
    let (float, outcome) = match attempt {
        Ok(solved) => solved,
        // Same fallback-not-verdict rule as `solve_certified_warm`: an f64
        // failure (spurious Unbounded/Infeasible from round-off, or a basis
        // that drove the float run astray) means the basis saved nothing —
        // resolve cold through the certified pipeline, whose exact stage is
        // the authority.
        Err(_) if !options.forbid_fallback => {
            if O::ENABLED {
                obs.on_event(SolveEvent::Fallback { cause: FallbackCause::DualFloatFailed });
            }
            let sol = solve_certified_warm_observed(problem, options, None, obs)?;
            return Ok((sol, crate::simplex::DualOutcome::FellBack));
        }
        Err(e) => return Err(e.into()),
    };
    match certify(problem, &float, options.max_denominator) {
        Ok(sol) => Ok((sol, outcome)),
        Err(reason) => {
            if options.forbid_fallback {
                return Err(CertifyError::CertificationFailed { reason });
            }
            if O::ENABLED {
                obs.on_event(SolveEvent::Fallback {
                    cause: FallbackCause::CertificationFailed { reason: reason.clone() },
                });
            }
            let exact = simplex::solve_with_basis_options_observed::<Ratio, O>(
                problem,
                &float.basis,
                &options.simplex,
                obs,
            )
            .or_else(|_| {
                // Mirrors `solve_exact` (default options).
                simplex::solve_with_options_observed::<Ratio, O>(
                    problem,
                    &SimplexOptions::default(),
                    obs,
                )
            })?;
            Ok((
                CertifiedSolution {
                    values: exact.values,
                    objective: exact.objective,
                    duals: exact.duals,
                    certificate: Certificate::ExactSimplex,
                    iterations: float.iterations + exact.iterations,
                    phase1_iterations: float.phase1_iterations + exact.phase1_iterations,
                    warm_started: float.warm_started,
                    basis: Some(exact.basis),
                    refactorizations: 0,
                },
                outcome,
            ))
        }
    }
}

/// Rationalizes a floating-point solution and verifies optimality exactly.
///
/// Returns `Err(reason)` when any of the exact checks fails.
pub fn certify(
    problem: &LpProblem,
    float: &Solution<f64>,
    max_denominator: u64,
) -> Result<CertifiedSolution, String> {
    // Rationalize the primal.
    let mut values = Vec::with_capacity(float.values.len());
    for (i, &v) in float.values.iter().enumerate() {
        let r = Ratio::approximate_f64(v, max_denominator)
            .ok_or_else(|| format!("variable {i} is not finite"))?;
        // Clamp tiny negatives produced by round-off.
        values.push(if r.is_negative() { Ratio::zero() } else { r });
    }

    // Exact primal feasibility.
    problem.check_feasible(&values).map_err(|e| format!("primal infeasible: {e}"))?;
    let primal_obj = problem.objective_value(&values);

    // Rationalize the dual and check dual feasibility + strong duality.
    let mut duals = Vec::with_capacity(float.duals.len());
    for (i, &y) in float.duals.iter().enumerate() {
        let r = Ratio::approximate_f64(y, max_denominator)
            .ok_or_else(|| format!("dual {i} is not finite"))?;
        duals.push(r);
    }
    check_dual_feasible(problem, &duals).map_err(|e| format!("dual infeasible: {e}"))?;

    let dual_obj: Ratio = problem.constraints().iter().zip(&duals).map(|(c, y)| &c.rhs * y).sum();

    let gap = match problem.direction() {
        Objective::Maximize => &dual_obj - &primal_obj,
        Objective::Minimize => &primal_obj - &dual_obj,
    };
    if !gap.is_zero() {
        return Err(format!("duality gap is {gap} (primal {primal_obj}, dual {dual_obj})"));
    }

    Ok(CertifiedSolution {
        values,
        objective: primal_obj,
        duals,
        certificate: Certificate::Optimal,
        iterations: float.iterations,
        phase1_iterations: float.phase1_iterations,
        warm_started: float.warm_started,
        basis: Some(float.basis.clone()),
        refactorizations: 0,
    })
}

/// Exact dual feasibility for `max { c x : A x (<=,=,>=) b, x >= 0 }`:
/// sign conditions on `y` plus `A^T y >= c` componentwise (reversed for
/// minimization problems).
fn check_dual_feasible(problem: &LpProblem, duals: &[Ratio]) -> Result<(), String> {
    if duals.len() != problem.num_constraints() {
        return Err(format!(
            "dual vector has {} entries for {} constraints",
            duals.len(),
            problem.num_constraints()
        ));
    }
    let maximize = matches!(problem.direction(), Objective::Maximize);
    for (c, y) in problem.constraints().iter().zip(duals) {
        let ok = match (c.sense, maximize) {
            (Sense::Le, true) | (Sense::Ge, false) => !y.is_negative(),
            (Sense::Ge, true) | (Sense::Le, false) => !y.is_positive(),
            (Sense::Eq, _) => true,
        };
        if !ok {
            return Err(format!("dual of constraint '{}' has the wrong sign ({y})", c.name));
        }
    }
    // Column constraints: for every structural variable j,
    //   sum_i A_ij y_i >= c_j   (maximize)   /   <= c_j (minimize).
    let mut column_sums = vec![Ratio::zero(); problem.num_vars()];
    for (c, y) in problem.constraints().iter().zip(duals) {
        if y.is_zero() {
            continue;
        }
        for (v, coeff) in c.expr.terms() {
            column_sums[v.index()] += coeff * y;
        }
    }
    for (j, sum) in column_sums.iter().enumerate() {
        let c_j = &problem.objective_vector()[j];
        let ok = if maximize { sum >= c_j } else { sum <= c_j };
        if !ok {
            return Err(format!(
                "dual constraint for variable {} violated ({sum} vs {c_j})",
                problem.var_name(crate::model::VarId(j))
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, LpProblem, Sense};
    use steady_rational::rat;

    fn expr(terms: &[(crate::model::VarId, Ratio)]) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(*v, c.clone());
        }
        e
    }

    fn sample_lp() -> LpProblem {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.set_objective(y, rat(2, 1));
        lp.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Le, rat(4, 1));
        lp.add_constraint("c2", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(6, 1));
        lp
    }

    #[test]
    fn certified_simple() {
        let sol = solve_certified(&sample_lp()).unwrap();
        assert_eq!(sol.objective, rat(12, 1));
        assert_eq!(sol.certificate, Certificate::Optimal);
        assert_eq!(sol.values, vec![rat(4, 1), rat(0, 1)]);
    }

    /// A coefficient of `1/10^400` underflows to `0.0` in `f64`, so the float
    /// ratio test sees no blocking row and reports the LP unbounded — yet the
    /// problem is exactly bounded (`x ≤ 10^400`).  The certified pipeline
    /// must treat the f64 stage as an accelerator and let the exact simplex
    /// overrule its spurious verdict, for both the warm/cold and the dual
    /// entry points.
    #[test]
    fn spurious_float_unbounded_falls_back_to_exact() {
        use steady_rational::bigint::BigInt;

        let tiny = Ratio::new(BigInt::from(1i64), BigInt::from(10i64).pow(400));
        assert_eq!(tiny.to_f64(), 0.0, "the premise: the coefficient underflows");

        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("cap", expr(&[(x, tiny.clone())]), Sense::Le, rat(1, 1));

        let bound = Ratio::new(BigInt::from(10i64).pow(400), BigInt::from(1i64));
        let sol = solve_certified(&lp).expect("the exact stage overrules the float verdict");
        assert_eq!(sol.objective, bound);
        assert_eq!(sol.certificate, Certificate::ExactSimplex);

        let basis = solve_certified(&lp).unwrap().basis.expect("certified solves carry a basis");
        let (dual_sol, _) = solve_certified_dual(&lp, &CertifyOptions::default(), &basis)
            .expect("the dual entry point falls back instead of erroring");
        assert_eq!(dual_sol.objective, bound);
    }

    #[test]
    fn certified_fractional() {
        // Optimum with denominators that the continued-fraction step must recover.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("b", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(1, 1));
        let sol = solve_certified(&lp).unwrap();
        assert_eq!(sol.values, vec![rat(2, 5), rat(1, 5)]);
        assert_eq!(sol.objective, rat(3, 5));
        assert_eq!(sol.certificate, Certificate::Optimal);
    }

    #[test]
    fn certified_with_equalities() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        let z = lp.add_var("z");
        lp.set_objective(z, rat(1, 1));
        lp.add_constraint("flow", expr(&[(x, rat(1, 1)), (y, rat(-1, 1))]), Sense::Eq, rat(0, 1));
        lp.add_constraint("capx", expr(&[(x, rat(3, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("link", expr(&[(z, rat(1, 1)), (y, rat(-1, 1))]), Sense::Le, rat(0, 1));
        let sol = solve_certified(&lp).unwrap();
        assert_eq!(sol.objective, rat(1, 3));
    }

    #[test]
    fn infeasible_propagates() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("lo", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(5, 1));
        lp.add_constraint("hi", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        assert!(matches!(
            solve_certified(&lp),
            Err(CertifyError::Simplex(SimplexError::Infeasible))
        ));
    }

    #[test]
    fn certify_rejects_wrong_objective() {
        // Hand a deliberately sub-optimal "solution" to certify(): the duality
        // gap check must reject it.
        let lp = sample_lp();
        let float = Solution {
            values: vec![1.0, 1.0],
            objective: 5.0,
            duals: vec![0.0, 0.0],
            iterations: 0,
            phase1_iterations: 0,
            warm_started: false,
            basis: crate::simplex::SolvedBasis::default(),
        };
        let err = certify(&lp, &float, 1_000_000).unwrap_err();
        assert!(err.contains("dual") || err.contains("gap"), "unexpected reason: {err}");
    }

    #[test]
    fn certify_rejects_infeasible_primal() {
        let lp = sample_lp();
        let float = Solution {
            values: vec![10.0, 0.0],
            objective: 30.0,
            duals: vec![3.0, 0.0],
            iterations: 0,
            phase1_iterations: 0,
            warm_started: false,
            basis: crate::simplex::SolvedBasis::default(),
        };
        let err = certify(&lp, &float, 1_000_000).unwrap_err();
        assert!(err.contains("primal infeasible"), "unexpected reason: {err}");
    }

    #[test]
    fn fallback_to_exact_simplex() {
        // Force the certification path to fail by using a max denominator of 1:
        // fractional optima cannot be represented, so the solver must fall back.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("b", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(1, 1));
        let opts = CertifyOptions { max_denominator: 1, ..Default::default() };
        let sol = solve_certified_with_options(&lp, &opts).unwrap();
        assert_eq!(sol.certificate, Certificate::ExactSimplex);
        assert_eq!(sol.objective, rat(3, 5));

        let strict =
            CertifyOptions { max_denominator: 1, forbid_fallback: true, ..Default::default() };
        assert!(matches!(
            solve_certified_with_options(&lp, &strict),
            Err(CertifyError::CertificationFailed { .. })
        ));
    }

    #[test]
    fn minimization_certified() {
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Ge, rat(4, 1));
        lp.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Ge, rat(6, 1));
        let sol = solve_certified(&lp).unwrap();
        assert_eq!(sol.objective, rat(14, 5));
    }
}
