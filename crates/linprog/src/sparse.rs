//! Sparse data structures shared by the revised simplex
//! ([`crate::revised`]).
//!
//! The steady-state collective LPs are overwhelmingly sparse — each
//! constraint row touches one node's in/out edges, so a column carries a
//! handful of nonzeros regardless of platform size.  The dense tableau
//! ([`crate::simplex`]) stores and updates all `m · n` entries anyway; the
//! revised simplex instead keeps the constraint matrix in the compressed
//! sparse column form defined here and only ever factorizes the `m × m`
//! basis.
//!
//! Two things live in this module:
//!
//! * [`CscMatrix`] — a compressed-sparse-column matrix over any
//!   [`Scalar`], the read-only coefficient storage of the revised solver
//!   (and of the kernel micro-benchmarks);
//! * `StandardForm` (crate-private) — the equality standard form of an
//!   [`LpProblem`]
//!   (structural columns, then slacks, then artificials) built with
//!   **exactly** the same column ordering, right-hand-side normalization
//!   and cost conventions as the dense `Tableau::build`, so a
//!   [`SolvedBasis`](crate::simplex::SolvedBasis) produced by either solver
//!   installs on the other.

use crate::model::{LpProblem, Objective, Sense};
use crate::scalar::Scalar;
use crate::simplex::effective_sense;

/// Column classification in the equality standard form.
///
/// Shared between the dense tableau and the revised solver so both agree on
/// which columns phase 2 may pivot on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColKind {
    /// A user-declared variable.
    Structural,
    /// A slack (`<=` rows) or surplus (`>=` rows) column.
    Slack,
    /// An artificial column forming the initial identity of a `>=`/`==` row.
    Artificial,
}

/// A compressed-sparse-column matrix over a [`Scalar`].
///
/// Columns are stored back to back: column `j` occupies the half-open slice
/// `col_ptr[j] .. col_ptr[j + 1]` of the parallel `row_idx` / `vals`
/// arrays.  The matrix is immutable after construction — the revised
/// simplex never modifies `A`, only the basis factorization.
#[derive(Debug, Clone)]
pub struct CscMatrix<S> {
    rows: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    vals: Vec<S>,
}

impl<S: Scalar> CscMatrix<S> {
    /// Builds a matrix with `rows` rows from per-column entry lists.
    ///
    /// Each inner list holds `(row, value)` pairs; rows must be `< rows` and
    /// exact zeros should be omitted by the caller (they are skipped here
    /// as a belt-and-braces measure).
    pub fn from_columns(rows: usize, columns: Vec<Vec<(usize, S)>>) -> Self {
        let mut col_ptr = Vec::with_capacity(columns.len() + 1);
        let mut row_idx = Vec::new();
        let mut vals = Vec::new();
        col_ptr.push(0);
        for col in columns {
            for (r, v) in col {
                debug_assert!(r < rows, "row index out of range");
                if v.is_zero() {
                    continue;
                }
                row_idx.push(r);
                vals.push(v);
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix { rows, col_ptr, row_idx, vals }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Iterates over the `(row, value)` entries of column `j`.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, &S)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi].iter().copied().zip(self.vals[lo..hi].iter())
    }

    /// Scatters column `j` into a dense vector of length [`Self::num_rows`].
    pub fn col_dense(&self, j: usize) -> Vec<S> {
        let mut out = vec![S::zero(); self.rows];
        for (r, v) in self.col(j) {
            out[r] = v.clone();
        }
        out
    }
}

/// The equality standard form of an [`LpProblem`], in sparse storage.
///
/// Mirrors the dense `Tableau::build` bit for bit: same column order
/// (structural, slacks in constraint order, artificials in constraint
/// order), same negation of rows with a negative right-hand side, same
/// maximization-form costs.  `init_basis[i]` is the slack or artificial
/// column that forms row `i`'s initial identity — the cold-start basis.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm<S> {
    /// The full standard-form coefficient matrix (`m` rows, all columns).
    pub a: CscMatrix<S>,
    /// Normalized right-hand side (`>= 0`).
    pub rhs: Vec<S>,
    /// Kind of every column.
    pub kinds: Vec<ColKind>,
    /// Maximization-form objective coefficient per column.
    pub costs: Vec<S>,
    /// Initial basic column of each row (slack for `<=`, artificial else).
    pub init_basis: Vec<usize>,
    /// Whether the original constraint was negated during normalization.
    pub negated: Vec<bool>,
    /// Number of structural columns.
    pub n_structural: usize,
}

impl<S: Scalar> StandardForm<S> {
    /// Builds the standard form of `problem`.
    pub fn build(problem: &LpProblem) -> Self {
        let n = problem.num_vars();
        let m = problem.num_constraints();

        let mut n_slack = 0;
        let mut n_art = 0;
        for c in problem.constraints() {
            let rhs_neg = c.rhs.is_negative();
            match effective_sense(c.sense, rhs_neg) {
                Sense::Le => n_slack += 1,
                Sense::Ge => {
                    n_slack += 1;
                    n_art += 1;
                }
                Sense::Eq => n_art += 1,
            }
        }
        let total_cols = n + n_slack + n_art;

        let mut kinds = vec![ColKind::Structural; n];
        kinds.extend(std::iter::repeat_n(ColKind::Slack, n_slack));
        kinds.extend(std::iter::repeat_n(ColKind::Artificial, n_art));

        let flip = matches!(problem.direction(), Objective::Minimize);
        let mut costs = vec![S::zero(); total_cols];
        for (j, c) in problem.objective_vector().iter().enumerate() {
            let v = S::from_ratio(c);
            costs[j] = if flip { v.neg() } else { v };
        }

        let mut columns: Vec<Vec<(usize, S)>> = vec![Vec::new(); total_cols];
        let mut rhs = Vec::with_capacity(m);
        let mut init_basis = Vec::with_capacity(m);
        let mut negated = Vec::with_capacity(m);

        let mut next_slack = n;
        let mut next_art = n + n_slack;

        for (i, c) in problem.constraints().iter().enumerate() {
            let rhs_neg = c.rhs.is_negative();
            let sense = effective_sense(c.sense, rhs_neg);
            for (v, coeff) in c.expr.terms() {
                let val = S::from_ratio(coeff);
                let val = if rhs_neg { val.neg() } else { val };
                if !val.is_zero() {
                    columns[v.index()].push((i, val));
                }
            }
            let b = {
                let val = S::from_ratio(&c.rhs);
                if rhs_neg {
                    val.neg()
                } else {
                    val
                }
            };
            match sense {
                Sense::Le => {
                    columns[next_slack].push((i, S::one()));
                    init_basis.push(next_slack);
                    next_slack += 1;
                }
                Sense::Ge => {
                    columns[next_slack].push((i, S::one().neg()));
                    next_slack += 1;
                    columns[next_art].push((i, S::one()));
                    init_basis.push(next_art);
                    next_art += 1;
                }
                Sense::Eq => {
                    columns[next_art].push((i, S::one()));
                    init_basis.push(next_art);
                    next_art += 1;
                }
            }
            rhs.push(b);
            negated.push(rhs_neg);
        }

        // Duplicate VarIds inside one expression cannot happen (LinearExpr is
        // keyed by VarId), and terms() iterates in ascending VarId order, so
        // every column's rows are already sorted ascending.
        StandardForm {
            a: CscMatrix::from_columns(m, columns),
            rhs,
            kinds,
            costs,
            init_basis,
            negated,
            n_structural: n,
        }
    }

    /// Number of constraint rows.
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Total number of standard-form columns.
    pub fn num_cols(&self) -> usize {
        self.kinds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, LpProblem};
    use steady_rational::{rat, Ratio};

    fn expr(terms: &[(crate::model::VarId, Ratio)]) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(*v, c.clone());
        }
        e
    }

    #[test]
    fn csc_roundtrip() {
        let m = CscMatrix::from_columns(
            3,
            vec![vec![(0, rat(1, 1)), (2, rat(-2, 1))], vec![], vec![(1, rat(5, 1))]],
        );
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.col_dense(0), vec![rat(1, 1), rat(0, 1), rat(-2, 1)]);
        assert_eq!(m.col_dense(1), vec![rat(0, 1); 3]);
        assert_eq!(m.col_dense(2), vec![rat(0, 1), rat(5, 1), rat(0, 1)]);
    }

    #[test]
    fn standard_form_matches_dense_conventions() {
        // One constraint of each sense, including a negative-rhs row that the
        // builder must negate the way the dense tableau does.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.add_constraint("le", expr(&[(x, rat(2, 1))]), Sense::Le, rat(4, 1));
        lp.add_constraint("ge", expr(&[(y, rat(1, 1))]), Sense::Ge, rat(1, 1));
        lp.add_constraint("eq", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Eq, rat(3, 1));
        lp.add_constraint("neg", expr(&[(x, rat(-1, 1))]), Sense::Le, rat(-1, 1));

        let sf = StandardForm::<Ratio>::build(&lp);
        // 2 structural + 3 slack/surplus (le, ge-surplus, negated-le→ge... ) .
        // Column count: le -> slack, ge -> surplus + artificial,
        // eq -> artificial, neg (le with rhs<0 -> ge) -> surplus + artificial.
        assert_eq!(sf.n_structural, 2);
        assert_eq!(sf.num_cols(), 2 + 3 + 3);
        assert_eq!(sf.num_rows(), 4);
        assert_eq!(sf.kinds[2], ColKind::Slack);
        assert_eq!(sf.kinds[4], ColKind::Slack);
        assert_eq!(sf.kinds[5], ColKind::Artificial);
        assert_eq!(sf.kinds[7], ColKind::Artificial);
        // Negated row: coefficients and rhs flipped, surplus column added.
        assert!(sf.negated[3]);
        assert_eq!(sf.rhs[3], rat(1, 1));
        assert_eq!(sf.a.col_dense(0)[3], rat(1, 1));
        // Initial basis is the identity columns, one per row.
        assert_eq!(sf.init_basis.len(), 4);
        for (i, &b) in sf.init_basis.iter().enumerate() {
            let col = sf.a.col_dense(b);
            assert_eq!(col[i], rat(1, 1));
            assert_eq!(col.iter().filter(|v| !v.is_zero()).count(), 1);
        }
        // Maximization-form costs on the structural prefix.
        assert_eq!(sf.costs[0], rat(3, 1));
        assert_eq!(sf.costs[1], rat(0, 1));
    }
}
