//! Revised simplex with a sparse LU-factorized basis.
//!
//! The dense tableau ([`crate::simplex`]) stores and updates all `m · n`
//! entries at every pivot — fine for the paper's 8-leaf stars, hopeless for
//! thousand-node platforms where the steady-state LPs have tens of
//! thousands of rows but only a handful of nonzeros per column.  This
//! module implements the classical remedy, the *revised* simplex method:
//!
//! * the constraint matrix stays in read-only sparse storage
//!   ([`crate::sparse::CscMatrix`]);
//! * the basis matrix `B` is kept as a sparse LU factorization
//!   ([`SparseLu`]) computed with Markowitz-style pivot ordering (pick the
//!   entry minimizing the fill-in bound `(r−1)(c−1)`, with a relative
//!   magnitude threshold for `f64` stability);
//! * each simplex iteration solves two triangular systems instead of
//!   updating a tableau: FTRAN (`B w = A_j`, the entering column in the
//!   basis frame) and BTRAN (`Bᵀ y = c_B`, the simplex multipliers used to
//!   price all columns);
//! * a pivot appends a product-form *eta* update ([`Eta`]) rather than
//!   refactorizing, and the factorization is rebuilt from scratch whenever
//!   the eta file grows past [`RevisedOptions::refactor_interval`] updates
//!   (or its fill outgrows the factors), which also refreshes the basic
//!   values against accumulated `f64` round-off.
//!
//! **Pivot-rule parity.**  The solver replicates the dense tableau's pivot
//! rules *exactly*: same standard form, same Dantzig/Bland switch, same
//! ratio-test tie-breaking, same two-phase structure, artificial drive-out
//! and warm-start acceptance conditions.  Instantiated over
//! [`Ratio`](steady_rational::Ratio) the two solvers therefore perform the
//! *same pivot sequence* and return bit-identical optima, duals and bases —
//! property-tested in `tests/proptest_revised.rs` — so the revised path
//! slots into the certified pipeline ([`crate::exact`]) and the warm-start
//! world ([`SolvedBasis`]) without weakening any exactness guarantee.

use crate::instrument::{
    NoopObserver, PivotKind, PivotRule, RefactorReason, SolveEvent, SolveObserver, SolvePath,
    SolvePhase, WarmOutcome,
};
use crate::model::{LpProblem, Objective};
use crate::scalar::Scalar;
use crate::simplex::{clamp_nonneg, SimplexError, SimplexOptions, Solution, SolvedBasis};
use crate::sparse::{ColKind, CscMatrix, StandardForm};
use std::collections::{BTreeMap, BTreeSet};

/// Tunable parameters of the revised solver.
#[derive(Debug, Clone)]
pub struct RevisedOptions {
    /// Underlying pivot-rule options, shared with the dense simplex so the
    /// two paths stay pivot-for-pivot comparable.
    pub simplex: SimplexOptions,
    /// Number of eta updates accumulated before the basis is refactorized
    /// from scratch.  Each eta makes every FTRAN/BTRAN a little more
    /// expensive (and, in `f64`, a little less accurate); refactorizing
    /// resets both.  The factorization is also rebuilt early when the eta
    /// file's fill-in outgrows the LU factors themselves.
    pub refactor_interval: usize,
}

impl Default for RevisedOptions {
    fn default() -> Self {
        RevisedOptions { simplex: SimplexOptions::default(), refactor_interval: 64 }
    }
}

/// Work counters of a revised solve, reported alongside the solution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RevisedStats {
    /// Mid-solve basis refactorizations (the initial factorization of the
    /// start basis is not counted).
    pub refactorizations: usize,
    /// Longest eta file reached between refactorizations.
    pub peak_eta: usize,
}

// ---------------------------------------------------------------------------
// Sparse LU with Markowitz pivot ordering
// ---------------------------------------------------------------------------

/// Sparse LU factorization of a basis matrix, in elimination (product) form.
///
/// The factorization records, per elimination step `k`, the pivot position
/// (`pivot_row[k]` in the matrix's row space, `pivot_col[k]` in the basis'
/// column space), the pivot value, the row multipliers that eliminated the
/// pivot column from the remaining rows (`lower`), and the pivot row's
/// surviving entries over not-yet-pivoted columns (`upper`).  [`Self::ftran`]
/// and [`Self::btran`] replay those steps to solve `B x = b` and
/// `Bᵀ y = c` in time proportional to the stored fill, never forming `B⁻¹`.
#[derive(Debug, Clone)]
pub struct SparseLu<S> {
    m: usize,
    pivot_row: Vec<usize>,
    pivot_col: Vec<usize>,
    pivot_val: Vec<S>,
    /// Per step: `(row, multiplier)` of every eliminated row.
    lower: Vec<Vec<(usize, S)>>,
    /// Per step: `(col, value)` of the pivot row over unpivoted columns.
    upper: Vec<Vec<(usize, S)>>,
}

/// Markowitz candidate-column budget per elimination step: examining the few
/// lowest-count columns is the classical compromise between fill-optimal
/// pivot search (scan everything) and speed.
const MARKOWITZ_CANDIDATES: usize = 4;
/// Relative magnitude threshold for `f64` pivot stability; exact scalars are
/// unaffected (the threshold only reorders the elimination, never changes
/// the factorized values).
const PIVOT_THRESHOLD: f64 = 0.01;
/// Column-count buckets tracked individually; larger counts share one
/// overflow bucket.
const MAX_BUCKET: usize = 32;

impl<S: Scalar> SparseLu<S> {
    /// Factorizes the basis formed by the columns `basis_cols` of `a`
    /// (position `p` of the basis is column `basis_cols[p]`).
    ///
    /// Returns `None` when the basis is singular — for exact scalars this is
    /// a certificate, for `f64` the caller treats it as a numerical verdict
    /// and falls back.
    pub fn factorize(a: &CscMatrix<S>, basis_cols: &[usize]) -> Option<SparseLu<S>> {
        let m = a.num_rows();
        debug_assert_eq!(basis_cols.len(), m, "basis must have one column per row");

        // Active submatrix, row-wise: row -> { position -> value }.
        let mut rows: Vec<BTreeMap<usize, S>> = vec![BTreeMap::new(); m];
        // Position -> active rows holding a nonzero in that position.
        let mut col_rows: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); m];
        for (pos, &col) in basis_cols.iter().enumerate() {
            for (r, v) in a.col(col) {
                rows[r].insert(pos, v.clone());
                col_rows[pos].insert(r);
            }
        }

        // Bucket queue over column counts, for cheap lowest-count lookup.
        let mut buckets: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); MAX_BUCKET + 1];
        let mut col_bucket: Vec<usize> = vec![0; m];
        for pos in 0..m {
            let b = col_rows[pos].len().min(MAX_BUCKET);
            buckets[b].insert(pos);
            col_bucket[pos] = b;
        }
        let rebucket = |buckets: &mut Vec<BTreeSet<usize>>,
                        col_bucket: &mut Vec<usize>,
                        pos: usize,
                        count: usize| {
            let nb = count.min(MAX_BUCKET);
            if nb != col_bucket[pos] {
                buckets[col_bucket[pos]].remove(&pos);
                buckets[nb].insert(pos);
                col_bucket[pos] = nb;
            }
        };

        let mut lu = SparseLu {
            m,
            pivot_row: Vec::with_capacity(m),
            pivot_col: Vec::with_capacity(m),
            pivot_val: Vec::with_capacity(m),
            lower: Vec::with_capacity(m),
            upper: Vec::with_capacity(m),
        };

        for _step in 0..m {
            // An active column with no active nonzero certifies singularity.
            if !buckets[0].is_empty() {
                return None;
            }
            // Markowitz search over the lowest-count candidate columns:
            // minimize (row_count - 1) * (col_count - 1) among entries that
            // pass the relative magnitude threshold.
            let mut best: Option<(usize, usize, usize)> = None; // (cost, row, pos)
            let mut examined = 0;
            'search: for bucket in buckets.iter().take(MAX_BUCKET + 1).skip(1) {
                for &pos in bucket {
                    let col_count = col_rows[pos].len();
                    let col_max = col_rows[pos]
                        .iter()
                        .map(|&r| rows[r][&pos].to_f64().abs())
                        .fold(0.0_f64, f64::max);
                    for &r in &col_rows[pos] {
                        let v = rows[r][&pos].to_f64().abs();
                        // NaN-safe: when magnitudes are unusable (overflowed
                        // rationals, underflow to 0), accept structurally.
                        if col_max > 0.0 && v < PIVOT_THRESHOLD * col_max {
                            continue;
                        }
                        let cost = (rows[r].len() - 1) * (col_count - 1);
                        let improves = match best {
                            None => true,
                            Some((c, _, _)) => cost < c,
                        };
                        if improves {
                            best = Some((cost, r, pos));
                        }
                    }
                    examined += 1;
                    if examined >= MARKOWITZ_CANDIDATES || matches!(best, Some((0, _, _))) {
                        break 'search;
                    }
                }
            }
            let (_, pi, pj) = best?;

            // Retire the pivot row from the active submatrix.
            let prow = std::mem::take(&mut rows[pi]);
            for &c in prow.keys() {
                col_rows[c].remove(&pi);
                rebucket(&mut buckets, &mut col_bucket, c, col_rows[c].len());
            }
            let piv_val = prow[&pj].clone();
            let upper_k: Vec<(usize, S)> =
                prow.iter().filter(|(&c, _)| c != pj).map(|(&c, v)| (c, v.clone())).collect();

            // Eliminate the pivot column from the remaining active rows.
            let elim: Vec<usize> = col_rows[pj].iter().copied().collect();
            let mut lower_k = Vec::with_capacity(elim.len());
            for r in elim {
                let factor = rows[r].remove(&pj).expect("row is in the pivot column's index");
                let mult = factor.div(&piv_val);
                for (c, v) in &upper_k {
                    let delta = mult.mul(v);
                    match rows[r].get(c) {
                        Some(old) => {
                            let nv = old.sub(&delta);
                            if nv.is_zero() {
                                rows[r].remove(c);
                                col_rows[*c].remove(&r);
                                rebucket(&mut buckets, &mut col_bucket, *c, col_rows[*c].len());
                            } else {
                                rows[r].insert(*c, nv);
                            }
                        }
                        None => {
                            if !delta.is_zero() {
                                rows[r].insert(*c, delta.neg());
                                col_rows[*c].insert(r);
                                rebucket(&mut buckets, &mut col_bucket, *c, col_rows[*c].len());
                            }
                        }
                    }
                }
                lower_k.push((r, mult));
            }
            col_rows[pj].clear();
            buckets[col_bucket[pj]].remove(&pj);

            lu.pivot_row.push(pi);
            lu.pivot_col.push(pj);
            lu.pivot_val.push(piv_val);
            lu.lower.push(lower_k);
            lu.upper.push(upper_k);
        }
        Some(lu)
    }

    /// Basis dimension.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Stored nonzeros (pivots + both triangular factors).
    pub fn nnz(&self) -> usize {
        self.m
            + self.lower.iter().map(Vec::len).sum::<usize>()
            + self.upper.iter().map(Vec::len).sum::<usize>()
    }

    /// FTRAN: solves `B x = b`.  `b` is indexed by matrix row, the returned
    /// `x` by basis position.
    pub fn ftran(&self, mut b: Vec<S>) -> Vec<S> {
        debug_assert_eq!(b.len(), self.m);
        // Forward: replay the row eliminations on b.
        for k in 0..self.m {
            let zr = b[self.pivot_row[k]].clone();
            if zr.is_zero() {
                continue;
            }
            for (r, mult) in &self.lower[k] {
                b[*r] = b[*r].sub(&mult.mul(&zr));
            }
        }
        // Backward: substitute through the pivot rows in reverse order.
        let mut x = vec![S::zero(); self.m];
        for k in (0..self.m).rev() {
            let mut acc = b[self.pivot_row[k]].clone();
            for (c, v) in &self.upper[k] {
                if !x[*c].is_zero() {
                    acc = acc.sub(&v.mul(&x[*c]));
                }
            }
            if !acc.is_zero() {
                x[self.pivot_col[k]] = acc.div(&self.pivot_val[k]);
            }
        }
        x
    }

    /// BTRAN: solves `Bᵀ y = c`.  `c` is indexed by basis position, the
    /// returned `y` by matrix row.
    pub fn btran(&self, c: Vec<S>) -> Vec<S> {
        debug_assert_eq!(c.len(), self.m);
        // Forward: solve Uᵀ t = c, scattering updates by column position.
        let mut acc = c;
        let mut t = vec![S::zero(); self.m];
        for k in 0..self.m {
            let tk = acc[self.pivot_col[k]].div(&self.pivot_val[k]);
            if !tk.is_zero() {
                for (c2, v) in &self.upper[k] {
                    acc[*c2] = acc[*c2].sub(&v.mul(&tk));
                }
            }
            t[self.pivot_row[k]] = tk;
        }
        // Backward: solve Lᵀ y = t in reverse elimination order.
        let mut y = t;
        for k in (0..self.m).rev() {
            let mut s = S::zero();
            for (r, mult) in &self.lower[k] {
                if !y[*r].is_zero() {
                    s = s.add(&mult.mul(&y[*r]));
                }
            }
            if !s.is_zero() {
                y[self.pivot_row[k]] = y[self.pivot_row[k]].sub(&s);
            }
        }
        y
    }
}

// ---------------------------------------------------------------------------
// Eta updates (product form of the inverse)
// ---------------------------------------------------------------------------

/// One product-form basis update: after a pivot at basis position `pos`
/// with entering column `w = B⁻¹ A_j`, the new basis is `B · E` where `E`
/// is the identity with column `pos` replaced by `w`.
///
/// Applying `E⁻¹` (FTRAN direction) and `E⁻ᵀ` (BTRAN direction) costs one
/// pass over the stored nonzeros, so a short eta file keeps per-pivot solve
/// cost proportional to basis fill rather than basis dimension.
#[derive(Debug, Clone)]
pub struct Eta<S> {
    pos: usize,
    pivot: S,
    /// Nonzero entries of `w` away from `pos`.
    entries: Vec<(usize, S)>,
}

impl<S: Scalar> Eta<S> {
    /// Captures the eta column for a pivot at `pos` from the dense FTRAN
    /// result `w` (which must have `w[pos] != 0`).
    pub fn from_dense(pos: usize, w: &[S]) -> Eta<S> {
        debug_assert!(!w[pos].is_zero(), "eta pivot must be nonzero");
        let entries = w
            .iter()
            .enumerate()
            .filter(|&(i, v)| i != pos && !v.is_zero())
            .map(|(i, v)| (i, v.clone()))
            .collect();
        Eta { pos, pivot: w[pos].clone(), entries }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.entries.len() + 1
    }

    /// Applies `E⁻¹` in place (FTRAN direction, position-indexed vector).
    pub fn apply_ftran(&self, x: &mut [S]) {
        let t = x[self.pos].div(&self.pivot);
        if !t.is_zero() {
            for (i, w) in &self.entries {
                x[*i] = x[*i].sub(&w.mul(&t));
            }
        }
        x[self.pos] = t;
    }

    /// Applies `E⁻ᵀ` in place (BTRAN direction, position-indexed vector).
    pub fn apply_btran(&self, z: &mut [S]) {
        let mut acc = z[self.pos].clone();
        for (i, w) in &self.entries {
            if !z[*i].is_zero() {
                acc = acc.sub(&w.mul(&z[*i]));
            }
        }
        z[self.pos] = acc.div(&self.pivot);
    }
}

/// The factorized basis: an LU of some earlier basis plus the eta updates
/// accumulated since (`B_now = B_lu · E_1 ⋯ E_k`).
struct Factors<S> {
    lu: SparseLu<S>,
    etas: Vec<Eta<S>>,
    eta_nnz: usize,
}

impl<S: Scalar> Factors<S> {
    fn fresh(lu: SparseLu<S>) -> Self {
        Factors { lu, etas: Vec::new(), eta_nnz: 0 }
    }

    /// `B⁻¹ b`: LU solve, then etas in append order.
    fn ftran(&self, b: Vec<S>) -> Vec<S> {
        let mut x = self.lu.ftran(b);
        for eta in &self.etas {
            eta.apply_ftran(&mut x);
        }
        x
    }

    /// `B⁻ᵀ c`: etas in reverse order, then the LU transpose solve.
    fn btran(&self, c: Vec<S>) -> Vec<S> {
        let mut z = c;
        for eta in self.etas.iter().rev() {
            eta.apply_btran(&mut z);
        }
        self.lu.btran(z)
    }
}

// ---------------------------------------------------------------------------
// The revised simplex driver
// ---------------------------------------------------------------------------

struct Revised<'a, S> {
    sf: StandardForm<S>,
    /// Basic column of each basis position (position `i` tracks standard-form
    /// row `i`, matching the dense tableau's row-to-basis assignment).
    basic: Vec<usize>,
    factors: Factors<S>,
    /// Current basic values `B⁻¹ b`, by position.
    xb: Vec<S>,
    options: &'a RevisedOptions,
    stats: RevisedStats,
}

impl<S: Scalar> Revised<'_, S> {
    /// Simplex multipliers then reduced costs for every column:
    /// `y = B⁻ᵀ c_B`, `d_j = c_j − y · A_j`.
    fn reduced_costs(&self, costs: &[S]) -> Vec<S> {
        let cb: Vec<S> = self.basic.iter().map(|&j| costs[j].clone()).collect();
        let y = self.factors.btran(cb);
        let mut reduced = Vec::with_capacity(self.sf.num_cols());
        for (j, cost) in costs.iter().enumerate().take(self.sf.num_cols()) {
            let mut d = cost.clone();
            for (r, v) in self.sf.a.col(j) {
                if !y[r].is_zero() {
                    d = d.sub(&y[r].mul(v));
                }
            }
            reduced.push(d);
        }
        reduced
    }

    /// Entering-column choice; identical rule to the dense tableau
    /// (first-encountered Dantzig maximum, or Bland's first positive).
    fn choose_entering(reduced: &[S], allowed: &[bool], bland: bool) -> Option<usize> {
        let mut best: Option<(usize, &S)> = None;
        for (j, r) in reduced.iter().enumerate() {
            if !allowed[j] {
                continue;
            }
            if r.is_positive() {
                if bland {
                    return Some(j);
                }
                match &best {
                    None => best = Some((j, r)),
                    Some((_, rb)) if rb.lt(r) => best = Some((j, r)),
                    _ => {}
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Ratio test over the FTRAN'd entering column; identical rule to the
    /// dense tableau (minimum ratio, ties to the smallest basic column).
    fn choose_leaving(&self, w: &[S]) -> Option<usize> {
        let mut best: Option<(usize, S)> = None;
        for (i, a) in w.iter().enumerate() {
            if !a.is_positive() {
                continue;
            }
            let ratio = self.xb[i].div(a);
            match &best {
                None => best = Some((i, ratio)),
                Some((bi, br)) => {
                    if ratio.lt(br) || (!br.lt(&ratio) && self.basic[i] < self.basic[*bi]) {
                        best = Some((i, ratio));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }

    /// Executes the basis change `basic[pos] ← col` given `w = B⁻¹ A_col`:
    /// updates the basic values, appends an eta (or refactorizes when the
    /// eta file is due), and keeps the work counters.
    fn pivot<O: SolveObserver>(
        &mut self,
        pos: usize,
        col: usize,
        w: Vec<S>,
        obs: &mut O,
    ) -> Result<(), SimplexError> {
        let t = self.xb[pos].div(&w[pos]);
        for (i, wi) in w.iter().enumerate() {
            if i != pos && !wi.is_zero() {
                self.xb[i] = self.xb[i].sub(&wi.mul(&t));
            }
        }
        self.xb[pos] = t;
        self.basic[pos] = col;

        let eta = Eta::from_dense(pos, &w);
        self.factors.eta_nnz += eta.nnz();
        self.factors.etas.push(eta);
        self.stats.peak_eta = self.stats.peak_eta.max(self.factors.etas.len());
        if O::ENABLED {
            obs.on_event(SolveEvent::EtaAppended {
                etas: self.factors.etas.len(),
                eta_nnz: self.factors.eta_nnz,
            });
        }

        let fill_bound = (2 * self.factors.lu.nnz()).max(4 * self.sf.num_rows());
        let interval_due = self.factors.etas.len() >= self.options.refactor_interval;
        let fill_due = self.factors.eta_nnz > fill_bound;
        if interval_due || fill_due {
            if O::ENABLED {
                obs.on_event(SolveEvent::RefactorStarted {
                    reason: if interval_due {
                        RefactorReason::EtaInterval
                    } else {
                        RefactorReason::FillGrowth
                    },
                    etas: self.factors.etas.len(),
                    eta_nnz: self.factors.eta_nnz,
                });
            }
            self.refactorize()?;
            if O::ENABLED {
                obs.on_event(SolveEvent::RefactorFinished {
                    lu_nnz: self.factors.lu.nnz(),
                    dim: self.sf.num_rows(),
                });
            }
        }
        Ok(())
    }

    /// Rebuilds the LU from the current basic columns and recomputes the
    /// basic values from scratch (identical in exact arithmetic, fresher in
    /// `f64`).
    fn refactorize(&mut self) -> Result<(), SimplexError> {
        // In exact arithmetic the current basis is provably nonsingular, so
        // factorization cannot fail; in f64 a failure means round-off has
        // degraded the basis beyond repair — surface the defensive backstop
        // error and let the certified pipeline fall back to exact.
        let lu = SparseLu::factorize(&self.sf.a, &self.basic)
            .ok_or(SimplexError::IterationLimit { iterations: 0 })?;
        self.factors = Factors::fresh(lu);
        self.xb = self.factors.ftran(self.sf.rhs.clone());
        self.stats.refactorizations += 1;
        Ok(())
    }

    /// Runs revised simplex iterations with the given cost vector until
    /// optimality, mirroring the dense `Tableau::optimize` iteration/Bland
    /// accounting exactly.
    fn optimize<O: SolveObserver>(
        &mut self,
        costs: &[S],
        allowed: &[bool],
        iterations: &mut usize,
        phase: SolvePhase,
        obs: &mut O,
    ) -> Result<(), SimplexError> {
        let default_cap = 50 * (self.sf.num_rows() + self.sf.num_cols()) + 10_000;
        let cap = self.options.simplex.max_iterations.unwrap_or(default_cap);
        loop {
            if *iterations > cap {
                return Err(SimplexError::IterationLimit { iterations: *iterations });
            }
            let bland = *iterations >= self.options.simplex.bland_after;
            let reduced = self.reduced_costs(costs);
            let Some(col) = Self::choose_entering(&reduced, allowed, bland) else {
                return Ok(());
            };
            let w = self.factors.ftran(self.sf.a.col_dense(col));
            let Some(pos) = self.choose_leaving(&w) else {
                return Err(SimplexError::Unbounded);
            };
            if O::ENABLED {
                obs.on_event(SolveEvent::Pivot {
                    phase,
                    kind: PivotKind::Primal,
                    rule: if bland { PivotRule::Bland } else { PivotRule::Dantzig },
                    entering: col,
                    leaving: self.basic[pos],
                    degenerate: self.xb[pos].is_zero(),
                });
            }
            self.pivot(pos, col, w, obs)?;
            *iterations += 1;
        }
    }

    /// Pivots basic artificials onto real columns wherever one has a nonzero
    /// entry in their row — the revised analogue of the dense
    /// `drive_out_artificials`, scanning columns in the same ascending order
    /// so the replacement choice matches pivot for pivot.
    fn drive_out_artificials<O: SolveObserver>(&mut self, obs: &mut O) -> Result<(), SimplexError> {
        for pos in 0..self.sf.num_rows() {
            if self.sf.kinds[self.basic[pos]] != ColKind::Artificial {
                continue;
            }
            // Row `pos` of B⁻¹, i.e. y with yᵀ A_j = (B⁻¹ A_j)[pos].
            let mut e = vec![S::zero(); self.sf.num_rows()];
            e[pos] = S::one();
            let y = self.factors.btran(e);
            let replacement = (0..self.sf.num_cols()).find(|&j| {
                if self.sf.kinds[j] == ColKind::Artificial {
                    return false;
                }
                let mut acc = S::zero();
                for (r, v) in self.sf.a.col(j) {
                    if !y[r].is_zero() {
                        acc = acc.add(&y[r].mul(v));
                    }
                }
                !acc.is_zero()
            });
            if let Some(j) = replacement {
                let w = self.factors.ftran(self.sf.a.col_dense(j));
                if w[pos].is_zero() {
                    // f64 round-off disagreement between the probe and the
                    // full FTRAN; the entry is too small to pivot on safely.
                    continue;
                }
                // Drive-out pivots are uncounted (like the dense path's), so
                // they emit no Pivot events — only the eta/refactor activity
                // inside `pivot` is observed.
                self.pivot(pos, j, w, obs)?;
            }
        }
        Ok(())
    }

    /// Two-phase driver, mirroring the dense `Tableau::run` decision
    /// structure exactly (see the module docs on pivot-rule parity).
    fn run<O: SolveObserver>(
        mut self,
        problem: &LpProblem,
        warm_started: bool,
        obs: &mut O,
    ) -> Result<(Solution<S>, RevisedStats), SimplexError> {
        let mut iterations = 0usize;

        let needs_phase1 = if warm_started {
            (0..self.sf.num_rows()).any(|i| {
                self.sf.kinds[self.basic[i]] == ColKind::Artificial && self.xb[i].is_positive()
            })
        } else {
            self.sf.kinds.contains(&ColKind::Artificial)
        };
        if needs_phase1 {
            if O::ENABLED {
                obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase1 });
            }
            let phase1_costs: Vec<S> = self
                .sf
                .kinds
                .iter()
                .map(|k| if *k == ColKind::Artificial { S::one().neg() } else { S::zero() })
                .collect();
            let allowed = vec![true; self.sf.num_cols()];
            self.optimize(&phase1_costs, &allowed, &mut iterations, SolvePhase::Phase1, obs)?;

            let mut infeasibility = S::zero();
            for pos in 0..self.sf.num_rows() {
                if self.sf.kinds[self.basic[pos]] == ColKind::Artificial {
                    infeasibility = infeasibility.add(&self.xb[pos]);
                }
            }
            if infeasibility.is_positive() {
                return Err(SimplexError::Infeasible);
            }
        }
        let phase1_iterations = iterations;

        self.drive_out_artificials(obs)?;

        if O::ENABLED {
            obs.on_event(SolveEvent::PhaseStarted { phase: SolvePhase::Phase2 });
        }
        let allowed: Vec<bool> = self.sf.kinds.iter().map(|k| *k != ColKind::Artificial).collect();
        let costs = self.sf.costs.clone();
        self.optimize(&costs, &allowed, &mut iterations, SolvePhase::Phase2, obs)?;

        Ok(self.finish(problem, iterations, phase1_iterations, warm_started))
    }

    /// Reads the solution out of the optimized factorization, matching the
    /// dense `Tableau::finish` value/objective/dual extraction.
    fn finish(
        self,
        problem: &LpProblem,
        iterations: usize,
        phase1_iterations: usize,
        warm_started: bool,
    ) -> (Solution<S>, RevisedStats) {
        let mut values = vec![S::zero(); self.sf.n_structural];
        for pos in 0..self.sf.num_rows() {
            let j = self.basic[pos];
            if j < self.sf.n_structural {
                values[j] = clamp_nonneg(self.xb[pos].clone());
            }
        }

        let mut objective = S::zero();
        for (j, c) in self.sf.costs.iter().enumerate().take(self.sf.n_structural) {
            if !c.is_zero() && !values[j].is_zero() {
                objective = objective.add(&c.mul(&values[j]));
            }
        }
        if matches!(problem.direction(), Objective::Minimize) {
            objective = objective.neg();
        }

        // Duals: y = B⁻ᵀ c_B; the dual of original row i is y[i] since the
        // initial-identity column of row i is e_i (negated rows flip sign),
        // exactly as the dense path reads them off the init_col columns.
        let cb: Vec<S> = self.basic.iter().map(|&j| self.sf.costs[j].clone()).collect();
        let y = self.factors.btran(cb);
        let duals: Vec<S> = y
            .into_iter()
            .zip(&self.sf.negated)
            .map(|(v, &neg)| if neg { v.neg() } else { v })
            .collect();

        let basis = SolvedBasis {
            cols: self.basic.clone(),
            num_cols: self.sf.num_cols(),
            n_structural: self.sf.n_structural,
        };
        (
            Solution {
                values,
                objective,
                duals,
                iterations,
                phase1_iterations,
                warm_started,
                basis,
            },
            self.stats,
        )
    }
}

/// Shape compatibility of a basis with a standard form — the same predicate
/// the dense path applies before attempting a warm install.
fn basis_compatible<S: Scalar>(basis: &SolvedBasis, sf: &StandardForm<S>) -> bool {
    basis.cols.len() == sf.num_rows()
        && basis.num_cols == sf.num_cols()
        && basis.n_structural == sf.n_structural
        && basis.cols.iter().all(|&c| c < basis.num_cols)
        && {
            let mut sorted = basis.cols.clone();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        }
}

/// Solves `problem` with the revised simplex and default options.
pub fn solve_revised<S: Scalar>(problem: &LpProblem) -> Result<Solution<S>, SimplexError> {
    solve_revised_with_options(problem, &RevisedOptions::default())
}

/// [`solve_revised`] with explicit options.
pub fn solve_revised_with_options<S: Scalar>(
    problem: &LpProblem,
    options: &RevisedOptions,
) -> Result<Solution<S>, SimplexError> {
    solve_revised_report(problem, None, options).map(|(sol, _)| sol)
}

/// Solves `problem`, resuming from a previously solved basis.
///
/// Same contract as the dense [`crate::simplex::solve_with_basis`]: a basis
/// that is incompatible, singular for this data, or primal infeasible is
/// silently discarded and the solve falls back to the ordinary cold
/// two-phase method, so the result is identical either way.
pub fn solve_revised_with_basis<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
) -> Result<Solution<S>, SimplexError> {
    solve_revised_with_basis_options(problem, basis, &RevisedOptions::default())
}

/// [`solve_revised_with_basis`] with explicit options.
pub fn solve_revised_with_basis_options<S: Scalar>(
    problem: &LpProblem,
    basis: &SolvedBasis,
    options: &RevisedOptions,
) -> Result<Solution<S>, SimplexError> {
    solve_revised_report(problem, Some(basis), options).map(|(sol, _)| sol)
}

/// The fully instrumented entry point: optional warm basis, explicit
/// options, and the solve's [`RevisedStats`] alongside the solution.
pub fn solve_revised_report<S: Scalar>(
    problem: &LpProblem,
    warm: Option<&SolvedBasis>,
    options: &RevisedOptions,
) -> Result<(Solution<S>, RevisedStats), SimplexError> {
    solve_revised_report_observed(problem, warm, options, &mut NoopObserver)
}

/// [`solve_revised_report`] with a [`crate::instrument::SolveObserver`] tap on
/// the run: run start, warm-start install outcome, phases, pivots, eta
/// appends and refactorizations.  The observer cannot influence the solve.
pub fn solve_revised_report_observed<S: Scalar, O: SolveObserver>(
    problem: &LpProblem,
    warm: Option<&SolvedBasis>,
    options: &RevisedOptions,
    obs: &mut O,
) -> Result<(Solution<S>, RevisedStats), SimplexError> {
    if O::ENABLED {
        obs.on_event(SolveEvent::RunStarted { path: SolvePath::Revised });
    }
    let sf = StandardForm::<S>::build(problem);

    if let Some(basis) = warm {
        if basis_compatible(basis, &sf) {
            if let Some(lu) = SparseLu::factorize(&sf.a, &basis.cols) {
                let factors = Factors::fresh(lu);
                let xb = factors.ftran(sf.rhs.clone());
                if xb.iter().all(|b| !b.is_negative()) {
                    if O::ENABLED {
                        obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::Installed });
                    }
                    let solver = Revised {
                        sf,
                        basic: basis.cols.clone(),
                        factors,
                        xb,
                        options,
                        stats: RevisedStats::default(),
                    };
                    return solver.run(problem, true, obs);
                }
            }
        }
        // An incompatible, singular or primal-infeasible basis is silently
        // discarded; the cold start below matches the dense fallback.
        if O::ENABLED {
            obs.on_event(SolveEvent::WarmStart { outcome: WarmOutcome::Rejected });
        }
    }
    cold_start(sf, problem, options, obs)
}

/// Cold start from the all-slack/artificial identity basis.
fn cold_start<S: Scalar, O: SolveObserver>(
    sf: StandardForm<S>,
    problem: &LpProblem,
    options: &RevisedOptions,
    obs: &mut O,
) -> Result<(Solution<S>, RevisedStats), SimplexError> {
    let basic = sf.init_basis.clone();
    let lu = SparseLu::factorize(&sf.a, &basic)
        .expect("the slack/artificial start basis is an identity and always factorizes");
    let factors = Factors::fresh(lu);
    let xb = sf.rhs.clone();
    let solver = Revised { sf, basic, factors, xb, options, stats: RevisedStats::default() };
    solver.run(problem, false, obs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearExpr, LpProblem, Sense};
    use crate::simplex;
    use steady_rational::{rat, Ratio};

    fn expr(terms: &[(crate::model::VarId, Ratio)]) -> LinearExpr {
        let mut e = LinearExpr::new();
        for (v, c) in terms {
            e.add_term(*v, c.clone());
        }
        e
    }

    fn assert_matches_dense(lp: &LpProblem) {
        let dense = simplex::solve_exact(lp).unwrap();
        let (revised, _) =
            solve_revised_report::<Ratio>(lp, None, &RevisedOptions::default()).unwrap();
        assert_eq!(revised.values, dense.values);
        assert_eq!(revised.objective, dense.objective);
        assert_eq!(revised.duals, dense.duals);
        assert_eq!(revised.basis, dense.basis);
        assert_eq!(revised.iterations, dense.iterations);
        assert_eq!(revised.phase1_iterations, dense.phase1_iterations);
    }

    #[test]
    fn lu_roundtrip_on_a_dense_block() {
        // 3x3 invertible matrix as the basis of a 3x5 CSC.
        let a = CscMatrix::from_columns(
            3,
            vec![
                vec![(0, rat(2, 1)), (1, rat(1, 1))],
                vec![(0, rat(1, 1)), (2, rat(3, 1))],
                vec![(1, rat(4, 1)), (2, rat(1, 1))],
                vec![(0, rat(7, 1))],
                vec![(2, rat(1, 1))],
            ],
        );
        let lu = SparseLu::factorize(&a, &[0, 1, 2]).expect("nonsingular");
        assert_eq!(lu.dim(), 3);
        // B x = b with b = (5, 9, 10): check by substituting back.
        let b = vec![rat(5, 1), rat(9, 1), rat(10, 1)];
        let x = lu.ftran(b.clone());
        let mut back = vec![<Ratio as Scalar>::zero(); 3];
        for (pos, &col) in [0usize, 1, 2].iter().enumerate() {
            for (r, v) in a.col(col) {
                back[r] = back[r].add(&v.mul(&x[pos]));
            }
        }
        assert_eq!(back, b);
        // Bᵀ y = c: check by substituting back.
        let c = vec![rat(1, 1), rat(2, 1), rat(-1, 1)];
        let y = lu.btran(c.clone());
        for (pos, &col) in [0usize, 1, 2].iter().enumerate() {
            let mut dot = <Ratio as Scalar>::zero();
            for (r, v) in a.col(col) {
                dot = dot.add(&v.mul(&y[r]));
            }
            assert_eq!(dot, c[pos], "column {pos}");
        }
    }

    #[test]
    fn singular_basis_is_rejected() {
        let a = CscMatrix::from_columns(
            2,
            vec![vec![(0, rat(1, 1))], vec![(0, rat(2, 1))], vec![(1, rat(1, 1))]],
        );
        assert!(SparseLu::<Ratio>::factorize(&a, &[0, 1]).is_none());
        assert!(SparseLu::<Ratio>::factorize(&a, &[0, 2]).is_some());
    }

    #[test]
    fn eta_update_matches_refactorization() {
        // Start from the identity basis of a 3-row matrix, pivot column 3 in
        // at position 1, and compare eta-file solves against a fresh LU of
        // the updated basis.
        let a = CscMatrix::from_columns(
            3,
            vec![
                vec![(0, rat(1, 1))],
                vec![(1, rat(1, 1))],
                vec![(2, rat(1, 1))],
                vec![(0, rat(1, 2)), (1, rat(3, 1)), (2, rat(-1, 1))],
            ],
        );
        let lu = SparseLu::factorize(&a, &[0, 1, 2]).unwrap();
        let w = lu.ftran(a.col_dense(3));
        let eta = Eta::from_dense(1, &w);

        let fresh = SparseLu::factorize(&a, &[0, 3, 2]).unwrap();
        let b = vec![rat(4, 1), rat(5, 1), rat(6, 1)];
        let mut via_eta = lu.ftran(b.clone());
        eta.apply_ftran(&mut via_eta);
        assert_eq!(via_eta, fresh.ftran(b));

        let c = vec![rat(1, 1), rat(-2, 1), rat(3, 1)];
        let mut z = c.clone();
        eta.apply_btran(&mut z);
        assert_eq!(lu.btran(z), fresh.btran(c));
    }

    #[test]
    fn matches_dense_on_basic_lps() {
        // Pure Le.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(3, 1));
        lp.set_objective(y, rat(2, 1));
        lp.add_constraint("c1", expr(&[(x, rat(1, 1)), (y, rat(1, 1))]), Sense::Le, rat(4, 1));
        lp.add_constraint("c2", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(6, 1));
        assert_matches_dense(&lp);

        // Mixed senses and a minimization.
        let mut lp = LpProblem::minimize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(1, 1)), (y, rat(2, 1))]), Sense::Ge, rat(4, 1));
        lp.add_constraint("b", expr(&[(x, rat(3, 1)), (y, rat(1, 1))]), Sense::Ge, rat(6, 1));
        assert_matches_dense(&lp);

        // Equalities and a negative rhs.
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        let z = lp.add_var("z");
        lp.set_objective(z, rat(1, 1));
        lp.add_constraint("flow", expr(&[(x, rat(1, 1)), (y, rat(-1, 1))]), Sense::Eq, rat(0, 1));
        lp.add_constraint("capx", expr(&[(x, rat(3, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("link", expr(&[(z, rat(1, 1)), (y, rat(-1, 1))]), Sense::Le, rat(0, 1));
        lp.add_constraint("neg", expr(&[(x, rat(-1, 1))]), Sense::Le, rat(-1, 100));
        assert_matches_dense(&lp);
    }

    #[test]
    fn error_verdicts_match_dense() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("lo", expr(&[(x, rat(1, 1))]), Sense::Ge, rat(5, 1));
        lp.add_constraint("hi", expr(&[(x, rat(1, 1))]), Sense::Le, rat(3, 1));
        assert!(matches!(solve_revised::<Ratio>(&lp), Err(SimplexError::Infeasible)));

        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.add_constraint("only-y", expr(&[(y, rat(1, 1))]), Sense::Le, rat(1, 1));
        assert!(matches!(solve_revised::<Ratio>(&lp), Err(SimplexError::Unbounded)));
    }

    #[test]
    fn warm_start_semantics_match_dense() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("b", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(1, 1));
        let cold = solve_revised::<Ratio>(&lp).unwrap();

        // Re-solving warm from the optimal basis costs zero pivots.
        let warm = solve_revised_with_basis::<Ratio>(&lp, &cold.basis).unwrap();
        assert!(warm.warm_started);
        assert_eq!(warm.iterations, 0);
        assert_eq!(warm.values, cold.values);
        assert_eq!(warm.objective, cold.objective);
        assert_eq!(warm.duals, cold.duals);

        // The dense path accepts the revised basis and vice versa.
        let dense_warm = simplex::solve_with_basis::<Ratio>(&lp, &cold.basis).unwrap();
        assert!(dense_warm.warm_started);
        assert_eq!(dense_warm.objective, cold.objective);
        let dense_cold = simplex::solve_exact(&lp).unwrap();
        let revised_warm = solve_revised_with_basis::<Ratio>(&lp, &dense_cold.basis).unwrap();
        assert!(revised_warm.warm_started);
        assert_eq!(revised_warm.objective, cold.objective);

        // A garbage basis is silently discarded, matching the dense contract.
        let garbage = SolvedBasis { cols: vec![0, 0], num_cols: 4, n_structural: 2 };
        let fallback = solve_revised_with_basis::<Ratio>(&lp, &garbage).unwrap();
        assert!(!fallback.warm_started);
        assert_eq!(fallback.objective, cold.objective);
    }

    #[test]
    fn refactorization_interval_is_respected_and_harmless() {
        // Force a refactorization every other pivot; results must not change.
        let mut lp = LpProblem::maximize();
        let vars: Vec<_> = (0..6).map(|i| lp.add_var(format!("x{i}"))).collect();
        for (i, &v) in vars.iter().enumerate() {
            lp.set_objective(v, rat(1 + (i as i64 % 3), 1));
        }
        for i in 0..6 {
            let mut e = LinearExpr::new();
            e.add_term(vars[i], rat(2, 1));
            e.add_term(vars[(i + 1) % 6], rat(1, 1));
            lp.add_constraint(format!("c{i}"), e, Sense::Le, rat(3 + i as i64, 1));
        }
        let baseline = solve_revised::<Ratio>(&lp).unwrap();
        let tight = RevisedOptions { refactor_interval: 2, ..Default::default() };
        let (sol, stats) = solve_revised_report::<Ratio>(&lp, None, &tight).unwrap();
        assert_eq!(sol.values, baseline.values);
        assert_eq!(sol.objective, baseline.objective);
        assert_eq!(sol.basis, baseline.basis);
        assert!(stats.refactorizations > 0, "tight interval must trigger refactorizations");
        assert!(stats.peak_eta <= 2);
        assert_matches_dense(&lp);
    }

    #[test]
    fn f64_instantiation_reaches_the_same_optimum() {
        let mut lp = LpProblem::maximize();
        let x = lp.add_var("x");
        let y = lp.add_var("y");
        lp.set_objective(x, rat(1, 1));
        lp.set_objective(y, rat(1, 1));
        lp.add_constraint("a", expr(&[(x, rat(2, 1)), (y, rat(1, 1))]), Sense::Le, rat(1, 1));
        lp.add_constraint("b", expr(&[(x, rat(1, 1)), (y, rat(3, 1))]), Sense::Le, rat(1, 1));
        let sol = solve_revised::<f64>(&lp).unwrap();
        assert!((sol.objective - 0.6).abs() < 1e-9);
    }
}
