//! The executor-backed work-stealing pool.
//!
//! Every live task is spawned on the offline `async-executor` shim: the
//! task body is a future, the worker that picks it up drives its first poll
//! inline, and if the future ever parks, its waker pushes a fresh
//! [`Runnable`] onto the owning worker's runnable stash — waiters are
//! wakers, not blocked threads.  (The engine's hooks are synchronous today,
//! so tasks complete on the first poll; the executor seam is what lets a
//! future version await inside a solve without occupying a worker.)
//!
//! Dispatch order per worker:
//!
//! 1. drain the worker's own runnable stash (woken tasks resume first);
//! 2. pop the worker's own demand deque (vetting each task against the
//!    clock, exactly like an injector pop);
//! 3. pop the shared lane injector — a demand pop also grabs a small batch
//!    of extra demand tasks into the worker's deque, creating stealable
//!    work;
//! 4. steal the oldest task from a sibling's deque or stash;
//! 5. park on the injector condvar for [`IDLE_POLL`].
//!
//! Prefetch and revalidation tasks never enter per-worker deques: they are
//! taken from the injector only when no higher-priority work exists
//! anywhere the worker can see, which preserves strict lane priority even
//! while demand batches circulate through the deques.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use async_executor::Runnable;

use crate::deque::WorkDeque;
use crate::lane::{Lane, LaneCounters, LaneQueues, LaneTask, Popped};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Mutex;
use crate::{NowFn, Running, Scheduler, WorkerHooks, IDLE_POLL};

/// The work-stealing scheduling strategy.
pub struct WorkStealing {
    /// Extra demand tasks a worker pulls into its own deque per injector
    /// pop.  Zero disables batching (every pop goes through the injector).
    pub batch: usize,
}

impl Default for WorkStealing {
    fn default() -> Self {
        WorkStealing { batch: 2 }
    }
}

struct Core<T> {
    lanes: Arc<LaneQueues<T>>,
    task_deques: Vec<Arc<WorkDeque<LaneTask<T>>>>,
    run_stashes: Vec<Arc<WorkDeque<Runnable>>>,
    steals: AtomicU64,
    batch: usize,
}

impl<T: Send + 'static> Scheduler<T> for WorkStealing {
    fn name(&self) -> &'static str {
        "work-stealing"
    }

    fn start(
        &self,
        workers: usize,
        hooks: Arc<dyn WorkerHooks<T>>,
        now: NowFn,
    ) -> Box<dyn Running<T>> {
        let core = Arc::new(Core {
            lanes: Arc::new(LaneQueues::new()),
            task_deques: (0..workers).map(|_| Arc::new(WorkDeque::new())).collect(),
            run_stashes: (0..workers).map(|_| Arc::new(WorkDeque::new())).collect(),
            steals: AtomicU64::new(0),
            batch: self.batch,
        });
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|worker| {
                let core = Arc::clone(&core);
                let hooks = Arc::clone(&hooks);
                let now = Arc::clone(&now);
                std::thread::Builder::new()
                    .name(format!("steady-ws-{worker}"))
                    .spawn(move || worker_loop(worker, &core, &hooks, &now))
                    // Documented fail-fast at startup: if the OS refuses a
                    // thread the pool cannot exist.
                    // lint: allow(panics)
                    .expect("spawn scheduler worker thread")
            })
            .collect();
        Box::new(Pool { core, handles: Mutex::new(handles) })
    }
}

struct Pool<T> {
    core: Arc<Core<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> Running<T> for Pool<T> {
    fn submit(&self, task: LaneTask<T>) -> bool {
        self.core.lanes.push(task)
    }

    fn counters(&self) -> LaneCounters {
        let mut counters = self.core.lanes.counters();
        // Per-worker deques hold demand tasks that are queued, just not in
        // the injector; fold them into the demand depth so the gauge covers
        // everything not yet running.
        let stashed: u64 = self.core.task_deques.iter().map(|d| d.len() as u64).sum();
        counters.depth[Lane::Demand.index()] += stashed;
        // relaxed: monotone report-only counter.
        counters.steals = self.core.steals.load(Ordering::Relaxed);
        counters
    }

    fn cancel_lane(&self, lane: Lane) -> usize {
        // Background lanes live only in the injector; demand tasks already
        // batched into a worker's deque are past the cancellation point and
        // will still run.
        self.core.lanes.cancel_lane(lane)
    }

    fn backlog(&self) -> usize {
        self.core.lanes.idle_latch().backlog()
    }

    fn await_background_idle(&self, timeout: Duration) -> bool {
        self.core.lanes.idle_latch().await_idle(timeout)
    }

    fn shutdown(&self) {
        self.core.lanes.close();
        let handles: Vec<JoinHandle<()>> = {
            let mut handles = self.handles.lock();
            handles.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<T> Drop for Pool<T> {
    fn drop(&mut self) {
        self.core.lanes.close();
        for handle in self.handles.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(
    worker: usize,
    core: &Arc<Core<T>>,
    hooks: &Arc<dyn WorkerHooks<T>>,
    now: &NowFn,
) {
    loop {
        // 1. Woken tasks resume before anything new is admitted.
        if let Some(runnable) = core.run_stashes[worker].pop() {
            runnable.run();
            continue;
        }
        // 2. Own demand batch.
        if let Some(task) = core.task_deques[worker].pop() {
            dispatch(worker, core.lanes.vet(task, now()), core, hooks);
            continue;
        }
        // 3. Shared injector (+ grab a stealable demand batch).
        let (popped, batch) = core.lanes.pop_with_overflow(now(), core.batch);
        if !batch.is_empty() {
            core.task_deques[worker].push_many(batch);
        }
        match popped {
            Popped::Empty => {
                // 4. Steal the oldest task a busy sibling has parked.
                if !steal(worker, core, hooks, now) {
                    // 5. Nothing anywhere: park briefly.
                    core.lanes.wait_for_work(IDLE_POLL);
                }
            }
            Popped::Closed => {
                // Drain anything still parked locally, then exit.  Sibling
                // leftovers are handled by their owners (or stolen before
                // they notice the close).
                while let Some(task) = core.task_deques[worker].pop() {
                    dispatch(worker, core.lanes.vet(task, now()), core, hooks);
                }
                while let Some(runnable) = core.run_stashes[worker].pop() {
                    runnable.run();
                }
                return;
            }
            verdict => dispatch(worker, verdict, core, hooks),
        }
    }
}

/// Scans siblings for the oldest stealable work item.  Returns whether
/// anything was stolen (and run).
fn steal<T: Send + 'static>(
    worker: usize,
    core: &Arc<Core<T>>,
    hooks: &Arc<dyn WorkerHooks<T>>,
    now: &NowFn,
) -> bool {
    let workers = core.task_deques.len();
    for offset in 1..workers {
        let victim = (worker + offset) % workers;
        if let Some(task) = core.task_deques[victim].steal() {
            // relaxed: monotone report-only counter.
            core.steals.fetch_add(1, Ordering::Relaxed);
            dispatch(worker, core.lanes.vet(task, now()), core, hooks);
            return true;
        }
        if let Some(runnable) = core.run_stashes[victim].steal() {
            // relaxed: monotone report-only counter.
            core.steals.fetch_add(1, Ordering::Relaxed);
            runnable.run();
            return true;
        }
    }
    false
}

fn dispatch<T: Send + 'static>(
    worker: usize,
    verdict: Popped<T>,
    core: &Arc<Core<T>>,
    hooks: &Arc<dyn WorkerHooks<T>>,
) {
    match verdict {
        Popped::Task(task) => execute(worker, task, core, hooks),
        Popped::TimedOut(task) => {
            let background = task.lane.is_background();
            hooks.timed_out(worker, task);
            if background {
                core.lanes.idle_latch().finish_one();
            }
        }
        Popped::Cancelled(task) => {
            let background = task.lane.is_background();
            hooks.cancelled(worker, task);
            if background {
                core.lanes.idle_latch().finish_one();
            }
        }
        Popped::Empty | Popped::Closed => {}
    }
}

/// Spawns the task on the executor shim and drives its first poll inline.
/// If the future parks, its waker reschedules onto this worker's stash,
/// where the owner — or a thief — resumes it.
fn execute<T: Send + 'static>(
    worker: usize,
    task: LaneTask<T>,
    core: &Arc<Core<T>>,
    hooks: &Arc<dyn WorkerHooks<T>>,
) {
    let background = task.lane.is_background();
    let hooks = Arc::clone(hooks);
    let lanes = Arc::clone(&core.lanes);
    let stash = Arc::clone(&core.run_stashes[worker]);
    let (runnable, handle) = async_executor::spawn(
        async move {
            // Contain panics at the pool boundary: a panicking task must
            // not take down its worker or wedge the background-idle latch.
            let _ = catch_unwind(AssertUnwindSafe(|| hooks.run(worker, task)));
            if background {
                lanes.idle_latch().finish_one();
            }
        },
        move |runnable| stash.push(runnable),
    );
    runnable.run();
    handle.detach();
}

#[cfg(all(test, not(steady_loom)))]
mod tests {
    use super::*;
    use crate::NowFn;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    use std::time::Instant;

    struct SlowFirstHooks {
        ran_by: Mutex<Vec<usize>>,
        slow_hits: AtomicUsize,
    }

    impl WorkerHooks<u32> for SlowFirstHooks {
        fn run(&self, worker: usize, task: LaneTask<u32>) {
            if task.payload == 0 {
                // relaxed: test-only counter.
                self.slow_hits.fetch_add(1, StdOrdering::Relaxed);
                std::thread::sleep(Duration::from_millis(60));
            }
            self.ran_by.lock().push(worker);
        }
    }

    #[test]
    fn a_batch_stranded_behind_a_slow_task_gets_stolen() {
        let hooks = Arc::new(SlowFirstHooks {
            ran_by: Mutex::new(Vec::new()),
            slow_hits: AtomicUsize::new(0),
        });
        let epoch = Instant::now();
        let now: NowFn = Arc::new(move || epoch.elapsed().as_nanos() as u64);
        // Large batch so worker 0 hoards the queue; worker 1 must steal.
        let pool = WorkStealing { batch: 8 }.start(2, hooks.clone(), now);
        // Keep worker 1 from winning the initial injector race reliably by
        // submitting the slow task first.
        pool.submit(LaneTask::new(0, Lane::Demand, 0));
        for i in 1..=8u32 {
            pool.submit(LaneTask::new(i, Lane::Demand, 0));
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        while hooks.ran_by.lock().len() < 9 {
            assert!(Instant::now() < deadline, "tasks did not all finish");
            std::thread::sleep(Duration::from_millis(5));
        }
        pool.shutdown();
        let ran_by = hooks.ran_by.lock();
        assert_eq!(ran_by.len(), 9);
        // Both workers participated: whichever worker took the slow task
        // cannot have run everything.
        assert!(ran_by.contains(&0) && ran_by.contains(&1));
    }
}
