//! Per-worker work-stealing deques.
//!
//! The workspace forbids `unsafe` throughout, so this is not a lock-free
//! Chase–Lev deque: each worker's queue is a mutex-guarded `VecDeque`
//! (rank 12 in the lock hierarchy, acquired only with nothing else held).
//! Contention is still low in practice — owners touch only their own deque
//! on the hot path, and thieves hit a sibling's lock only when the shared
//! lane injector is empty.
//!
//! Ends are chosen for latency fairness rather than classic LIFO-stealing:
//! both the owner ([`WorkDeque::pop`]) and thieves ([`WorkDeque::steal`])
//! take the *oldest* task, so a deadline-carrying demand task stranded in a
//! busy worker's deque is the first thing a stealer rescues.

use std::collections::VecDeque;

use crate::sync::Mutex;

/// A mutex-backed double-ended work queue owned by one worker and stealable
/// by its siblings.
pub struct WorkDeque<T> {
    deque: Mutex<VecDeque<T>>,
}

impl<T> Default for WorkDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        WorkDeque { deque: Mutex::new(VecDeque::new()) }
    }

    /// Appends one task (owner side).
    pub fn push(&self, task: T) {
        let mut deque = self.deque.lock();
        deque.push_back(task);
    }

    /// Appends a batch of tasks in order (owner side).
    pub fn push_many(&self, tasks: Vec<T>) {
        if tasks.is_empty() {
            return;
        }
        let mut deque = self.deque.lock();
        deque.extend(tasks);
    }

    /// Takes the oldest task (owner side).
    pub fn pop(&self) -> Option<T> {
        let mut deque = self.deque.lock();
        deque.pop_front()
    }

    /// Takes the oldest task from a sibling's deque (thief side).
    pub fn steal(&self) -> Option<T> {
        let mut deque = self.deque.lock();
        deque.pop_front()
    }

    /// Tasks currently queued.
    pub fn len(&self) -> usize {
        self.deque.lock().len()
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(steady_loom)))]
mod tests {
    use super::*;

    #[test]
    fn fifo_for_both_owner_and_thief() {
        let deque = WorkDeque::new();
        deque.push_many(vec![1, 2, 3]);
        assert_eq!(deque.steal(), Some(1));
        assert_eq!(deque.pop(), Some(2));
        assert_eq!(deque.len(), 1);
        assert_eq!(deque.pop(), Some(3));
        assert!(deque.is_empty());
        assert_eq!(deque.steal(), None);
    }
}
