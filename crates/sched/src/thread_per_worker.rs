//! The classic pool: one blocking thread per worker, all pulling straight
//! from the shared lane injector.  This is the engine's historical dispatch
//! strategy, extracted behind the [`Scheduler`] trait.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::lane::{Lane, LaneCounters, LaneQueues, LaneTask, Popped};
use crate::sync::Mutex;
use crate::{NowFn, Running, Scheduler, WorkerHooks, IDLE_POLL};

/// The thread-per-worker scheduling strategy (the default).
pub struct ThreadPerWorker;

impl<T: Send + 'static> Scheduler<T> for ThreadPerWorker {
    fn name(&self) -> &'static str {
        "thread-per-worker"
    }

    fn start(
        &self,
        workers: usize,
        hooks: Arc<dyn WorkerHooks<T>>,
        now: NowFn,
    ) -> Box<dyn Running<T>> {
        let lanes = Arc::new(LaneQueues::new());
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|worker| {
                let lanes = Arc::clone(&lanes);
                let hooks = Arc::clone(&hooks);
                let now = Arc::clone(&now);
                std::thread::Builder::new()
                    .name(format!("steady-tpw-{worker}"))
                    .spawn(move || worker_loop(worker, &lanes, &hooks, &now))
                    // Documented fail-fast at startup: if the OS refuses a
                    // thread the pool cannot exist.
                    // lint: allow(panics)
                    .expect("spawn scheduler worker thread")
            })
            .collect();
        Box::new(Pool { lanes, handles: Mutex::new(handles) })
    }
}

struct Pool<T> {
    lanes: Arc<LaneQueues<T>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl<T: Send + 'static> Running<T> for Pool<T> {
    fn submit(&self, task: LaneTask<T>) -> bool {
        self.lanes.push(task)
    }

    fn counters(&self) -> LaneCounters {
        self.lanes.counters()
    }

    fn cancel_lane(&self, lane: Lane) -> usize {
        self.lanes.cancel_lane(lane)
    }

    fn backlog(&self) -> usize {
        self.lanes.idle_latch().backlog()
    }

    fn await_background_idle(&self, timeout: Duration) -> bool {
        self.lanes.idle_latch().await_idle(timeout)
    }

    fn shutdown(&self) {
        self.lanes.close();
        let handles: Vec<JoinHandle<()>> = {
            let mut handles = self.handles.lock();
            handles.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl<T> Drop for Pool<T> {
    fn drop(&mut self) {
        self.lanes.close();
        for handle in self.handles.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<T: Send + 'static>(
    worker: usize,
    lanes: &LaneQueues<T>,
    hooks: &Arc<dyn WorkerHooks<T>>,
    now: &NowFn,
) {
    loop {
        match lanes.pop(now()) {
            Popped::Task(task) => run_task(worker, task, lanes, hooks),
            Popped::TimedOut(task) => {
                let background = task.lane.is_background();
                hooks.timed_out(worker, task);
                if background {
                    lanes.idle_latch().finish_one();
                }
            }
            Popped::Cancelled(task) => {
                let background = task.lane.is_background();
                hooks.cancelled(worker, task);
                if background {
                    lanes.idle_latch().finish_one();
                }
            }
            Popped::Empty => lanes.wait_for_work(IDLE_POLL),
            Popped::Closed => return,
        }
    }
}

fn run_task<T: Send + 'static>(
    worker: usize,
    task: LaneTask<T>,
    lanes: &LaneQueues<T>,
    hooks: &Arc<dyn WorkerHooks<T>>,
) {
    let background = task.lane.is_background();
    // Contain panics at the pool boundary: a panicking task must not take
    // down its worker thread or wedge the background-idle latch.
    let _ = catch_unwind(AssertUnwindSafe(|| hooks.run(worker, task)));
    if background {
        lanes.idle_latch().finish_one();
    }
}
