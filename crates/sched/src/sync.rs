//! Concurrency facade for the scheduler subsystem: every lock, condvar and
//! atomic in `steady-sched` resolves through this module, mirroring
//! `steady_service::sync`.
//!
//! Normally the names map to the real primitives (`parking_lot` locks, `std`
//! atomics).  Under `--cfg steady_loom` they map to the `loom` shim's
//! *modeled* primitives instead, so the model-check suite
//! (`crates/service/tests/loom_models.rs`, model #7) can exhaustively
//! enumerate interleavings of the lane/steal protocol:
//!
//! ```text
//! RUSTFLAGS="--cfg steady_loom" cargo test -p steady-service --test loom_models
//! ```
//!
//! # Lock order
//!
//! Scheduler locks slot into the serving core's documented hierarchy (see
//! `steady_service::sync` for the full table); a thread may only acquire a
//! lock of strictly higher rank than any lock it already holds:
//!
//! | rank | locks                                                          |
//! |------|----------------------------------------------------------------|
//! | 10   | the priority-lane injector: [`LaneQueues`]' `lanes` state      |
//! | 12   | per-worker steal targets: each [`WorkDeque`]'s `deque`         |
//! | 25   | background-idle latch: the [`IdleLatch`] `pending` count       |
//!
//! Pushing a background task bumps the idle latch while holding the lane
//! state (10 → 25); workers consult their own deque only after releasing
//! the injector, and **never** the reverse.
//!
//! [`LaneQueues`]: crate::lane::LaneQueues
//! [`WorkDeque`]: crate::deque::WorkDeque
//! [`IdleLatch`]: crate::lane::IdleLatch

#[cfg(not(steady_loom))]
pub use parking_lot::{Condvar, Mutex};

#[cfg(steady_loom)]
pub use loom::sync::{Condvar, Mutex};

/// Atomic integers (modeled under `--cfg steady_loom`).
pub mod atomic {
    #[cfg(not(steady_loom))]
    pub use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[cfg(steady_loom)]
    pub use loom::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
}
