//! `steady-sched`: pluggable scheduler subsystem for the serving core.
//!
//! The engine hands this crate an opaque work-item type and a set of
//! [`WorkerHooks`]; the crate decides *which thread runs which task when*.
//! Work is admitted through three strict [priority lanes](lane::Lane)
//! (demand > revalidation > prefetch) with per-task deadlines and
//! cooperative cancellation, and drained by one of two [`Scheduler`]
//! implementations:
//!
//! * [`ThreadPerWorker`] — the classic pool: each worker blocks on the
//!   shared lane injector and runs one task at a time.  This is the
//!   engine's historical behaviour, extracted behind the trait.
//! * [`WorkStealing`] — an executor-backed pool: each task is spawned on
//!   the offline `async-executor` shim, workers keep per-worker deques of
//!   demand batches and woken runnables, and idle workers steal the oldest
//!   task from a busy sibling before sleeping.
//!
//! Both implementations pull from the same [`lane::LaneQueues`], so lane
//! priority, deadlines, cancellation and the background [`lane::IdleLatch`]
//! behave identically; only the dispatch strategy differs.  All
//! synchronization goes through [`sync`], which swaps to loom-modeled
//! primitives under `--cfg steady_loom` for the model-check suite.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod deque;
pub mod lane;
pub mod sync;
mod thread_per_worker;
mod work_stealing;

use std::sync::Arc;
use std::time::Duration;

pub use lane::{CancelToken, Lane, LaneCounters, LaneTask, Popped, LANES};
pub use thread_per_worker::ThreadPerWorker;
pub use work_stealing::WorkStealing;

/// How long an idle worker parks on the lane condvar before re-polling.
/// Bounds both shutdown latency and steal latency.
pub const IDLE_POLL: Duration = Duration::from_millis(1);

/// Source of monotonic clock readings (nanoseconds), supplied by the
/// engine so deadlines and wait histograms share its (possibly manual)
/// clock.
pub type NowFn = Arc<dyn Fn() -> u64 + Send + Sync>;

/// What the scheduler calls back into when a task reaches a worker.  The
/// engine implements this once; both pools drive it.
///
/// `run` executes on a scheduler worker thread and may block (a cold solve
/// does).  Pools contain panics at this boundary, so a panicking task never
/// takes down a worker — but hook implementations are still expected to do
/// their own `catch_unwind` bookkeeping where replies must be delivered.
pub trait WorkerHooks<T>: Send + Sync + 'static {
    /// Run a live task on worker `worker`.
    fn run(&self, worker: usize, task: LaneTask<T>);

    /// A task's deadline passed while it was queued; it will never run.
    /// Default: drop it.
    fn timed_out(&self, worker: usize, task: LaneTask<T>) {
        let _ = (worker, task);
    }

    /// A task was cancelled while it was queued; it will never run.
    /// Default: drop it.
    fn cancelled(&self, worker: usize, task: LaneTask<T>) {
        let _ = (worker, task);
    }
}

/// A scheduling strategy: turns worker count + hooks + clock into a running
/// pool.
pub trait Scheduler<T: Send + 'static>: Send + Sync {
    /// Stable name (matches [`SchedulerKind::name`]).
    fn name(&self) -> &'static str;

    /// Spawns the pool's worker threads and returns its control handle.
    fn start(
        &self,
        workers: usize,
        hooks: Arc<dyn WorkerHooks<T>>,
        now: NowFn,
    ) -> Box<dyn Running<T>>;
}

/// Control handle for a started pool.
pub trait Running<T: Send + 'static>: Send + Sync {
    /// Enqueues a task on its lane.  Returns `false` (dropping the task)
    /// once the pool is shut down.
    fn submit(&self, task: LaneTask<T>) -> bool;

    /// Snapshot of per-lane depths and event counters.
    fn counters(&self) -> LaneCounters;

    /// Cancels every task still queued on `lane`; returns how many.
    fn cancel_lane(&self, lane: Lane) -> usize;

    /// Background (revalidation + prefetch) tasks scheduled but not yet
    /// finished, including any currently running.
    fn backlog(&self) -> usize;

    /// Blocks until all background tasks finish or `timeout` elapses;
    /// returns whether the pool went background-idle.
    fn await_background_idle(&self, timeout: Duration) -> bool;

    /// Closes the lanes (dropping queued background work), drains queued
    /// demand work, and joins the worker threads.  Idempotent.
    fn shutdown(&self);
}

/// Which [`Scheduler`] implementation to run — the engine's configuration
/// surface (`ServiceConfig::scheduler`, `--scheduler` on the CLIs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerKind {
    /// The classic blocking pool (default; historical engine behaviour).
    #[default]
    ThreadPerWorker,
    /// The executor-backed work-stealing pool.
    WorkStealing,
}

impl SchedulerKind {
    /// Parses a CLI spelling (`thread-per-worker`/`tpw`,
    /// `work-stealing`/`ws`).
    pub fn parse(text: &str) -> Option<SchedulerKind> {
        match text {
            "thread-per-worker" | "tpw" => Some(SchedulerKind::ThreadPerWorker),
            "work-stealing" | "ws" => Some(SchedulerKind::WorkStealing),
            _ => None,
        }
    }

    /// Stable name, also the accepted CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            SchedulerKind::ThreadPerWorker => "thread-per-worker",
            SchedulerKind::WorkStealing => "work-stealing",
        }
    }

    /// Instantiates the corresponding [`Scheduler`] with default tuning.
    pub fn build<T: Send + 'static>(self) -> Box<dyn Scheduler<T>> {
        match self {
            SchedulerKind::ThreadPerWorker => Box::new(ThreadPerWorker),
            SchedulerKind::WorkStealing => Box::new(WorkStealing::default()),
        }
    }
}

#[cfg(all(test, not(steady_loom)))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct CountingHooks {
        ran: AtomicU64,
        timed_out: AtomicU64,
        cancelled: AtomicU64,
    }

    impl CountingHooks {
        fn new() -> Arc<Self> {
            Arc::new(CountingHooks {
                ran: AtomicU64::new(0),
                timed_out: AtomicU64::new(0),
                cancelled: AtomicU64::new(0),
            })
        }
    }

    impl WorkerHooks<u64> for CountingHooks {
        fn run(&self, _worker: usize, task: LaneTask<u64>) {
            // relaxed: test-only counter.
            self.ran.fetch_add(task.payload, Ordering::Relaxed);
        }
        fn timed_out(&self, _worker: usize, _task: LaneTask<u64>) {
            // relaxed: test-only counter.
            self.timed_out.fetch_add(1, Ordering::Relaxed);
        }
        fn cancelled(&self, _worker: usize, _task: LaneTask<u64>) {
            // relaxed: test-only counter.
            self.cancelled.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn wall_now() -> NowFn {
        let epoch = std::time::Instant::now();
        Arc::new(move || epoch.elapsed().as_nanos() as u64)
    }

    fn exercise(kind: SchedulerKind) {
        let hooks = CountingHooks::new();
        let pool = kind.build::<u64>().start(3, hooks.clone(), wall_now());
        let mut expected = 0u64;
        for i in 1..=50u64 {
            let lane = match i % 3 {
                0 => Lane::Demand,
                1 => Lane::Revalidation,
                _ => Lane::Prefetch,
            };
            expected += i;
            assert!(pool.submit(LaneTask::new(i, lane, 0)));
        }
        assert!(pool.await_background_idle(Duration::from_secs(10)));
        pool.shutdown();
        assert!(!pool.submit(LaneTask::new(1, Lane::Demand, 0)));
        assert_eq!(hooks.ran.load(Ordering::Relaxed), expected);
        assert_eq!(hooks.timed_out.load(Ordering::Relaxed), 0);
        let counters = pool.counters();
        assert_eq!(counters.popped.iter().sum::<u64>(), 50);
        assert_eq!(counters.depth, [0, 0, 0]);
    }

    #[test]
    fn thread_per_worker_runs_every_lane() {
        exercise(SchedulerKind::ThreadPerWorker);
    }

    #[test]
    fn work_stealing_runs_every_lane() {
        exercise(SchedulerKind::WorkStealing);
    }

    #[test]
    fn cancelled_prefetch_reaches_the_cancel_hook() {
        for kind in [SchedulerKind::ThreadPerWorker, SchedulerKind::WorkStealing] {
            let hooks = CountingHooks::new();
            // Zero workers: tasks stay queued, so cancellation is
            // deterministic; a late-started worker must observe it.
            let pool = kind.build::<u64>().start(0, hooks.clone(), wall_now());
            let task = LaneTask::new(7, Lane::Prefetch, 0);
            let token = task.cancel.clone();
            assert!(pool.submit(task));
            token.cancel();
            assert_eq!(pool.backlog(), 1);
            assert_eq!(pool.cancel_lane(Lane::Prefetch), 1);
            assert_eq!(pool.backlog(), 0);
            pool.shutdown();
            assert_eq!(hooks.ran.load(Ordering::Relaxed), 0);
            assert_eq!(pool.counters().prefetch_cancelled(), 1);
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [SchedulerKind::ThreadPerWorker, SchedulerKind::WorkStealing] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("tpw"), Some(SchedulerKind::ThreadPerWorker));
        assert_eq!(SchedulerKind::parse("ws"), Some(SchedulerKind::WorkStealing));
        assert_eq!(SchedulerKind::parse("fifo"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::ThreadPerWorker);
    }
}
