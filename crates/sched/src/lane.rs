//! Priority lanes: the shared admission queues both schedulers pull from.
//!
//! Three lanes — demand > revalidation > prefetch — are first-class queues
//! with strict priority: a worker never takes revalidation work while demand
//! work is queued, and never takes prefetch work while either of the other
//! lanes has work.  Every queued task carries an enqueue timestamp, an
//! optional deadline, and a [`CancelToken`] for cooperative cancellation;
//! [`LaneQueues::vet`] turns an expired or cancelled task into a terminal
//! [`Popped`] verdict *before* it reaches a worker, so cancelled prefetch
//! work never runs and demand work that missed its deadline is shed instead
//! of solved.
//!
//! The module also owns the [`IdleLatch`], the background-drain barrier that
//! used to live inside the engine's worker loop as `PrefetchIdle`: it counts
//! scheduled-but-unfinished background tasks (revalidation + prefetch) so
//! tests and benchmarks can await quiescence deterministically.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{Condvar, Mutex};

/// The three priority lanes, in descending priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lane {
    /// Interactive queries a client is blocked on.  Highest priority; the
    /// only lane whose tasks may carry deadlines that shed work.
    Demand = 0,
    /// Proactive refresh of entries nearing their TTL.  Runs only when no
    /// demand work is queued.
    Revalidation = 1,
    /// Speculative warm-up solves.  Lowest priority, first to be cancelled.
    Prefetch = 2,
}

/// All lanes, in pop (descending-priority) order.
pub const LANES: [Lane; 3] = [Lane::Demand, Lane::Revalidation, Lane::Prefetch];

impl Lane {
    /// Queue index of this lane (0 = highest priority).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable lower-case name, used for metrics and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Lane::Demand => "demand",
            Lane::Revalidation => "revalidation",
            Lane::Prefetch => "prefetch",
        }
    }

    /// Whether tasks in this lane count toward the background [`IdleLatch`].
    pub fn is_background(self) -> bool {
        !matches!(self, Lane::Demand)
    }
}

/// Cooperative cancellation flag shared between a queued task and whoever
/// scheduled it.  Cancellation is a one-way latch: once set, the task is
/// vetted out at pop time (or at drain time) and its payload is dropped
/// without running.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicU64>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken { flag: Arc::new(AtomicU64::new(0)) }
    }

    /// Latches the token; the associated task will never run.
    pub fn cancel(&self) {
        // relaxed: a one-way latch read at pop time under the lane mutex,
        // which already orders the flag with the queue contents; a racing
        // reader that misses the store only runs a task that was still
        // legitimately schedulable when it was popped.
        self.flag.store(1, Ordering::Relaxed);
    }

    /// Whether [`Self::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        // relaxed: see `cancel` — best-effort latch check.
        self.flag.load(Ordering::Relaxed) != 0
    }
}

/// A unit of work queued on a lane.
#[derive(Debug)]
pub struct LaneTask<T> {
    /// The scheduler-opaque payload (the engine's work item).
    pub payload: T,
    /// Which lane the task was admitted on.
    pub lane: Lane,
    /// Clock reading (nanoseconds) when the task was enqueued; used for
    /// per-lane wait histograms.
    pub enqueued_nanos: u64,
    /// Absolute clock deadline (nanoseconds); a task popped at or after its
    /// deadline is shed via [`Popped::TimedOut`] instead of run.
    pub deadline_nanos: Option<u64>,
    /// Cooperative cancellation latch for this task.
    pub cancel: CancelToken,
}

impl<T> LaneTask<T> {
    /// Creates a task with no deadline and a fresh cancel token.
    pub fn new(payload: T, lane: Lane, enqueued_nanos: u64) -> Self {
        LaneTask { payload, lane, enqueued_nanos, deadline_nanos: None, cancel: CancelToken::new() }
    }

    /// Sets an absolute deadline (clock nanoseconds).
    pub fn with_deadline(mut self, deadline_nanos: u64) -> Self {
        self.deadline_nanos = Some(deadline_nanos);
        self
    }

    /// Nanoseconds the task has been waiting, given the current clock.
    pub fn waited_nanos(&self, now: u64) -> u64 {
        now.saturating_sub(self.enqueued_nanos)
    }
}

/// Verdict of a pop (or of vetting a stolen task).
#[derive(Debug)]
pub enum Popped<T> {
    /// A live task: run it.
    Task(LaneTask<T>),
    /// The task's deadline passed before a worker reached it; shed it.
    TimedOut(LaneTask<T>),
    /// The task's [`CancelToken`] was latched; drop it without running.
    Cancelled(LaneTask<T>),
    /// No work queued right now.
    Empty,
    /// The queues are closed and fully drained; the worker should exit.
    Closed,
}

/// Monotone event counters plus instantaneous depths for the three lanes,
/// indexed by [`Lane::index`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LaneCounters {
    /// Tasks currently queued per lane (instantaneous gauge).
    pub depth: [u64; 3],
    /// Live tasks handed to workers per lane.
    pub popped: [u64; 3],
    /// Tasks vetted out (cancelled, or timed out on a background lane) or
    /// dropped at close, per lane.
    pub cancelled: [u64; 3],
    /// Demand tasks shed because their deadline passed while queued.
    pub demand_timeouts: u64,
    /// Successful steals from a sibling worker (work-stealing pool only).
    pub steals: u64,
}

impl LaneCounters {
    /// Prefetch tasks that were cancelled or dropped before running.
    pub fn prefetch_cancelled(&self) -> u64 {
        self.cancelled[Lane::Prefetch.index()]
    }
}

struct LaneState<T> {
    queues: [VecDeque<LaneTask<T>>; 3],
    closed: bool,
}

/// The shared priority-lane injector both schedulers pull from.
///
/// A single mutex (`lanes`, rank 10) guards all three queues so the
/// priority invariant — never pop a lower lane while a higher lane has work
/// — holds atomically.  Background pushes bump the [`IdleLatch`] while the
/// lane state is still held (rank 10 → 25), so the latch can never report
/// idle while a background task sits queued.
pub struct LaneQueues<T> {
    lanes: Mutex<LaneState<T>>,
    work: Condvar,
    idle: Arc<IdleLatch>,
    popped: [AtomicU64; 3],
    cancelled: [AtomicU64; 3],
    demand_timeouts: AtomicU64,
}

impl<T> Default for LaneQueues<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LaneQueues<T> {
    /// Creates an empty, open set of lanes.
    pub fn new() -> Self {
        LaneQueues {
            lanes: Mutex::new(LaneState {
                queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                closed: false,
            }),
            work: Condvar::new(),
            idle: Arc::new(IdleLatch::new()),
            popped: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            cancelled: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            demand_timeouts: AtomicU64::new(0),
        }
    }

    /// The background-drain latch tracking scheduled-but-unfinished
    /// revalidation and prefetch tasks.
    pub fn idle_latch(&self) -> &IdleLatch {
        &self.idle
    }

    /// Enqueues a task on its lane.  Returns `false` (dropping the task) if
    /// the queues are closed.
    pub fn push(&self, task: LaneTask<T>) -> bool {
        let background = task.lane.is_background();
        {
            let mut lanes = self.lanes.lock();
            if lanes.closed {
                return false;
            }
            lanes.queues[task.lane.index()].push_back(task);
            if background {
                self.idle.add(1);
            }
        }
        self.work.notify_one();
        true
    }

    /// Pops the front task of the highest-priority non-empty lane and vets
    /// it against the clock reading `now`.
    pub fn pop(&self, now: u64) -> Popped<T> {
        self.pop_with_overflow(now, 0).0
    }

    /// [`Self::pop`] that additionally grabs up to `extra` more *demand*
    /// tasks (unvetted — the taker vets them at dequeue) when the popped
    /// task itself came off the demand lane.  The work-stealing pool uses
    /// the overflow batch to seed its per-worker deques with stealable work.
    pub fn pop_with_overflow(&self, now: u64, extra: usize) -> (Popped<T>, Vec<LaneTask<T>>) {
        let mut lanes = self.lanes.lock();
        for lane in LANES {
            if let Some(task) = lanes.queues[lane.index()].pop_front() {
                let mut batch = Vec::new();
                if lane == Lane::Demand {
                    let queue = &mut lanes.queues[Lane::Demand.index()];
                    while batch.len() < extra {
                        match queue.pop_front() {
                            Some(more) => batch.push(more),
                            None => break,
                        }
                    }
                }
                drop(lanes);
                return (self.vet(task, now), batch);
            }
        }
        let closed = lanes.closed;
        drop(lanes);
        (if closed { Popped::Closed } else { Popped::Empty }, Vec::new())
    }

    /// Turns a dequeued task into its verdict: cancelled and past-deadline
    /// tasks become terminal [`Popped`] variants (counted), live tasks are
    /// returned to run.  Also used by the work-stealing pool on tasks taken
    /// from per-worker deques, so stolen work obeys the same contract.
    pub fn vet(&self, task: LaneTask<T>, now: u64) -> Popped<T> {
        let lane = task.lane.index();
        if task.cancel.is_cancelled() {
            // relaxed: monotone report-only counter.
            self.cancelled[lane].fetch_add(1, Ordering::Relaxed);
            return Popped::Cancelled(task);
        }
        if let Some(deadline) = task.deadline_nanos {
            if now >= deadline {
                if task.lane == Lane::Demand {
                    // relaxed: monotone report-only counter.
                    self.demand_timeouts.fetch_add(1, Ordering::Relaxed);
                } else {
                    // relaxed: monotone report-only counter; an expired
                    // background task is speculative work that never ran,
                    // so it counts with the cancellations.
                    self.cancelled[lane].fetch_add(1, Ordering::Relaxed);
                }
                return Popped::TimedOut(task);
            }
        }
        // relaxed: monotone report-only counter.
        self.popped[lane].fetch_add(1, Ordering::Relaxed);
        Popped::Task(task)
    }

    /// Blocks until work may be available, the queues close, or `timeout`
    /// elapses.  Returns immediately if a lane is already non-empty.
    pub fn wait_for_work(&self, timeout: Duration) {
        let lanes = self.lanes.lock();
        if lanes.closed || lanes.queues.iter().any(|q| !q.is_empty()) {
            return;
        }
        let (_reacquired, _timed_out) = self.work.wait_timeout(lanes, timeout);
    }

    /// Latches every queued task on `lane` as cancelled and drops it from
    /// the queue, returning how many were cancelled.  In-flight tasks are
    /// unaffected (cancellation is cooperative); their tokens — shared with
    /// whoever scheduled them — stay valid.
    pub fn cancel_lane(&self, lane: Lane) -> usize {
        let drained: Vec<LaneTask<T>> = {
            let mut lanes = self.lanes.lock();
            let dropped: Vec<LaneTask<T>> = lanes.queues[lane.index()].drain(..).collect();
            if lane.is_background() {
                self.idle.finish_many(dropped.len());
            }
            dropped
        };
        let count = drained.len();
        // relaxed: monotone report-only counter.
        self.cancelled[lane.index()].fetch_add(count as u64, Ordering::Relaxed);
        for task in &drained {
            task.cancel.cancel();
        }
        count
    }

    /// Closes the queues: queued revalidation and prefetch tasks are
    /// cancelled and dropped (returning the count), demand tasks stay
    /// queued for workers to drain, and once the demand lane empties
    /// [`Self::pop`] returns [`Popped::Closed`].  Further pushes fail.
    pub fn close(&self) -> usize {
        let mut dropped = Vec::new();
        {
            let mut lanes = self.lanes.lock();
            if !lanes.closed {
                lanes.closed = true;
                for lane in [Lane::Revalidation, Lane::Prefetch] {
                    let drained = lanes.queues[lane.index()].drain(..);
                    dropped.extend(drained.map(|t| (lane, t)));
                }
                self.idle.finish_many(dropped.len());
            }
        }
        self.work.notify_all();
        for (lane, task) in &dropped {
            // relaxed: monotone report-only counter.
            self.cancelled[lane.index()].fetch_add(1, Ordering::Relaxed);
            task.cancel.cancel();
        }
        dropped.len()
    }

    /// Instantaneous queue depth per lane.
    pub fn depths(&self) -> [u64; 3] {
        let lanes = self.lanes.lock();
        [lanes.queues[0].len() as u64, lanes.queues[1].len() as u64, lanes.queues[2].len() as u64]
    }

    /// Snapshot of depths and event counters.  `steals` is always zero
    /// here; the work-stealing pool overlays its own count.
    pub fn counters(&self) -> LaneCounters {
        let depth = self.depths();
        let read = |a: &AtomicU64| {
            // relaxed: monotone report-only counter.
            a.load(Ordering::Relaxed)
        };
        LaneCounters {
            depth,
            popped: [read(&self.popped[0]), read(&self.popped[1]), read(&self.popped[2])],
            cancelled: [
                read(&self.cancelled[0]),
                read(&self.cancelled[1]),
                read(&self.cancelled[2]),
            ],
            demand_timeouts: read(&self.demand_timeouts),
            steals: 0,
        }
    }
}

/// Counts scheduled-but-unfinished background (revalidation + prefetch)
/// tasks, so callers can await quiescence.  Extracted from the engine's old
/// `PrefetchIdle`, now shared by both schedulers: the lanes bump it on every
/// background push (under the lane lock), and workers — or the drain paths
/// in [`LaneQueues::close`] / [`LaneQueues::cancel_lane`] — retire entries
/// as tasks reach a terminal state (ran, timed out, cancelled, or dropped).
pub struct IdleLatch {
    pending: Mutex<usize>,
    drained: Condvar,
}

impl Default for IdleLatch {
    fn default() -> Self {
        Self::new()
    }
}

impl IdleLatch {
    /// Creates an idle (zero-pending) latch.
    pub fn new() -> Self {
        IdleLatch { pending: Mutex::new(0), drained: Condvar::new() }
    }

    /// Registers `n` newly scheduled background tasks.
    pub fn add(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut pending = self.pending.lock();
        *pending += n;
    }

    /// Retires one background task (any terminal state counts).
    pub fn finish_one(&self) {
        self.finish_many(1);
    }

    /// Retires `n` background tasks at once (used by bulk drains).
    pub fn finish_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        let drained = {
            let mut pending = self.pending.lock();
            *pending = pending.saturating_sub(n);
            *pending == 0
        };
        if drained {
            self.drained.notify_all();
        }
    }

    /// Background tasks scheduled but not yet retired.
    pub fn backlog(&self) -> usize {
        *self.pending.lock()
    }

    /// Blocks until the backlog drains to zero or `timeout` elapses;
    /// returns whether the latch went idle.
    pub fn await_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut pending = self.pending.lock();
        while *pending > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (reacquired, _timed_out) = self.drained.wait_timeout(pending, deadline - now);
            pending = reacquired;
        }
        true
    }
}

#[cfg(all(test, not(steady_loom)))]
mod tests {
    use super::*;

    #[test]
    fn pop_respects_strict_lane_priority() {
        let lanes: LaneQueues<u32> = LaneQueues::new();
        assert!(lanes.push(LaneTask::new(3, Lane::Prefetch, 0)));
        assert!(lanes.push(LaneTask::new(2, Lane::Revalidation, 0)));
        assert!(lanes.push(LaneTask::new(1, Lane::Demand, 0)));
        let order: Vec<u32> = (0..3)
            .map(|_| match lanes.pop(10) {
                Popped::Task(t) => t.payload,
                other => panic!("expected task, got {other:?}"),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
        assert!(matches!(lanes.pop(10), Popped::Empty));
    }

    #[test]
    fn expired_demand_task_times_out_and_counts() {
        let lanes: LaneQueues<&str> = LaneQueues::new();
        lanes.push(LaneTask::new("late", Lane::Demand, 0).with_deadline(100));
        match lanes.pop(100) {
            Popped::TimedOut(t) => assert_eq!(t.payload, "late"),
            other => panic!("expected timeout, got {other:?}"),
        }
        assert_eq!(lanes.counters().demand_timeouts, 1);
        assert_eq!(lanes.counters().popped, [0, 0, 0]);
    }

    #[test]
    fn cancelled_task_is_vetted_out() {
        let lanes: LaneQueues<&str> = LaneQueues::new();
        let task = LaneTask::new("doomed", Lane::Prefetch, 0);
        let token = task.cancel.clone();
        lanes.push(task);
        assert_eq!(lanes.idle_latch().backlog(), 1);
        token.cancel();
        assert!(matches!(lanes.pop(0), Popped::Cancelled(_)));
        assert_eq!(lanes.counters().prefetch_cancelled(), 1);
    }

    #[test]
    fn cancel_lane_drains_queued_prefetch_and_retires_the_latch() {
        let lanes: LaneQueues<u32> = LaneQueues::new();
        for i in 0..4 {
            lanes.push(LaneTask::new(i, Lane::Prefetch, 0));
        }
        lanes.push(LaneTask::new(99, Lane::Demand, 0));
        assert_eq!(lanes.idle_latch().backlog(), 4);
        assert_eq!(lanes.cancel_lane(Lane::Prefetch), 4);
        assert_eq!(lanes.idle_latch().backlog(), 0);
        assert_eq!(lanes.counters().prefetch_cancelled(), 4);
        assert!(matches!(lanes.pop(0), Popped::Task(t) if t.payload == 99));
    }

    #[test]
    fn close_keeps_demand_and_drops_background() {
        let lanes: LaneQueues<u32> = LaneQueues::new();
        lanes.push(LaneTask::new(1, Lane::Demand, 0));
        lanes.push(LaneTask::new(2, Lane::Revalidation, 0));
        lanes.push(LaneTask::new(3, Lane::Prefetch, 0));
        assert_eq!(lanes.close(), 2);
        assert_eq!(lanes.idle_latch().backlog(), 0);
        assert!(!lanes.push(LaneTask::new(4, Lane::Demand, 0)));
        assert!(matches!(lanes.pop(0), Popped::Task(t) if t.payload == 1));
        assert!(matches!(lanes.pop(0), Popped::Closed));
    }

    #[test]
    fn overflow_batch_only_grabs_demand_tasks() {
        let lanes: LaneQueues<u32> = LaneQueues::new();
        for i in 0..4 {
            lanes.push(LaneTask::new(i, Lane::Demand, 0));
        }
        lanes.push(LaneTask::new(100, Lane::Prefetch, 0));
        let (popped, batch) = lanes.pop_with_overflow(0, 2);
        assert!(matches!(popped, Popped::Task(t) if t.payload == 0));
        let grabbed: Vec<u32> = batch.into_iter().map(|t| t.payload).collect();
        assert_eq!(grabbed, vec![1, 2]);
        // The prefetch task must not ride along in a demand batch.
        assert_eq!(lanes.depths(), [1, 0, 1]);
    }

    #[test]
    fn idle_latch_blocks_until_drained() {
        let latch = Arc::new(IdleLatch::new());
        latch.add(2);
        assert!(!latch.await_idle(Duration::from_millis(10)));
        let latch2 = Arc::clone(&latch);
        let handle = std::thread::spawn(move || {
            latch2.finish_one();
            latch2.finish_one();
        });
        assert!(latch.await_idle(Duration::from_secs(5)));
        handle.join().unwrap();
        assert_eq!(latch.backlog(), 0);
    }
}
