//! Heterogeneous platform graphs.
//!
//! The target platform of the paper is modeled as an edge-weighted directed
//! graph `G = (V, E, c)` (§2): each edge `e = (i, j)` carries the time `c(e)`
//! needed to transfer one unit of message from `P_i` to `P_j`.  The graph may
//! contain cycles and multiple routes; edges are directed and `c(i, j)` need
//! not equal `c(j, i)`.  Nodes additionally carry a compute speed used by the
//! reduce formulation (time to process a task of cost `w` on `P_i` is
//! `w / speed(P_i)`); routers have speed 0 and never compute.
//!
//! The one-port, full-overlap operation model itself lives in the LP
//! formulations (`steady-core`) and in the simulator (`steady-sim`); this
//! crate only describes the static platform.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;

use steady_rational::Ratio;

/// Identifier of a node (processor or router) of a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Index of the node in the platform's node list.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a directed edge of a [`Platform`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// Index of the edge in the platform's edge list.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A processor or router.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Human-readable name (used in dumps and error messages).
    pub name: String,
    /// Compute speed: a node processes a task of cost `w` in `w / speed`
    /// time-units.  Zero means the node is a pure router and cannot compute.
    pub speed: Ratio,
}

impl Node {
    /// `true` if this node can execute computational tasks.
    pub fn can_compute(&self) -> bool {
        self.speed.is_positive()
    }
}

/// A directed communication link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source endpoint.
    pub from: NodeId,
    /// Destination endpoint.
    pub to: NodeId,
    /// Time needed to transfer one unit of message across this link.
    pub cost: Ratio,
}

/// Errors raised when building or validating a platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// An edge refers to a node that does not exist.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// An edge has a non-positive transfer cost.
    NonPositiveCost {
        /// The offending edge id.
        edge: EdgeId,
    },
    /// A node has a negative speed.
    NegativeSpeed {
        /// The offending node id.
        node: NodeId,
    },
    /// A self-loop edge was declared.
    SelfLoop {
        /// The offending node id.
        node: NodeId,
    },
    /// Parsing a textual platform description failed.
    Parse {
        /// Line number (1-based) where the error occurred.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::UnknownNode { node } => write!(f, "unknown node {node}"),
            PlatformError::NonPositiveCost { edge } => {
                write!(f, "edge #{} has a non-positive cost", edge.0)
            }
            PlatformError::NegativeSpeed { node } => {
                write!(f, "node {node} has a negative speed")
            }
            PlatformError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            PlatformError::Parse { line, reason } => {
                write!(f, "parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// An edge-weighted directed platform graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Platform {
    nodes: Vec<Node>,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<EdgeId>>,
    in_adj: Vec<Vec<EdgeId>>,
}

impl Platform {
    /// Creates an empty platform.
    pub fn new() -> Self {
        Platform::default()
    }

    /// Adds a compute node with the given name and speed.
    pub fn add_node(&mut self, name: impl Into<String>, speed: Ratio) -> NodeId {
        self.nodes.push(Node { name: name.into(), speed });
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a pure router (speed 0).
    pub fn add_router(&mut self, name: impl Into<String>) -> NodeId {
        self.add_node(name, Ratio::zero())
    }

    /// Adds a directed edge `from -> to` with transfer cost `cost`.
    ///
    /// # Panics
    /// Panics if either endpoint does not exist or if `from == to`.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, cost: Ratio) -> EdgeId {
        assert!(from.0 < self.nodes.len(), "unknown source node {from}");
        assert!(to.0 < self.nodes.len(), "unknown destination node {to}");
        assert_ne!(from, to, "self-loops are not allowed");
        self.edges.push(Edge { from, to, cost });
        let id = EdgeId(self.edges.len() - 1);
        self.out_adj[from.0].push(id);
        self.in_adj[to.0].push(id);
        id
    }

    /// Adds a symmetric link: two directed edges with the same cost.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, cost: Ratio) -> (EdgeId, EdgeId) {
        let e1 = self.add_edge(a, b, cost.clone());
        let e2 = self.add_edge(b, a, cost);
        (e1, e2)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Node data.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Edge data.
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// Iterates over node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterates over edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Ids of nodes that can compute (speed > 0).
    pub fn compute_nodes(&self) -> Vec<NodeId> {
        self.node_ids().filter(|&n| self.node(n).can_compute()).collect()
    }

    /// Outgoing edges of `node`.
    pub fn out_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.out_adj[node.0]
    }

    /// Incoming edges of `node`.
    pub fn in_edges(&self, node: NodeId) -> &[EdgeId] {
        &self.in_adj[node.0]
    }

    /// First edge `from -> to`, if any.
    pub fn edge_between(&self, from: NodeId, to: NodeId) -> Option<EdgeId> {
        self.out_adj[from.0].iter().copied().find(|&e| self.edges[e.0].to == to)
    }

    /// Structural and numerical validation of the platform.
    pub fn validate(&self) -> Result<(), PlatformError> {
        for (i, n) in self.nodes.iter().enumerate() {
            if n.speed.is_negative() {
                return Err(PlatformError::NegativeSpeed { node: NodeId(i) });
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if e.from.0 >= self.nodes.len() {
                return Err(PlatformError::UnknownNode { node: e.from });
            }
            if e.to.0 >= self.nodes.len() {
                return Err(PlatformError::UnknownNode { node: e.to });
            }
            if e.from == e.to {
                return Err(PlatformError::SelfLoop { node: e.from });
            }
            if !e.cost.is_positive() {
                return Err(PlatformError::NonPositiveCost { edge: EdgeId(i) });
            }
        }
        Ok(())
    }

    /// Set of nodes reachable from `from` (including `from` itself).
    pub fn reachable_from(&self, from: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(from);
        queue.push_back(from);
        while let Some(n) = queue.pop_front() {
            for &e in &self.out_adj[n.0] {
                let next = self.edges[e.0].to;
                if seen.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        seen
    }

    /// `true` iff there is a directed path `from -> to`.
    pub fn is_reachable(&self, from: NodeId, to: NodeId) -> bool {
        self.reachable_from(from).contains(&to)
    }

    /// Single-source shortest paths by total transfer cost (Dijkstra).
    ///
    /// Returns, for every node, `Some((distance, predecessor_edge))` where
    /// `predecessor_edge` is `None` for the source itself, or `None` when the
    /// node is unreachable.
    pub fn shortest_paths(&self, source: NodeId) -> Vec<Option<(Ratio, Option<EdgeId>)>> {
        #[derive(PartialEq, Eq)]
        struct Entry {
            dist: Ratio,
            node: NodeId,
        }
        impl Ord for Entry {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for a min-heap.
                other.dist.cmp(&self.dist).then(other.node.cmp(&self.node))
            }
        }
        impl PartialOrd for Entry {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut result: Vec<Option<(Ratio, Option<EdgeId>)>> = vec![None; self.nodes.len()];
        let mut heap = BinaryHeap::new();
        result[source.0] = Some((Ratio::zero(), None));
        heap.push(Entry { dist: Ratio::zero(), node: source });
        while let Some(Entry { dist, node }) = heap.pop() {
            match &result[node.0] {
                Some((best, _)) if *best < dist => continue,
                _ => {}
            }
            for &e in &self.out_adj[node.0] {
                let edge = &self.edges[e.0];
                let nd = &dist + &edge.cost;
                let better = match &result[edge.to.0] {
                    None => true,
                    Some((cur, _)) => nd < *cur,
                };
                if better {
                    result[edge.to.0] = Some((nd.clone(), Some(e)));
                    heap.push(Entry { dist: nd, node: edge.to });
                }
            }
        }
        result
    }

    /// Shortest path (sequence of edges) from `from` to `to`, if one exists.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<EdgeId>> {
        let table = self.shortest_paths(from);
        table[to.0].as_ref()?;
        let mut path = Vec::new();
        let mut cur = to;
        while cur != from {
            let (_, pred) = table[cur.0].as_ref()?;
            let e = (*pred)?;
            path.push(e);
            cur = self.edges[e.0].from;
        }
        path.reverse();
        Some(path)
    }

    /// Diameter-like bound used by the steady-state start-up analysis (§3.4):
    /// the maximum over reachable pairs of the hop count of a shortest path.
    pub fn max_hop_diameter(&self) -> usize {
        let mut best = 0;
        for s in self.node_ids() {
            // BFS by hops.
            let mut dist = vec![usize::MAX; self.num_nodes()];
            dist[s.0] = 0;
            let mut q = VecDeque::new();
            q.push_back(s);
            while let Some(n) = q.pop_front() {
                for &e in &self.out_adj[n.0] {
                    let t = self.edges[e.0].to;
                    if dist[t.0] == usize::MAX {
                        dist[t.0] = dist[n.0] + 1;
                        q.push_back(t);
                    }
                }
            }
            for &d in &dist {
                if d != usize::MAX && d > best {
                    best = d;
                }
            }
        }
        best
    }

    /// Serializes the platform to the simple textual format understood by
    /// [`Platform::from_text`].
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for n in &self.nodes {
            out.push_str(&format!("node {} {}\n", n.name.replace(' ', "_"), n.speed));
        }
        for e in &self.edges {
            out.push_str(&format!("edge {} {} {}\n", e.from.0, e.to.0, e.cost));
        }
        out
    }

    /// Parses a platform from the textual format produced by [`Platform::to_text`]:
    /// one `node <name> <speed>` or `edge <from-index> <to-index> <cost>`
    /// declaration per line; blank lines and `#` comments are ignored.
    pub fn from_text(text: &str) -> Result<Platform, PlatformError> {
        let mut platform = Platform::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = lineno + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let kind = parts.next().unwrap();
            let err = |reason: &str| PlatformError::Parse { line: lineno, reason: reason.into() };
            match kind {
                "node" => {
                    let name = parts.next().ok_or_else(|| err("missing node name"))?;
                    let speed: Ratio = parts
                        .next()
                        .ok_or_else(|| err("missing node speed"))?
                        .parse()
                        .map_err(|_| err("invalid speed"))?;
                    platform.add_node(name, speed);
                }
                "edge" => {
                    let from: usize = parts
                        .next()
                        .ok_or_else(|| err("missing source"))?
                        .parse()
                        .map_err(|_| err("invalid source index"))?;
                    let to: usize = parts
                        .next()
                        .ok_or_else(|| err("missing destination"))?
                        .parse()
                        .map_err(|_| err("invalid destination index"))?;
                    let cost: Ratio = parts
                        .next()
                        .ok_or_else(|| err("missing cost"))?
                        .parse()
                        .map_err(|_| err("invalid cost"))?;
                    if from >= platform.num_nodes() {
                        return Err(PlatformError::UnknownNode { node: NodeId(from) });
                    }
                    if to >= platform.num_nodes() {
                        return Err(PlatformError::UnknownNode { node: NodeId(to) });
                    }
                    platform.add_edge(NodeId(from), NodeId(to), cost);
                }
                other => return Err(err(&format!("unknown declaration '{other}'"))),
            }
        }
        platform.validate()?;
        Ok(platform)
    }

    /// Returns the transposed platform: every edge `(i, j)` becomes `(j, i)`
    /// with the same cost; nodes, names and speeds are unchanged.
    ///
    /// Transposition turns a gather problem into a scatter problem on the
    /// reversed graph (the one-port roles of emission and reception swap), so
    /// `TP_gather(G) = TP_scatter(Gᵀ)`; `steady-core` relies on this duality.
    pub fn transpose(&self) -> Platform {
        let mut out = Platform::new();
        for n in &self.nodes {
            out.add_node(n.name.clone(), n.speed.clone());
        }
        for e in &self.edges {
            out.add_edge(e.to, e.from, e.cost.clone());
        }
        out
    }

    /// Builds the subgraph induced by `keep` (in the given order).
    ///
    /// Returns the new platform together with the mapping `old NodeId -> new
    /// NodeId` for the kept nodes; edges with at least one endpoint outside
    /// `keep` are dropped.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Platform, BTreeMap<NodeId, NodeId>) {
        let mut out = Platform::new();
        let mut map = BTreeMap::new();
        for &old in keep {
            let node = self.node(old);
            let new = out.add_node(node.name.clone(), node.speed.clone());
            map.insert(old, new);
        }
        for e in &self.edges {
            if let (Some(&from), Some(&to)) = (map.get(&e.from), map.get(&e.to)) {
                out.add_edge(from, to, e.cost.clone());
            }
        }
        (out, map)
    }

    /// `true` iff every node can reach every other node (strong connectivity).
    pub fn is_strongly_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let first = NodeId(0);
        if self.reachable_from(first).len() != self.num_nodes() {
            return false;
        }
        self.transpose().reachable_from(first).len() == self.num_nodes()
    }

    /// Total number of directed edges incident to `node` (in + out degree).
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_adj[node.0].len() + self.in_adj[node.0].len()
    }

    /// Graphviz DOT rendering (compute nodes are filled, routers are plain).
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph platform {\n");
        for (i, n) in self.nodes.iter().enumerate() {
            if n.can_compute() {
                out.push_str(&format!(
                    "  n{i} [label=\"{} (s={})\", style=filled, fillcolor=lightgray];\n",
                    n.name, n.speed
                ));
            } else {
                out.push_str(&format!("  n{i} [label=\"{}\"];\n", n.name));
            }
        }
        for e in &self.edges {
            out.push_str(&format!("  n{} -> n{} [label=\"{}\"];\n", e.from.0, e.to.0, e.cost));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    fn triangle() -> (Platform, NodeId, NodeId, NodeId) {
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        let b = p.add_node("b", rat(2, 1));
        let c = p.add_node("c", rat(3, 1));
        p.add_link(a, b, rat(1, 1));
        p.add_link(b, c, rat(2, 1));
        p.add_edge(a, c, rat(5, 1));
        (p, a, b, c)
    }

    #[test]
    fn build_and_query() {
        let (p, a, b, c) = triangle();
        assert_eq!(p.num_nodes(), 3);
        assert_eq!(p.num_edges(), 5);
        assert_eq!(p.node(a).name, "a");
        assert!(p.node(a).can_compute());
        assert_eq!(p.out_edges(a).len(), 2);
        assert_eq!(p.in_edges(c).len(), 2);
        assert!(p.edge_between(a, b).is_some());
        assert!(p.edge_between(c, a).is_none());
        assert_eq!(p.compute_nodes().len(), 3);
        assert!(p.validate().is_ok());
        let _ = format!("{a}");
        assert_eq!(p.edge(p.edge_between(b, c).unwrap()).cost, rat(2, 1));
    }

    #[test]
    fn routers_cannot_compute() {
        let mut p = Platform::new();
        let r = p.add_router("r0");
        assert!(!p.node(r).can_compute());
        assert!(p.compute_nodes().is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loop_panics() {
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        p.add_edge(a, a, rat(1, 1));
    }

    #[test]
    fn validation_catches_bad_cost() {
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        let b = p.add_node("b", rat(1, 1));
        p.add_edge(a, b, rat(0, 1));
        assert_eq!(p.validate(), Err(PlatformError::NonPositiveCost { edge: EdgeId(0) }));
        let mut p2 = Platform::new();
        p2.add_node("a", rat(-1, 1));
        assert_eq!(p2.validate(), Err(PlatformError::NegativeSpeed { node: NodeId(0) }));
    }

    #[test]
    fn reachability() {
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        let b = p.add_node("b", rat(1, 1));
        let c = p.add_node("c", rat(1, 1));
        p.add_edge(a, b, rat(1, 1));
        assert!(p.is_reachable(a, b));
        assert!(!p.is_reachable(b, a));
        assert!(!p.is_reachable(a, c));
        assert_eq!(p.reachable_from(a).len(), 2);
    }

    #[test]
    fn shortest_paths_prefer_cheap_routes() {
        let (p, a, _b, c) = triangle();
        // a -> c direct costs 5, via b costs 1 + 2 = 3.
        let path = p.shortest_path(a, c).unwrap();
        assert_eq!(path.len(), 2);
        let table = p.shortest_paths(a);
        assert_eq!(table[c.0].as_ref().unwrap().0, rat(3, 1));
        assert_eq!(table[a.0].as_ref().unwrap().0, rat(0, 1));
    }

    #[test]
    fn shortest_path_unreachable() {
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        let b = p.add_node("b", rat(1, 1));
        assert!(p.shortest_path(a, b).is_none());
        assert_eq!(p.max_hop_diameter(), 0);
    }

    #[test]
    fn hop_diameter() {
        let mut p = Platform::new();
        let nodes: Vec<_> = (0..5).map(|i| p.add_node(format!("n{i}"), rat(1, 1))).collect();
        for w in nodes.windows(2) {
            p.add_edge(w[0], w[1], rat(1, 1));
        }
        assert_eq!(p.max_hop_diameter(), 4);
    }

    #[test]
    fn text_roundtrip() {
        let (p, _, _, _) = triangle();
        let text = p.to_text();
        let parsed = Platform::from_text(&text).unwrap();
        assert_eq!(parsed, p);
    }

    #[test]
    fn text_parse_errors() {
        assert!(matches!(Platform::from_text("node a"), Err(PlatformError::Parse { line: 1, .. })));
        assert!(matches!(
            Platform::from_text("edge 0 1 1"),
            Err(PlatformError::UnknownNode { .. })
        ));
        assert!(matches!(Platform::from_text("bogus"), Err(PlatformError::Parse { .. })));
        // Comments and blank lines are fine.
        let p = Platform::from_text("# comment\n\nnode a 1\nnode b 2\nedge 0 1 1/2\n").unwrap();
        assert_eq!(p.num_nodes(), 2);
        assert_eq!(p.edge(EdgeId(0)).cost, rat(1, 2));
    }

    #[test]
    fn transpose_reverses_every_edge() {
        let (p, a, b, c) = triangle();
        let t = p.transpose();
        assert_eq!(t.num_nodes(), p.num_nodes());
        assert_eq!(t.num_edges(), p.num_edges());
        // The asymmetric edge a -> c becomes c -> a.
        assert!(p.edge_between(a, c).is_some());
        assert!(t.edge_between(c, a).is_some());
        assert!(t.edge_between(a, c).is_none());
        // Costs and speeds are preserved.
        assert_eq!(t.edge(t.edge_between(c, a).unwrap()).cost, rat(5, 1));
        assert_eq!(t.node(b).speed, rat(2, 1));
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), p);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let (p, a, b, c) = triangle();
        let (sub, map) = p.induced_subgraph(&[a, b]);
        assert_eq!(sub.num_nodes(), 2);
        // a<->b link survives (2 directed edges); edges touching c are dropped.
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map[&a], NodeId(0));
        assert_eq!(map[&b], NodeId(1));
        assert!(!map.contains_key(&c));
        assert_eq!(sub.node(map[&a]).name, "a");
    }

    #[test]
    fn strong_connectivity() {
        let (p, _, _, _) = triangle();
        // a -> c is one-way but a<->b and b<->c links make the graph strongly connected.
        assert!(p.is_strongly_connected());
        let mut q = Platform::new();
        let x = q.add_node("x", rat(1, 1));
        let y = q.add_node("y", rat(1, 1));
        q.add_edge(x, y, rat(1, 1));
        assert!(!q.is_strongly_connected());
        assert!(Platform::new().is_strongly_connected());
    }

    #[test]
    fn degree_counts_both_directions() {
        let (p, a, _b, c) = triangle();
        // a: link to b (2 edges) + edge a->c = 3.
        assert_eq!(p.degree(a), 3);
        // c: link to b (2 edges) + edge a->c = 3.
        assert_eq!(p.degree(c), 3);
    }

    #[test]
    fn dot_export_mentions_all_nodes() {
        let (p, _, _, _) = triangle();
        let dot = p.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("n0 ->"));
        assert!(dot.matches("label").count() >= p.num_nodes() + p.num_edges());
    }
}
