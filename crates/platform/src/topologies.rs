//! Additional structured topology generators.
//!
//! The generators in [`crate::generators`] cover the paper's own instances and
//! the basic shapes used by the unit tests.  This module adds the structured
//! interconnects commonly found in cluster and grid deployments — rings,
//! tori, hypercubes, fat trees, dumbbells and random geometric graphs — so
//! that the scaling benchmarks and the ablation studies can sweep over a
//! representative family of platforms.
//!
//! Every generator returns plain [`Platform`] graphs (plus the node handles a
//! caller needs to set up a collective); the workload-instance helpers at the
//! bottom wrap them into the `*Instance` structs consumed by `steady-core`.

use crate::generators::{GossipInstance, ReduceInstance, ScatterInstance};
use crate::graph::{NodeId, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_rational::{rat, Ratio};

/// A gather workload instance: every source owns a message stream destined to
/// the single sink.  Gather is the dual of scatter (transpose the platform).
#[derive(Debug, Clone)]
pub struct GatherInstance {
    /// The platform graph.
    pub platform: Platform,
    /// Source processors, each emitting its own message stream.
    pub sources: Vec<NodeId>,
    /// The sink processor that must receive one message from every source per
    /// operation.
    pub sink: NodeId,
}

/// A parallel-prefix workload instance: participant `i` must obtain the prefix
/// value `v[0, i]` (the reduction of the values of ranks `0..=i`).
///
/// This is the extension suggested in the paper's conclusion ("extend the
/// solution for reduce operations to general parallel prefix computations").
#[derive(Debug, Clone)]
pub struct PrefixInstance {
    /// The platform graph.
    pub platform: Platform,
    /// Participants in rank order: `participants[i]` owns value `v_i` and must
    /// end up with `v[0, i]`.
    pub participants: Vec<NodeId>,
    /// Size of every partial value `v[k, m]`.
    pub message_size: Ratio,
    /// Cost of every combining task `T_{k,l,m}`.
    pub task_cost: Ratio,
}

// ---------------------------------------------------------------------------
// Structured topologies
// ---------------------------------------------------------------------------

/// Bidirectional ring of `n` nodes with uniform link cost and unit speeds.
pub fn ring(n: usize, cost: Ratio) -> (Platform, Vec<NodeId>) {
    assert!(n >= 2, "a ring needs at least two nodes");
    let mut p = Platform::new();
    let nodes: Vec<_> = (0..n).map(|i| p.add_node(format!("r{i}"), rat(1, 1))).collect();
    for i in 0..n {
        let j = (i + 1) % n;
        if p.edge_between(nodes[i], nodes[j]).is_none() {
            p.add_link(nodes[i], nodes[j], cost.clone());
        }
    }
    (p, nodes)
}

/// 2-D torus (`rows x cols` grid with wrap-around links) with uniform cost.
pub fn torus(rows: usize, cols: usize, cost: Ratio) -> (Platform, Vec<Vec<NodeId>>) {
    assert!(rows >= 2 && cols >= 2, "a torus needs at least 2x2 nodes");
    let mut p = Platform::new();
    let mut ids = vec![Vec::with_capacity(cols); rows];
    for (r, row_ids) in ids.iter_mut().enumerate() {
        for c in 0..cols {
            row_ids.push(p.add_node(format!("t{r}_{c}"), rat(1, 1)));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            let right = ids[r][(c + 1) % cols];
            let down = ids[(r + 1) % rows][c];
            if p.edge_between(ids[r][c], right).is_none() {
                p.add_link(ids[r][c], right, cost.clone());
            }
            if p.edge_between(ids[r][c], down).is_none() {
                p.add_link(ids[r][c], down, cost.clone());
            }
        }
    }
    (p, ids)
}

/// `d`-dimensional hypercube (`2^d` nodes); nodes differing in exactly one bit
/// are linked with the given cost.
pub fn hypercube(dimensions: usize, cost: Ratio) -> (Platform, Vec<NodeId>) {
    assert!(dimensions >= 1, "a hypercube needs at least one dimension");
    assert!(dimensions <= 16, "hypercube dimension is capped at 16");
    let n = 1usize << dimensions;
    let mut p = Platform::new();
    let nodes: Vec<_> = (0..n).map(|i| p.add_node(format!("h{i}"), rat(1, 1))).collect();
    for i in 0..n {
        for bit in 0..dimensions {
            let j = i ^ (1 << bit);
            if i < j {
                p.add_link(nodes[i], nodes[j], cost.clone());
            }
        }
    }
    (p, nodes)
}

/// Parameters of the two-level fat-tree generator.
#[derive(Debug, Clone)]
pub struct FatTreeConfig {
    /// Number of leaf (edge) switches.
    pub leaf_switches: usize,
    /// Number of spine (core) switches, each connected to every leaf switch.
    pub spine_switches: usize,
    /// Compute hosts attached to each leaf switch.
    pub hosts_per_leaf: usize,
    /// Cost of a leaf-to-spine uplink (fatter, i.e. cheaper, than host links).
    pub uplink_cost: Ratio,
    /// Cost of a host-to-leaf link.
    pub host_cost: Ratio,
    /// Compute speed of every host.
    pub host_speed: Ratio,
}

impl Default for FatTreeConfig {
    fn default() -> Self {
        FatTreeConfig {
            leaf_switches: 3,
            spine_switches: 2,
            hosts_per_leaf: 2,
            uplink_cost: rat(1, 4),
            host_cost: rat(1, 2),
            host_speed: rat(1, 1),
        }
    }
}

/// Result of the fat-tree generator.
#[derive(Debug, Clone)]
pub struct FatTreePlatform {
    /// The generated platform.
    pub platform: Platform,
    /// Spine switch node ids (routers).
    pub spines: Vec<NodeId>,
    /// Leaf switch node ids (routers).
    pub leaves: Vec<NodeId>,
    /// Compute hosts, grouped per leaf switch and flattened in order.
    pub hosts: Vec<NodeId>,
}

/// Two-level fat tree: spine switches, leaf switches and compute hosts.
/// Switches are routers (speed 0); uplinks are cheaper than host links so the
/// aggregate leaf-to-spine bandwidth exceeds a single host link, the defining
/// property of a fat tree.
pub fn fat_tree(config: &FatTreeConfig) -> FatTreePlatform {
    assert!(config.leaf_switches >= 1 && config.spine_switches >= 1);
    assert!(config.hosts_per_leaf >= 1);
    let mut p = Platform::new();
    let spines: Vec<_> =
        (0..config.spine_switches).map(|i| p.add_router(format!("spine{i}"))).collect();
    let leaves: Vec<_> =
        (0..config.leaf_switches).map(|i| p.add_router(format!("leaf{i}"))).collect();
    let mut hosts = Vec::new();
    for (li, &leaf) in leaves.iter().enumerate() {
        for &spine in &spines {
            p.add_link(leaf, spine, config.uplink_cost.clone());
        }
        for hi in 0..config.hosts_per_leaf {
            let host = p.add_node(format!("host{li}_{hi}"), config.host_speed.clone());
            p.add_link(leaf, host, config.host_cost.clone());
            hosts.push(host);
        }
    }
    FatTreePlatform { platform: p, spines, leaves, hosts }
}

/// Dumbbell: two cliques of compute hosts bridged by a single bottleneck link
/// between two gateway routers.  Returns the platform and the hosts of the
/// left and right clusters.
pub fn dumbbell(
    hosts_per_side: usize,
    local_cost: Ratio,
    bridge_cost: Ratio,
) -> (Platform, Vec<NodeId>, Vec<NodeId>) {
    assert!(hosts_per_side >= 1);
    let mut p = Platform::new();
    let gw_left = p.add_router("gw_left");
    let gw_right = p.add_router("gw_right");
    p.add_link(gw_left, gw_right, bridge_cost);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..hosts_per_side {
        let l = p.add_node(format!("left{i}"), rat(1, 1));
        p.add_link(gw_left, l, local_cost.clone());
        left.push(l);
        let r = p.add_node(format!("right{i}"), rat(1, 1));
        p.add_link(gw_right, r, local_cost.clone());
        right.push(r);
    }
    // Local all-to-all inside each cluster (LAN-style switching).
    for side in [&left, &right] {
        for i in 0..side.len() {
            for j in (i + 1)..side.len() {
                p.add_link(side[i], side[j], local_cost.clone());
            }
        }
    }
    (p, left, right)
}

/// Parameters of the random geometric graph generator.
#[derive(Debug, Clone)]
pub struct GeometricConfig {
    /// Number of nodes scattered uniformly in the unit square.
    pub nodes: usize,
    /// Nodes closer than this Euclidean distance are linked.
    pub radius: f64,
    /// Link costs are drawn as `1/b` with `b` uniform in this inclusive range.
    pub bandwidth_range: (u32, u32),
    /// Node speeds are drawn uniformly in this inclusive range.
    pub speed_range: (u32, u32),
}

impl Default for GeometricConfig {
    fn default() -> Self {
        GeometricConfig { nodes: 10, radius: 0.5, bandwidth_range: (1, 10), speed_range: (1, 10) }
    }
}

/// Random geometric graph: nodes at random positions in the unit square,
/// linked when closer than `radius`.  The graph is made connected by linking
/// every isolated component to its nearest neighbour outside the component.
pub fn random_geometric(config: &GeometricConfig, rng: &mut StdRng) -> (Platform, Vec<NodeId>) {
    assert!(config.nodes >= 1);
    let mut p = Platform::new();
    let positions: Vec<(f64, f64)> =
        (0..config.nodes).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let nodes: Vec<_> = (0..config.nodes)
        .map(|i| {
            let speed = rng.gen_range(config.speed_range.0..=config.speed_range.1);
            p.add_node(format!("g{i}"), rat(speed as i64, 1))
        })
        .collect();
    let rand_cost = |rng: &mut StdRng| {
        let b = rng.gen_range(config.bandwidth_range.0..=config.bandwidth_range.1);
        rat(1, b as i64)
    };
    let dist = |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
    for i in 0..config.nodes {
        for j in (i + 1)..config.nodes {
            if dist(positions[i], positions[j]) <= config.radius {
                let c = rand_cost(rng);
                p.add_link(nodes[i], nodes[j], c);
            }
        }
    }
    // Stitch disconnected components together: repeatedly link the first node
    // not reachable from node 0 to its geometrically nearest reachable node.
    if config.nodes > 1 {
        loop {
            let reachable = p.reachable_from(nodes[0]);
            if reachable.len() == config.nodes {
                break;
            }
            let outside = nodes
                .iter()
                .copied()
                .find(|n| !reachable.contains(n))
                .expect("some node is unreachable");
            let nearest = reachable
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    dist(positions[a.index()], positions[outside.index()])
                        .partial_cmp(&dist(positions[b.index()], positions[outside.index()]))
                        .expect("distances are finite")
                })
                .expect("reachable set is non-empty");
            let c = rand_cost(rng);
            p.add_link(nearest, outside, c);
        }
    }
    (p, nodes)
}

// ---------------------------------------------------------------------------
// Workload-instance helpers
// ---------------------------------------------------------------------------

/// Scatter instance on a fat tree: the first host scatters to all other hosts.
pub fn fat_tree_scatter_instance(config: &FatTreeConfig) -> ScatterInstance {
    let ft = fat_tree(config);
    let source = ft.hosts[0];
    let targets = ft.hosts[1..].to_vec();
    ScatterInstance { platform: ft.platform, source, targets }
}

/// Reduce instance on a fat tree: all hosts participate, the first host is the
/// target; unit message size and task cost.
pub fn fat_tree_reduce_instance(config: &FatTreeConfig) -> ReduceInstance {
    let ft = fat_tree(config);
    let target = ft.hosts[0];
    ReduceInstance {
        platform: ft.platform,
        participants: ft.hosts,
        target,
        message_size: rat(1, 1),
        task_cost: rat(1, 1),
    }
}

/// Gather instance on a dumbbell: every host of both clusters sends to the
/// first host of the left cluster, stressing the bridge link.
pub fn dumbbell_gather_instance(
    hosts_per_side: usize,
    local_cost: Ratio,
    bridge_cost: Ratio,
) -> GatherInstance {
    let (platform, left, right) = dumbbell(hosts_per_side, local_cost, bridge_cost);
    let sink = left[0];
    let sources = left.iter().skip(1).chain(right.iter()).copied().collect();
    GatherInstance { platform, sources, sink }
}

/// Gossip instance on a ring: every node exchanges a personalized message with
/// every other node.
pub fn ring_gossip_instance(n: usize, cost: Ratio) -> GossipInstance {
    let (platform, nodes) = ring(n, cost);
    GossipInstance { platform, sources: nodes.clone(), targets: nodes }
}

/// Parallel-prefix instance on a hypercube with unit parameters.
pub fn hypercube_prefix_instance(dimensions: usize, cost: Ratio) -> PrefixInstance {
    let (platform, nodes) = hypercube(dimensions, cost);
    PrefixInstance { platform, participants: nodes, message_size: rat(1, 1), task_cost: rat(1, 1) }
}

/// Parallel-prefix instance on a random geometric platform (all compute nodes
/// participate in node order), unit parameters.
pub fn geometric_prefix_instance(config: &GeometricConfig, seed: u64) -> PrefixInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let (platform, nodes) = random_geometric(config, &mut rng);
    PrefixInstance { platform, participants: nodes, message_size: rat(1, 1), task_cost: rat(1, 1) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_shape() {
        let (p, nodes) = ring(5, rat(1, 2));
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_edges(), 10);
        assert!(p.is_strongly_connected());
        // Each node has exactly two neighbours (4 incident directed edges).
        for &n in &nodes {
            assert_eq!(p.degree(n), 4);
        }
    }

    #[test]
    fn ring_of_two_has_single_link() {
        let (p, _) = ring(2, rat(1, 1));
        assert_eq!(p.num_edges(), 2);
    }

    #[test]
    fn torus_shape() {
        let (p, ids) = torus(3, 4, rat(1, 1));
        assert_eq!(p.num_nodes(), 12);
        // Every node has 4 neighbours in a 3x4 torus: 2 * 12 * 4 / 2 directed edges.
        assert_eq!(p.num_edges(), 48);
        assert!(p.is_strongly_connected());
        assert!(p.edge_between(ids[0][0], ids[0][3]).is_some(), "wrap-around column link");
        assert!(p.edge_between(ids[0][0], ids[2][0]).is_some(), "wrap-around row link");
    }

    #[test]
    fn torus_2x2_deduplicates_wraparound() {
        // On a 2x2 torus the wrap-around neighbour equals the direct neighbour;
        // the generator must not create parallel links.
        let (p, _) = torus(2, 2, rat(1, 1));
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.num_edges(), 8);
    }

    #[test]
    fn hypercube_shape() {
        for d in 1..=4usize {
            let (p, nodes) = hypercube(d, rat(1, 1));
            assert_eq!(p.num_nodes(), 1 << d);
            assert_eq!(p.num_edges(), d * (1 << d));
            assert!(p.is_strongly_connected());
            for &n in &nodes {
                assert_eq!(p.degree(n), 2 * d);
            }
        }
    }

    #[test]
    fn fat_tree_shape() {
        let config = FatTreeConfig::default();
        let ft = fat_tree(&config);
        assert_eq!(ft.spines.len(), 2);
        assert_eq!(ft.leaves.len(), 3);
        assert_eq!(ft.hosts.len(), 6);
        assert!(ft.platform.validate().is_ok());
        assert!(ft.platform.is_strongly_connected());
        for &s in &ft.spines {
            assert!(!ft.platform.node(s).can_compute());
        }
        for &h in &ft.hosts {
            assert!(ft.platform.node(h).can_compute());
        }
        // Every leaf is connected to every spine.
        for &l in &ft.leaves {
            for &s in &ft.spines {
                assert!(ft.platform.edge_between(l, s).is_some());
            }
        }
    }

    #[test]
    fn dumbbell_shape() {
        let (p, left, right) = dumbbell(3, rat(1, 2), rat(2, 1));
        assert_eq!(left.len(), 3);
        assert_eq!(right.len(), 3);
        assert_eq!(p.num_nodes(), 8);
        assert!(p.is_strongly_connected());
        // Left hosts reach right hosts only through the gateways.
        assert!(p.edge_between(left[0], right[0]).is_none());
        assert!(p.is_reachable(left[0], right[0]));
        // Intra-cluster links exist.
        assert!(p.edge_between(left[0], left[1]).is_some());
    }

    #[test]
    fn random_geometric_is_connected() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            // A tiny radius forces the stitching path to run.
            let config = GeometricConfig { nodes: 12, radius: 0.15, ..Default::default() };
            let (p, nodes) = random_geometric(&config, &mut rng);
            assert_eq!(nodes.len(), 12);
            assert!(p.validate().is_ok());
            assert!(p.is_strongly_connected(), "seed {seed} produced a disconnected graph");
        }
    }

    #[test]
    fn random_geometric_single_node() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = GeometricConfig { nodes: 1, ..Default::default() };
        let (p, nodes) = random_geometric(&config, &mut rng);
        assert_eq!(p.num_nodes(), 1);
        assert_eq!(nodes.len(), 1);
        assert_eq!(p.num_edges(), 0);
    }

    #[test]
    fn instance_helpers_are_well_formed() {
        let s = fat_tree_scatter_instance(&FatTreeConfig::default());
        assert!(!s.targets.contains(&s.source));
        assert!(!s.targets.is_empty());

        let r = fat_tree_reduce_instance(&FatTreeConfig::default());
        assert!(r.participants.contains(&r.target));
        assert_eq!(r.message_size, rat(1, 1));

        let g = dumbbell_gather_instance(2, rat(1, 2), rat(1, 1));
        assert!(!g.sources.contains(&g.sink));
        assert_eq!(g.sources.len(), 3);
        for &src in &g.sources {
            assert!(g.platform.is_reachable(src, g.sink));
        }

        let gossip = ring_gossip_instance(4, rat(1, 1));
        assert_eq!(gossip.sources.len(), 4);
        assert_eq!(gossip.targets.len(), 4);

        let prefix = hypercube_prefix_instance(3, rat(1, 1));
        assert_eq!(prefix.participants.len(), 8);

        let gp = geometric_prefix_instance(&GeometricConfig::default(), 3);
        assert!(!gp.participants.is_empty());
        assert!(gp.platform.validate().is_ok());
    }
}
