//! Topology generators.
//!
//! Three families are provided:
//!
//! * **regular topologies** (star, chain, clique, grid, binary tree) used by
//!   unit tests, examples and the scaling benchmarks;
//! * **random topologies** — flat random graphs and a Tiers-like hierarchical
//!   generator reproducing the structure of the random platforms used in the
//!   paper's experiment (§4.7): a WAN core of routers, MAN routers below it,
//!   and LAN compute nodes at the leaves, with heterogeneous link costs and
//!   node speeds;
//! * **paper instances** — the exact toy platform of Figure 2 (scatter), the
//!   exact 3-processor platform of Figure 6 (reduce) and a Figure-9-like
//!   14-node Tiers platform with the published node speeds.  The original
//!   Figure 9 link labels cannot be recovered unambiguously from the paper,
//!   so the link costs of [`figure9`] are a documented substitution (see
//!   DESIGN.md); the node count, hierarchy, participant set, speeds, message
//!   size and task cost follow the paper.

use crate::graph::{NodeId, Platform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_rational::{rat, Ratio};

/// A scatter workload instance: a platform, a source and a set of targets.
#[derive(Debug, Clone)]
pub struct ScatterInstance {
    /// The platform graph.
    pub platform: Platform,
    /// Source processor holding the messages.
    pub source: NodeId,
    /// Target processors, each of which must receive its own message stream.
    pub targets: Vec<NodeId>,
}

/// A reduce workload instance: a platform, ordered participants, a target,
/// and the size/cost parameters of the reduction.
#[derive(Debug, Clone)]
pub struct ReduceInstance {
    /// The platform graph.
    pub platform: Platform,
    /// Participants in reduction order: `participants[i]` owns value `v_i`.
    pub participants: Vec<NodeId>,
    /// Processor that must end up with the reduced value `v[0, N]`.
    pub target: NodeId,
    /// Size of every partial value `v[k, m]` (the paper's experiment uses 10).
    pub message_size: Ratio,
    /// Cost of every task `T_{k,l,m}`; the execution time on `P_i` is
    /// `task_cost / speed(P_i)` (the paper's experiment uses 10).
    pub task_cost: Ratio,
}

/// A gossip (personalized all-to-all) instance.
#[derive(Debug, Clone)]
pub struct GossipInstance {
    /// The platform graph.
    pub platform: Platform,
    /// Source processors.
    pub sources: Vec<NodeId>,
    /// Target processors.
    pub targets: Vec<NodeId>,
}

// ---------------------------------------------------------------------------
// Regular topologies
// ---------------------------------------------------------------------------

/// Star topology: one center connected to `leaves` leaves by symmetric links
/// of cost `cost`; every node has speed 1.  Returns `(platform, center, leaves)`.
pub fn star(leaves: usize, cost: Ratio) -> (Platform, NodeId, Vec<NodeId>) {
    let mut p = Platform::new();
    let center = p.add_node("center", rat(1, 1));
    let leaf_ids: Vec<_> = (0..leaves)
        .map(|i| {
            let n = p.add_node(format!("leaf{i}"), rat(1, 1));
            p.add_link(center, n, cost.clone());
            n
        })
        .collect();
    (p, center, leaf_ids)
}

/// Heterogeneous star: leaf `i` is connected with cost `costs[i]`.
pub fn heterogeneous_star(costs: &[Ratio]) -> (Platform, NodeId, Vec<NodeId>) {
    let mut p = Platform::new();
    let center = p.add_node("center", rat(1, 1));
    let leaf_ids: Vec<_> = costs
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let n = p.add_node(format!("leaf{i}"), rat(1, 1));
            p.add_link(center, n, c.clone());
            n
        })
        .collect();
    (p, center, leaf_ids)
}

/// Directed chain `n0 -> n1 -> ... -> n_{len-1}` with symmetric links.
pub fn chain(len: usize, cost: Ratio) -> (Platform, Vec<NodeId>) {
    assert!(len >= 1, "a chain needs at least one node");
    let mut p = Platform::new();
    let nodes: Vec<_> = (0..len).map(|i| p.add_node(format!("n{i}"), rat(1, 1))).collect();
    for w in nodes.windows(2) {
        p.add_link(w[0], w[1], cost.clone());
    }
    (p, nodes)
}

/// Complete graph on `n` nodes with uniform link cost.
pub fn clique(n: usize, cost: Ratio) -> (Platform, Vec<NodeId>) {
    let mut p = Platform::new();
    let nodes: Vec<_> = (0..n).map(|i| p.add_node(format!("n{i}"), rat(1, 1))).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            p.add_link(nodes[i], nodes[j], cost.clone());
        }
    }
    (p, nodes)
}

/// 2-D grid of `rows x cols` nodes with symmetric links of cost `cost`.
pub fn grid(rows: usize, cols: usize, cost: Ratio) -> (Platform, Vec<Vec<NodeId>>) {
    let mut p = Platform::new();
    let mut ids = vec![Vec::with_capacity(cols); rows];
    for (r, row_ids) in ids.iter_mut().enumerate() {
        for c in 0..cols {
            row_ids.push(p.add_node(format!("n{r}_{c}"), rat(1, 1)));
        }
    }
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                p.add_link(ids[r][c], ids[r + 1][c], cost.clone());
            }
            if c + 1 < cols {
                p.add_link(ids[r][c], ids[r][c + 1], cost.clone());
            }
        }
    }
    (p, ids)
}

/// Complete binary tree of the given depth (depth 0 = a single root).
pub fn binary_tree(depth: usize, cost: Ratio) -> (Platform, NodeId, Vec<NodeId>) {
    let mut p = Platform::new();
    let root = p.add_node("n0", rat(1, 1));
    let mut all = vec![root];
    let mut frontier = vec![root];
    for level in 1..=depth {
        let mut next = Vec::new();
        for (i, &parent) in frontier.iter().enumerate() {
            for side in 0..2 {
                let n = p.add_node(format!("n{level}_{i}_{side}"), rat(1, 1));
                p.add_link(parent, n, cost.clone());
                next.push(n);
                all.push(n);
            }
        }
        frontier = next;
    }
    (p, root, all)
}

// ---------------------------------------------------------------------------
// Random topologies
// ---------------------------------------------------------------------------

/// Parameters of the flat random-platform generator.
#[derive(Debug, Clone)]
pub struct RandomConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Probability of adding an extra (non-spanning-tree) link between a pair.
    pub extra_link_probability: f64,
    /// Link costs are drawn as `1/b` with `b` uniform in this inclusive range.
    pub bandwidth_range: (u32, u32),
    /// Node speeds are drawn uniformly in this inclusive range.
    pub speed_range: (u32, u32),
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            nodes: 8,
            extra_link_probability: 0.2,
            bandwidth_range: (1, 10),
            speed_range: (1, 10),
        }
    }
}

/// Random connected platform: a random spanning tree plus extra random links,
/// heterogeneous costs and speeds.
pub fn random_connected(config: &RandomConfig, rng: &mut StdRng) -> Platform {
    assert!(config.nodes >= 1);
    let mut p = Platform::new();
    let nodes: Vec<_> = (0..config.nodes)
        .map(|i| {
            let speed = rng.gen_range(config.speed_range.0..=config.speed_range.1);
            p.add_node(format!("n{i}"), rat(speed as i64, 1))
        })
        .collect();
    let rand_cost = |rng: &mut StdRng| {
        let b = rng.gen_range(config.bandwidth_range.0..=config.bandwidth_range.1);
        rat(1, b as i64)
    };
    // Random spanning tree: connect node i to a random earlier node.
    for i in 1..config.nodes {
        let j = rng.gen_range(0..i);
        let cost = rand_cost(rng);
        p.add_link(nodes[i], nodes[j], cost);
    }
    // Extra links.
    for i in 0..config.nodes {
        for j in (i + 1)..config.nodes {
            if p.edge_between(nodes[i], nodes[j]).is_none()
                && rng.gen_bool(config.extra_link_probability)
            {
                let cost = rand_cost(rng);
                p.add_link(nodes[i], nodes[j], cost);
            }
        }
    }
    p
}

/// Parameters of the Tiers-like hierarchical generator.
#[derive(Debug, Clone)]
pub struct TiersConfig {
    /// Number of WAN (core) routers, connected in a cycle plus chords.
    pub wan_routers: usize,
    /// Number of MAN routers attached to each WAN router.
    pub man_per_wan: usize,
    /// Number of LAN compute hosts attached to each MAN router.
    pub lan_per_man: usize,
    /// WAN link costs `1/b`, `b` uniform in this range (fast backbone).
    pub wan_bandwidth: (u32, u32),
    /// MAN uplink costs `1/b`.
    pub man_bandwidth: (u32, u32),
    /// LAN link costs `1/b`.
    pub lan_bandwidth: (u32, u32),
    /// Compute speeds of the LAN hosts.
    pub speed_range: (u32, u32),
}

impl Default for TiersConfig {
    fn default() -> Self {
        TiersConfig {
            wan_routers: 3,
            man_per_wan: 1,
            lan_per_man: 3,
            wan_bandwidth: (20, 40),
            man_bandwidth: (10, 20),
            lan_bandwidth: (4, 10),
            speed_range: (10, 100),
        }
    }
}

/// Result of the Tiers-like generator: platform plus the list of LAN compute
/// hosts (the gray nodes of Figure 9) in logical order.
#[derive(Debug, Clone)]
pub struct TiersPlatform {
    /// The generated platform.
    pub platform: Platform,
    /// WAN + MAN router node ids.
    pub routers: Vec<NodeId>,
    /// LAN compute hosts; `hosts[i]` is the participant of logical index `i`.
    pub hosts: Vec<NodeId>,
}

/// Generates a Tiers-like hierarchical platform (WAN core, MAN routers, LAN
/// hosts) with heterogeneous random link costs and host speeds.
pub fn tiers(config: &TiersConfig, rng: &mut StdRng) -> TiersPlatform {
    assert!(config.wan_routers >= 1);
    let mut p = Platform::new();
    let mut routers = Vec::new();
    let mut hosts = Vec::new();

    let rand_cost = |rng: &mut StdRng, range: (u32, u32)| {
        let b = rng.gen_range(range.0..=range.1);
        rat(1, b as i64)
    };

    // WAN core: cycle plus one chord per router with small probability.
    let wan: Vec<_> = (0..config.wan_routers).map(|i| p.add_router(format!("wan{i}"))).collect();
    routers.extend(&wan);
    if config.wan_routers > 1 {
        for i in 0..config.wan_routers {
            let j = (i + 1) % config.wan_routers;
            if p.edge_between(wan[i], wan[j]).is_none() {
                let c = rand_cost(rng, config.wan_bandwidth);
                p.add_link(wan[i], wan[j], c);
            }
        }
        for i in 0..config.wan_routers {
            if rng.gen_bool(0.3) {
                let j = rng.gen_range(0..config.wan_routers);
                if j != i && p.edge_between(wan[i], wan[j]).is_none() {
                    let c = rand_cost(rng, config.wan_bandwidth);
                    p.add_link(wan[i], wan[j], c);
                }
            }
        }
    }

    // MAN routers and LAN hosts.
    for (wi, &w) in wan.iter().enumerate() {
        for mi in 0..config.man_per_wan {
            let man = p.add_router(format!("man{wi}_{mi}"));
            routers.push(man);
            let c = rand_cost(rng, config.man_bandwidth);
            p.add_link(w, man, c);
            for li in 0..config.lan_per_man {
                let speed = rng.gen_range(config.speed_range.0..=config.speed_range.1);
                let host = p.add_node(format!("host{wi}_{mi}_{li}"), rat(speed as i64, 1));
                let c = rand_cost(rng, config.lan_bandwidth);
                p.add_link(man, host, c);
                hosts.push(host);
            }
        }
    }

    TiersPlatform { platform: p, routers, hosts }
}

/// Convenience: a reduce instance on a random Tiers platform (all hosts
/// participate, the fastest host is the target), message size 10 and task
/// cost 10 as in the paper's experiment.
pub fn tiers_reduce_instance(config: &TiersConfig, seed: u64) -> ReduceInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = tiers(config, &mut rng);
    let target = *t
        .hosts
        .iter()
        .max_by_key(|&&h| t.platform.node(h).speed.clone())
        .expect("tiers platform has at least one host");
    ReduceInstance {
        platform: t.platform,
        participants: t.hosts,
        target,
        message_size: rat(10, 1),
        task_cost: rat(10, 1),
    }
}

/// Convenience: a scatter instance on a random Tiers platform (the fastest
/// host is the source, all other hosts are targets).
pub fn tiers_scatter_instance(config: &TiersConfig, seed: u64) -> ScatterInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let t = tiers(config, &mut rng);
    let source = *t
        .hosts
        .iter()
        .max_by_key(|&&h| t.platform.node(h).speed.clone())
        .expect("tiers platform has at least one host");
    let targets = t.hosts.iter().copied().filter(|&h| h != source).collect();
    ScatterInstance { platform: t.platform, source, targets }
}

// ---------------------------------------------------------------------------
// Clustered large topologies
// ---------------------------------------------------------------------------

/// Parameters of the clustered large-topology generator: a backbone cycle of
/// cluster routers (plus random chords) with compute hosts star-attached to
/// their cluster router.
///
/// This is the size-parameterized family behind the scaling sweep: it grows
/// to 100–1000+ nodes while keeping the steady-state LPs sparse — each host
/// touches one access link, each router a handful of backbone links — which
/// is exactly the regime the revised sparse simplex is built for.
#[derive(Debug, Clone)]
pub struct ClusteredConfig {
    /// Number of clusters; each contributes one (non-computing) router.
    pub clusters: usize,
    /// Number of compute hosts star-attached to each cluster router.
    pub hosts_per_cluster: usize,
    /// Probability of one extra backbone chord per router (beyond the cycle).
    pub chord_probability: f64,
    /// Backbone link costs `1/b`, `b` uniform in this inclusive range.
    pub backbone_bandwidth: (u32, u32),
    /// Host access-link costs `1/b`.
    pub access_bandwidth: (u32, u32),
    /// Compute speeds of the hosts.
    pub speed_range: (u32, u32),
}

impl Default for ClusteredConfig {
    fn default() -> Self {
        ClusteredConfig {
            clusters: 10,
            hosts_per_cluster: 9,
            chord_probability: 0.3,
            backbone_bandwidth: (20, 40),
            access_bandwidth: (4, 10),
            speed_range: (10, 100),
        }
    }
}

impl ClusteredConfig {
    /// Sizes the cluster grid for a platform of approximately `total` nodes
    /// (routers + hosts): `⌈√total⌉`-ish clusters of equal size, so both the
    /// backbone and the per-cluster stars stay small relative to the whole.
    ///
    /// The actual node count is `clusters · (1 + hosts_per_cluster)`, within
    /// a few percent below `total`; read it back from the generated platform
    /// when exact numbers matter (e.g. benchmark artifacts).
    pub fn with_total_nodes(total: usize) -> Self {
        let clusters = ((total as f64).sqrt() as usize).max(2);
        let hosts_per_cluster = (total / clusters).saturating_sub(1).max(1);
        ClusteredConfig { clusters, hosts_per_cluster, ..Default::default() }
    }
}

/// Result of the clustered generator.
#[derive(Debug, Clone)]
pub struct ClusteredPlatform {
    /// The generated platform.
    pub platform: Platform,
    /// Cluster router node ids, one per cluster.
    pub routers: Vec<NodeId>,
    /// Compute hosts, grouped by cluster: `clusters[c]` are the hosts behind
    /// `routers[c]`.
    pub clusters: Vec<Vec<NodeId>>,
}

impl ClusteredPlatform {
    /// All compute hosts in cluster-major order.
    pub fn hosts(&self) -> Vec<NodeId> {
        self.clusters.iter().flatten().copied().collect()
    }

    /// Picks up to `k` hosts spread across clusters round-robin (first host
    /// of every cluster, then second of every cluster, ...), so a bounded
    /// participant set still exercises the whole backbone.
    pub fn spread_hosts(&self, k: usize) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(k);
        let widest = self.clusters.iter().map(Vec::len).max().unwrap_or(0);
        for j in 0..widest {
            for cluster in &self.clusters {
                if out.len() == k {
                    return out;
                }
                if let Some(&h) = cluster.get(j) {
                    out.push(h);
                }
            }
        }
        out
    }
}

/// Generates a clustered platform: cluster routers on a backbone cycle plus
/// random chords, hosts star-attached with heterogeneous access costs and
/// speeds.
pub fn clustered(config: &ClusteredConfig, rng: &mut StdRng) -> ClusteredPlatform {
    assert!(config.clusters >= 1);
    assert!(config.hosts_per_cluster >= 1);
    let mut p = Platform::new();

    let rand_cost = |rng: &mut StdRng, range: (u32, u32)| {
        let b = rng.gen_range(range.0..=range.1);
        rat(1, b as i64)
    };

    // Backbone: a cycle over the cluster routers keeps the platform connected
    // for any cluster count; chords add path diversity.
    let routers: Vec<_> =
        (0..config.clusters).map(|i| p.add_router(format!("cluster{i}"))).collect();
    if config.clusters > 1 {
        for i in 0..config.clusters {
            let j = (i + 1) % config.clusters;
            if p.edge_between(routers[i], routers[j]).is_none() {
                let c = rand_cost(rng, config.backbone_bandwidth);
                p.add_link(routers[i], routers[j], c);
            }
        }
        for i in 0..config.clusters {
            if rng.gen_bool(config.chord_probability) {
                let j = rng.gen_range(0..config.clusters);
                if j != i && p.edge_between(routers[i], routers[j]).is_none() {
                    let c = rand_cost(rng, config.backbone_bandwidth);
                    p.add_link(routers[i], routers[j], c);
                }
            }
        }
    }

    // Hosts: a star around each cluster router.
    let clusters = routers
        .iter()
        .enumerate()
        .map(|(ci, &router)| {
            (0..config.hosts_per_cluster)
                .map(|hi| {
                    let speed = rng.gen_range(config.speed_range.0..=config.speed_range.1);
                    let host = p.add_node(format!("host{ci}_{hi}"), rat(speed as i64, 1));
                    let c = rand_cost(rng, config.access_bandwidth);
                    p.add_link(router, host, c);
                    host
                })
                .collect()
        })
        .collect();

    ClusteredPlatform { platform: p, routers, clusters }
}

/// Convenience: a scatter instance on a clustered platform — the fastest
/// host is the source and `num_targets` hosts spread across clusters are the
/// targets.
///
/// The target count is a parameter (rather than "all hosts") because the
/// scatter LP has one flow variable per (edge, target) pair: on a
/// thousand-node platform an all-hosts target set is a millions-of-variables
/// LP, while a bounded spread-out set keeps the LP at sparse-solver scale
/// yet still spans the backbone.
pub fn clustered_scatter_instance(
    config: &ClusteredConfig,
    num_targets: usize,
    seed: u64,
) -> ScatterInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cp = clustered(config, &mut rng);
    let source = *cp
        .hosts()
        .iter()
        .max_by_key(|&&h| cp.platform.node(h).speed.clone())
        .expect("clustered platform has at least one host");
    let targets: Vec<_> = cp
        .spread_hosts(num_targets + 1)
        .into_iter()
        .filter(|&h| h != source)
        .take(num_targets)
        .collect();
    ScatterInstance { platform: cp.platform, source, targets }
}

/// Convenience: a reduce instance on a clustered platform — `num_participants`
/// hosts spread across clusters, the fastest of them as target, message size
/// 10 and task cost 10 as in the paper's experiment.
pub fn clustered_reduce_instance(
    config: &ClusteredConfig,
    num_participants: usize,
    seed: u64,
) -> ReduceInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let cp = clustered(config, &mut rng);
    let participants = cp.spread_hosts(num_participants);
    let target = *participants
        .iter()
        .max_by_key(|&&h| cp.platform.node(h).speed.clone())
        .expect("clustered platform has at least one host");
    ReduceInstance {
        platform: cp.platform,
        participants,
        target,
        message_size: rat(10, 1),
        task_cost: rat(10, 1),
    }
}

// ---------------------------------------------------------------------------
// Paper instances
// ---------------------------------------------------------------------------

/// The exact toy scatter platform of Figure 2.
///
/// Five nodes: the source `Ps`, two relays `Pa`, `Pb` and two targets `P0`,
/// `P1`.  Edge costs are those printed on Figure 2(a): `c(Ps,Pa) = c(Ps,Pb) =
/// 1`, `c(Pa,P0) = 2/3`, `c(Pb,P0) = c(Pb,P1) = 4/3`.  The optimal steady-state
/// throughput is `1/2` (one scatter every two time-units) with a period-12
/// integer schedule.
pub fn figure2() -> ScatterInstance {
    let mut p = Platform::new();
    let ps = p.add_node("Ps", rat(1, 1));
    let pa = p.add_node("Pa", rat(1, 1));
    let pb = p.add_node("Pb", rat(1, 1));
    let p0 = p.add_node("P0", rat(1, 1));
    let p1 = p.add_node("P1", rat(1, 1));
    p.add_edge(ps, pa, rat(1, 1));
    p.add_edge(ps, pb, rat(1, 1));
    p.add_edge(pa, p0, rat(2, 3));
    p.add_edge(pb, p0, rat(4, 3));
    p.add_edge(pb, p1, rat(4, 3));
    ScatterInstance { platform: p, source: ps, targets: vec![p0, p1] }
}

/// The exact toy reduce platform of Figure 6.
///
/// Three fully connected processors with unit link costs; every processor can
/// process one task per time-unit except node 0 which processes two.  All
/// messages have size 1, the target is node 0.  The optimal steady-state
/// throughput is 1 (three reductions every three time-units), achieved with
/// the two reduction trees of Figure 7 (weights 1/3 and 2/3).
pub fn figure6() -> ReduceInstance {
    let mut p = Platform::new();
    let p0 = p.add_node("P0", rat(2, 1));
    let p1 = p.add_node("P1", rat(1, 1));
    let p2 = p.add_node("P2", rat(1, 1));
    p.add_link(p0, p1, rat(1, 1));
    p.add_link(p0, p2, rat(1, 1));
    p.add_link(p1, p2, rat(1, 1));
    ReduceInstance {
        platform: p,
        participants: vec![p0, p1, p2],
        target: p0,
        message_size: rat(1, 1),
        task_cost: rat(1, 1),
    }
}

/// A Figure-9-like Tiers platform: 14 nodes, 6 routers and 8 LAN compute
/// hosts with the node speeds published in the paper (15, 55, 79, 75, 92, 38,
/// 64, 17 for logical indices 0..7), target = logical index 4 (the fastest
/// host, node 6 in the paper's numbering), message size 10 and task cost 10.
///
/// The paper's exact link costs cannot be recovered from the published
/// figure, so the hierarchy uses representative costs: a fast WAN core
/// (1/20 per unit), MAN uplinks (1/10) and slower LAN links (1/5).  See
/// DESIGN.md ("substitutions") and EXPERIMENTS.md for the measured throughput
/// on this substituted instance.
pub fn figure9() -> ReduceInstance {
    let mut p = Platform::new();
    // Routers 0..5: WAN core 0,1,2 and MAN routers 3,4,5.
    let wan0 = p.add_router("wan0");
    let wan1 = p.add_router("wan1");
    let wan2 = p.add_router("wan2");
    let man3 = p.add_router("man3");
    let man4 = p.add_router("man4");
    let man5 = p.add_router("man5");
    let wan_cost = rat(1, 20);
    let man_cost = rat(1, 10);
    let lan_cost = rat(1, 5);
    p.add_link(wan0, wan1, wan_cost.clone());
    p.add_link(wan1, wan2, wan_cost.clone());
    p.add_link(wan2, wan0, wan_cost);
    p.add_link(wan0, man3, man_cost.clone());
    p.add_link(wan1, man4, man_cost.clone());
    p.add_link(wan2, man5, man_cost);

    // LAN hosts: (paper node id, logical index, speed, attached MAN router).
    // Speeds are the published ones; the logical order below reproduces the
    // paper's mapping  node 11 -> index 0, node 8 -> 1, node 13 -> 2,
    // node 9 -> 3, node 6 -> 4, node 12 -> 5, node 7 -> 6, node 10 -> 7.
    let host6 = p.add_node("node6", rat(92, 1)); // index 4, target
    let host7 = p.add_node("node7", rat(64, 1)); // index 6
    let host8 = p.add_node("node8", rat(55, 1)); // index 1
    let host9 = p.add_node("node9", rat(75, 1)); // index 3
    let host10 = p.add_node("node10", rat(17, 1)); // index 7
    let host11 = p.add_node("node11", rat(15, 1)); // index 0
    let host12 = p.add_node("node12", rat(38, 1)); // index 5
    let host13 = p.add_node("node13", rat(79, 1)); // index 2

    p.add_link(man3, host6, lan_cost.clone());
    p.add_link(man3, host7, lan_cost.clone());
    p.add_link(man3, host13, lan_cost.clone());
    p.add_link(man4, host8, lan_cost.clone());
    p.add_link(man4, host9, lan_cost.clone());
    p.add_link(man5, host10, lan_cost.clone());
    p.add_link(man5, host11, lan_cost.clone());
    p.add_link(man5, host12, lan_cost);

    // Participants in logical order 0..7.
    let participants = vec![host11, host8, host13, host9, host6, host12, host7, host10];
    ReduceInstance {
        platform: p,
        participants,
        target: host6,
        message_size: rat(10, 1),
        task_cost: rat(10, 1),
    }
}

/// The 3-processor clique used to introduce reduction trees in Figure 5.
pub fn figure5() -> ReduceInstance {
    let (p, nodes) = clique(3, rat(1, 1));
    ReduceInstance {
        platform: p,
        participants: nodes.clone(),
        target: nodes[0],
        message_size: rat(1, 1),
        task_cost: rat(1, 1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let (p, center, leaves) = star(4, rat(1, 2));
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_edges(), 8);
        assert_eq!(p.out_edges(center).len(), 4);
        for &l in &leaves {
            assert!(p.is_reachable(center, l));
            assert!(p.is_reachable(l, center));
        }
        assert!(p.validate().is_ok());
    }

    #[test]
    fn heterogeneous_star_costs() {
        let costs = vec![rat(1, 1), rat(1, 2), rat(1, 3)];
        let (p, center, leaves) = heterogeneous_star(&costs);
        for (i, &l) in leaves.iter().enumerate() {
            let e = p.edge_between(center, l).unwrap();
            assert_eq!(p.edge(e).cost, costs[i]);
        }
    }

    #[test]
    fn chain_and_grid_and_tree() {
        let (c, nodes) = chain(5, rat(1, 1));
        assert_eq!(c.num_edges(), 8);
        assert!(c.is_reachable(nodes[0], nodes[4]));

        let (g, ids) = grid(3, 4, rat(1, 1));
        assert_eq!(g.num_nodes(), 12);
        assert!(g.is_reachable(ids[0][0], ids[2][3]));
        assert_eq!(g.num_edges(), 2 * (3 * 3 + 2 * 4));

        let (t, root, all) = binary_tree(3, rat(1, 1));
        assert_eq!(all.len(), 15);
        assert_eq!(t.num_nodes(), 15);
        for &n in &all {
            assert!(t.is_reachable(root, n));
        }
    }

    #[test]
    fn clique_is_complete() {
        let (p, nodes) = clique(4, rat(1, 1));
        assert_eq!(p.num_edges(), 4 * 3);
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    assert!(p.edge_between(a, b).is_some());
                }
            }
        }
    }

    #[test]
    fn random_connected_is_connected_and_valid() {
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = RandomConfig { nodes: 10, ..Default::default() };
            let p = random_connected(&config, &mut rng);
            assert!(p.validate().is_ok());
            for a in p.node_ids() {
                for b in p.node_ids() {
                    assert!(p.is_reachable(a, b), "{a} cannot reach {b} (seed {seed})");
                }
            }
        }
    }

    #[test]
    fn tiers_structure() {
        let mut rng = StdRng::seed_from_u64(42);
        let config = TiersConfig::default();
        let t = tiers(&config, &mut rng);
        assert!(t.platform.validate().is_ok());
        assert_eq!(t.hosts.len(), config.wan_routers * config.man_per_wan * config.lan_per_man);
        // Routers cannot compute, hosts can.
        for &r in &t.routers {
            assert!(!t.platform.node(r).can_compute());
        }
        for &h in &t.hosts {
            assert!(t.platform.node(h).can_compute());
        }
        // Fully connected (symmetric links everywhere).
        for &a in &t.hosts {
            for &b in &t.hosts {
                assert!(t.platform.is_reachable(a, b));
            }
        }
    }

    #[test]
    fn tiers_instances() {
        let inst = tiers_reduce_instance(&TiersConfig::default(), 7);
        assert!(inst.participants.contains(&inst.target));
        assert_eq!(inst.message_size, rat(10, 1));
        let s = tiers_scatter_instance(&TiersConfig::default(), 7);
        assert!(!s.targets.contains(&s.source));
        assert!(!s.targets.is_empty());
    }

    #[test]
    fn clustered_is_connected_and_valid() {
        for seed in 0..3 {
            let mut rng = StdRng::seed_from_u64(seed);
            let config =
                ClusteredConfig { clusters: 5, hosts_per_cluster: 4, ..Default::default() };
            let cp = clustered(&config, &mut rng);
            assert!(cp.platform.validate().is_ok());
            assert_eq!(cp.routers.len(), 5);
            assert_eq!(cp.hosts().len(), 20);
            assert_eq!(cp.platform.num_nodes(), 25);
            for &r in &cp.routers {
                assert!(!cp.platform.node(r).can_compute());
            }
            let hosts = cp.hosts();
            for &h in &hosts {
                assert!(cp.platform.node(h).can_compute());
            }
            // Every host reaches every other host (over the backbone cycle).
            for &a in &hosts {
                for &b in &hosts {
                    assert!(cp.platform.is_reachable(a, b), "{a} cannot reach {b} (seed {seed})");
                }
            }
        }
    }

    #[test]
    fn clustered_sizing_and_spread() {
        for &total in &[100usize, 500, 1000] {
            let config = ClusteredConfig::with_total_nodes(total);
            let mut rng = StdRng::seed_from_u64(1);
            let cp = clustered(&config, &mut rng);
            let nodes = cp.platform.num_nodes();
            assert!(nodes <= total, "{nodes} nodes exceeds the requested {total}");
            assert!(nodes * 10 >= total * 9, "{nodes} nodes is far below the requested {total}");
            // A bounded spread-out pick touches many distinct clusters.
            let picked = cp.spread_hosts(8);
            assert_eq!(picked.len(), 8);
            let distinct_clusters = cp
                .clusters
                .iter()
                .filter(|cluster| cluster.iter().any(|h| picked.contains(h)))
                .count();
            assert_eq!(distinct_clusters, 8.min(cp.clusters.len()));
        }
    }

    #[test]
    fn clustered_instances() {
        let config = ClusteredConfig { clusters: 6, hosts_per_cluster: 3, ..Default::default() };
        let s = clustered_scatter_instance(&config, 8, 11);
        assert_eq!(s.targets.len(), 8);
        assert!(!s.targets.contains(&s.source));
        for &t in &s.targets {
            assert!(s.platform.is_reachable(s.source, t));
        }
        let r = clustered_reduce_instance(&config, 8, 11);
        assert_eq!(r.participants.len(), 8);
        assert!(r.participants.contains(&r.target));
        for &h in &r.participants {
            assert!(r.platform.is_reachable(h, r.target));
        }
    }

    #[test]
    fn figure2_matches_paper() {
        let inst = figure2();
        let p = &inst.platform;
        assert_eq!(p.num_nodes(), 5);
        assert_eq!(p.num_edges(), 5);
        assert_eq!(inst.targets.len(), 2);
        // Costs from the figure.
        let names: Vec<_> = p.node_ids().map(|n| p.node(n).name.clone()).collect();
        assert_eq!(names, vec!["Ps", "Pa", "Pb", "P0", "P1"]);
        let cost =
            |a: usize, b: usize| p.edge(p.edge_between(NodeId(a), NodeId(b)).unwrap()).cost.clone();
        assert_eq!(cost(0, 1), rat(1, 1));
        assert_eq!(cost(0, 2), rat(1, 1));
        assert_eq!(cost(1, 3), rat(2, 3));
        assert_eq!(cost(2, 3), rat(4, 3));
        assert_eq!(cost(2, 4), rat(4, 3));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn figure6_matches_paper() {
        let inst = figure6();
        assert_eq!(inst.platform.num_nodes(), 3);
        assert_eq!(inst.platform.num_edges(), 6);
        assert_eq!(inst.participants.len(), 3);
        assert_eq!(inst.target, inst.participants[0]);
        assert_eq!(inst.platform.node(inst.target).speed, rat(2, 1));
        assert_eq!(inst.platform.node(inst.participants[1]).speed, rat(1, 1));
    }

    #[test]
    fn figure9_structure() {
        let inst = figure9();
        let p = &inst.platform;
        assert_eq!(p.num_nodes(), 14);
        assert_eq!(inst.participants.len(), 8);
        assert!(p.validate().is_ok());
        // Published speeds in logical order.
        let speeds: Vec<i64> =
            inst.participants.iter().map(|&n| p.node(n).speed.numer().to_i64().unwrap()).collect();
        assert_eq!(speeds, vec![15, 55, 79, 75, 92, 38, 64, 17]);
        // Target is logical index 4 and the fastest host.
        assert_eq!(inst.target, inst.participants[4]);
        // All participants can reach the target.
        for &h in &inst.participants {
            assert!(p.is_reachable(h, inst.target));
        }
        // Routers do not compute.
        assert_eq!(p.compute_nodes().len(), 8);
    }

    #[test]
    fn figure5_clique() {
        let inst = figure5();
        assert_eq!(inst.platform.num_nodes(), 3);
        assert_eq!(inst.platform.num_edges(), 6);
    }
}
