//! Heterogeneous platform model and topology generators.
//!
//! The paper models the target "grid" platform as an edge-weighted directed
//! graph `G = (V, E, c)` operated under the one-port, full-overlap model (§2).
//! This crate provides:
//!
//! * [`graph`] — the [`Platform`] graph type: nodes with compute speeds,
//!   directed edges with per-unit transfer costs, validation, reachability,
//!   shortest paths, and a small textual/DOT serialization;
//! * [`generators`] — regular topologies (star, chain, clique, grid, tree),
//!   random and Tiers-like hierarchical generators, and the exact platform
//!   instances used by the paper's figures (Figure 2 scatter toy, Figure 6
//!   reduce toy, Figure 9-like Tiers platform).
//!
//! # Example
//!
//! ```
//! use steady_platform::generators::figure2;
//!
//! let instance = figure2();
//! assert_eq!(instance.platform.num_nodes(), 5);
//! assert_eq!(instance.targets.len(), 2);
//! assert!(instance.platform.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod generators;
pub mod graph;
pub mod topologies;

pub use generators::{
    figure2, figure5, figure6, figure9, GossipInstance, RandomConfig, ReduceInstance,
    ScatterInstance, TiersConfig, TiersPlatform,
};
pub use graph::{Edge, EdgeId, Node, NodeId, Platform, PlatformError};
pub use topologies::{
    FatTreeConfig, FatTreePlatform, GatherInstance, GeometricConfig, PrefixInstance,
};
