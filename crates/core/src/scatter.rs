//! Series of Scatters (§3): LP formulation `SSSP(G)`, exact solution and
//! periodic schedule construction.
//!
//! A scatter involves a source processor `P_source` and a set of targets
//! `{P_t}`: the source holds a distinct message for every target.  In the
//! *series* (pipelined) version the source keeps emitting fresh messages for
//! every target and the goal is to maximize the common throughput `TP` —
//! the number of scatter operations initiated per time-unit in steady state.
//!
//! The optimal throughput is given by the linear program `SSSP(G)` built from
//! the one-port constraints (2)–(3), the edge-occupation definition (4), the
//! conservation law (5) and the throughput equalities (6).  Solving it in
//! rational arithmetic and scaling by the least common multiple of the
//! denominators yields an integer number of messages per period, which the
//! weighted-matching decomposition of [`crate::coloring`] turns into an
//! explicit one-port-feasible periodic schedule (§3.3).

use std::collections::BTreeMap;

use steady_lp::{LinearExpr, LpProblem, Sense, VarId};
use steady_platform::{EdgeId, NodeId, Platform, ScatterInstance};
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

use crate::coloring::{decompose, BipartiteLoad};
use crate::error::CoreError;
use crate::schedule::{CommSlot, Payload, PayloadQueue, PeriodicSchedule, Transfer};

/// A pipelined scatter problem: platform, source and targets.
#[derive(Debug, Clone)]
pub struct ScatterProblem {
    platform: Platform,
    source: NodeId,
    targets: Vec<NodeId>,
}

/// Mapping from LP variables back to scatter quantities, exposed so tests and
/// benchmarks can inspect the raw linear program.
#[derive(Debug, Clone)]
pub struct ScatterVars {
    /// `send[(edge, target_index)]` variables.
    pub send: BTreeMap<(EdgeId, usize), VarId>,
    /// The throughput variable `TP`.
    pub throughput: VarId,
}

/// Exact steady-state solution of a scatter problem.
#[derive(Debug, Clone)]
pub struct ScatterSolution {
    throughput: Ratio,
    /// `flows[(edge, target_index)]` = messages of type `m_target` crossing
    /// `edge` per time-unit.
    flows: BTreeMap<(EdgeId, usize), Ratio>,
}

impl ScatterProblem {
    /// Builds and validates a scatter problem.
    pub fn new(
        platform: Platform,
        source: NodeId,
        targets: Vec<NodeId>,
    ) -> Result<Self, CoreError> {
        platform.validate()?;
        if targets.is_empty() {
            return Err(CoreError::EmptyProblem);
        }
        if targets.contains(&source) {
            return Err(CoreError::SourceIsTarget { node: source });
        }
        let mut seen = Vec::new();
        for &t in &targets {
            if seen.contains(&t) {
                return Err(CoreError::DuplicateParticipant { node: t });
            }
            seen.push(t);
            if !platform.is_reachable(source, t) {
                return Err(CoreError::Unreachable { node: t });
            }
        }
        Ok(ScatterProblem { platform, source, targets })
    }

    /// Builds a problem from a generated [`ScatterInstance`].
    pub fn from_instance(instance: ScatterInstance) -> Result<Self, CoreError> {
        ScatterProblem::new(instance.platform, instance.source, instance.targets)
    }

    /// The platform graph.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The source processor.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The target processors.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Builds the `SSSP(G)` linear program.
    pub fn build_lp(&self) -> (LpProblem, ScatterVars) {
        let mut lp = LpProblem::maximize();
        let platform = &self.platform;

        let mut send = BTreeMap::new();
        for e in platform.edge_ids() {
            let edge = platform.edge(e);
            for (ti, t) in self.targets.iter().enumerate() {
                let v = lp.add_var(format!("send[{}->{},m{}]", edge.from, edge.to, t));
                send.insert((e, ti), v);
            }
        }
        let throughput = lp.add_var("TP");
        lp.set_objective(throughput, Ratio::one());

        // One-port constraints (2) and (3): occupation of each node's
        // outgoing and incoming port within one time-unit.
        for n in platform.node_ids() {
            let mut out_expr = LinearExpr::new();
            for &e in platform.out_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for ti in 0..self.targets.len() {
                    out_expr.add_term(send[&(e, ti)], cost.clone());
                }
            }
            if !out_expr.is_empty() {
                lp.add_constraint(format!("one-port-out[{n}]"), out_expr, Sense::Le, Ratio::one());
            }
            let mut in_expr = LinearExpr::new();
            for &e in platform.in_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for ti in 0..self.targets.len() {
                    in_expr.add_term(send[&(e, ti)], cost.clone());
                }
            }
            if !in_expr.is_empty() {
                lp.add_constraint(format!("one-port-in[{n}]"), in_expr, Sense::Le, Ratio::one());
            }
        }

        // Conservation law (5): every message of type m_k entering a node
        // that is neither the source nor P_k leaves it.
        for n in platform.node_ids() {
            if n == self.source {
                continue;
            }
            for (ti, &t) in self.targets.iter().enumerate() {
                if n == t {
                    continue;
                }
                let mut expr = LinearExpr::new();
                for &e in platform.in_edges(n) {
                    expr.add_term(send[&(e, ti)], Ratio::one());
                }
                for &e in platform.out_edges(n) {
                    expr.add_term(send[&(e, ti)], -Ratio::one());
                }
                if !expr.is_empty() {
                    lp.add_constraint(
                        format!("conservation[{n},m{t}]"),
                        expr,
                        Sense::Eq,
                        Ratio::zero(),
                    );
                }
            }
        }

        // A target has no reason to re-emit messages of its own type; without
        // this restriction the LP could let a target bounce its own messages
        // through a neighbour and count them again on arrival (conservation is
        // not stated at the destination of a commodity).  Pinning these
        // variables to zero is WLOG and keeps constraint (6) physical.
        for (ti, &t) in self.targets.iter().enumerate() {
            for &e in platform.out_edges(t) {
                lp.add_constraint(
                    format!("no-reemit[{t}]"),
                    LinearExpr::var(send[&(e, ti)]),
                    Sense::Eq,
                    Ratio::zero(),
                );
            }
        }

        // Throughput equalities (6): each target receives TP messages of its
        // own type per time-unit.
        for (ti, &t) in self.targets.iter().enumerate() {
            let mut expr = LinearExpr::new();
            for &e in platform.in_edges(t) {
                expr.add_term(send[&(e, ti)], Ratio::one());
            }
            expr.add_term(throughput, -Ratio::one());
            lp.add_constraint(format!("throughput[m{t}]"), expr, Sense::Eq, Ratio::zero());
        }

        (lp, ScatterVars { send, throughput })
    }

    /// Solves `SSSP(G)` exactly and returns the steady-state solution.
    pub fn solve(&self) -> Result<ScatterSolution, CoreError> {
        crate::problem::solve_steady(self)
    }
}

impl crate::problem::SteadyProblem for ScatterProblem {
    type Vars = ScatterVars;
    type Solution = ScatterSolution;
    const KIND: &'static str = "scatter";

    fn formulate(&self) -> (LpProblem, ScatterVars) {
        self.build_lp()
    }

    fn interpret(&self, vars: &ScatterVars, values: &[Ratio]) -> ScatterSolution {
        ScatterSolution {
            throughput: values[vars.throughput.index()].clone(),
            flows: crate::problem::positive_values(&vars.send, values),
        }
    }
}

impl ScatterSolution {
    /// Builds a solution directly from raw flows (used by the paper-solution
    /// tests and by the fixed-period approximation, which rounds the flows of
    /// an optimal solution down to a smaller period).
    pub fn from_flows(throughput: Ratio, flows: BTreeMap<(EdgeId, usize), Ratio>) -> Self {
        ScatterSolution { throughput, flows }
    }

    /// Optimal steady-state throughput `TP(G)` (scatter operations per time-unit).
    pub fn throughput(&self) -> &Ratio {
        &self.throughput
    }

    /// Messages of type `m_{targets[target_index]}` crossing `edge` per time-unit.
    pub fn flow(&self, edge: EdgeId, target_index: usize) -> Ratio {
        self.flows.get(&(edge, target_index)).cloned().unwrap_or_else(Ratio::zero)
    }

    /// All non-zero flows.
    pub fn flows(&self) -> &BTreeMap<(EdgeId, usize), Ratio> {
        &self.flows
    }

    /// Occupation `s(P_i -> P_j)` of an edge: total transfer time per time-unit.
    pub fn edge_occupation(&self, problem: &ScatterProblem, edge: EdgeId) -> Ratio {
        let cost = &problem.platform().edge(edge).cost;
        let total: Ratio = (0..problem.targets().len()).map(|ti| self.flow(edge, ti)).sum();
        &total * cost
    }

    /// The minimal integer period: the least common multiple of the
    /// denominators of all flows and of the throughput.
    pub fn period(&self) -> BigInt {
        let mut values: Vec<Ratio> = self.flows.values().cloned().collect();
        values.push(self.throughput.clone());
        lcm_of_denominators(&values)
    }

    /// Exhaustively re-checks every constraint of `SSSP(G)` on this solution.
    pub fn verify(&self, problem: &ScatterProblem) -> Result<(), String> {
        let platform = problem.platform();
        for ((e, ti), v) in &self.flows {
            if v.is_negative() {
                return Err(format!("negative flow on edge {:?} commodity {ti}", e));
            }
            if *ti >= problem.targets().len() {
                return Err(format!("unknown commodity index {ti}"));
            }
            if e.index() >= platform.num_edges() {
                return Err(format!("unknown edge index {}", e.index()));
            }
        }
        // One-port.
        for n in platform.node_ids() {
            let mut out = Ratio::zero();
            for &e in platform.out_edges(n) {
                out += self.edge_occupation(problem, e);
            }
            if out > Ratio::one() {
                return Err(format!("{n} emits for {out} > 1 per time-unit"));
            }
            let mut inc = Ratio::zero();
            for &e in platform.in_edges(n) {
                inc += self.edge_occupation(problem, e);
            }
            if inc > Ratio::one() {
                return Err(format!("{n} receives for {inc} > 1 per time-unit"));
            }
        }
        // Conservation.
        for n in platform.node_ids() {
            if n == problem.source() {
                continue;
            }
            for (ti, &t) in problem.targets().iter().enumerate() {
                if n == t {
                    continue;
                }
                let inflow: Ratio = platform.in_edges(n).iter().map(|&e| self.flow(e, ti)).sum();
                let outflow: Ratio = platform.out_edges(n).iter().map(|&e| self.flow(e, ti)).sum();
                if inflow != outflow {
                    return Err(format!(
                        "conservation violated at {n} for m{t}: in {inflow}, out {outflow}"
                    ));
                }
            }
        }
        // Throughput.
        for (ti, &t) in problem.targets().iter().enumerate() {
            // A target never re-emits its own messages (see build_lp).
            for &e in platform.out_edges(t) {
                if self.flow(e, ti).is_positive() {
                    return Err(format!("target {t} re-emits messages of its own type"));
                }
            }
            let received: Ratio = platform.in_edges(t).iter().map(|&e| self.flow(e, ti)).sum();
            if received != self.throughput {
                return Err(format!(
                    "target {t} receives {received} instead of TP = {}",
                    self.throughput
                ));
            }
        }
        Ok(())
    }

    /// Builds the explicit periodic schedule achieving this solution's
    /// throughput (§3.3): scale to the integer period, decompose the per-link
    /// load into matchings, and split the per-link message mix across the
    /// matchings that involve the link.
    pub fn build_schedule(&self, problem: &ScatterProblem) -> Result<PeriodicSchedule, CoreError> {
        let platform = problem.platform();
        let period_int = self.period();
        let period = Ratio::from(period_int);

        // Per (sender, receiver) pair: the total duration and the FIFO of
        // (payload, count, duration) items to distribute over the matchings.
        let mut load = BipartiteLoad::new();
        let mut queues: BTreeMap<(usize, usize), PayloadQueue> = BTreeMap::new();
        for ((e, ti), flow) in &self.flows {
            let edge = platform.edge(*e);
            let count = flow * &period;
            let duration = &count * &edge.cost;
            if !duration.is_positive() {
                continue;
            }
            let key = (edge.from.index(), edge.to.index());
            load.add(key.0, key.1, duration.clone());
            queues.entry(key).or_default().push((
                Payload::Scatter { destination: problem.targets()[*ti] },
                count,
                duration,
            ));
        }

        let steps = decompose(&load)?;
        let mut slots = Vec::with_capacity(steps.len());
        for step in &steps {
            let mut transfers = Vec::new();
            for &edge_idx in &step.edges {
                let le = &load.edges[edge_idx];
                let key = (le.sender, le.receiver);
                let queue = queues.get_mut(&key).expect("load edge without queue");
                // Fill `step.duration` time with items from the queue,
                // splitting the last one if needed (Figure 4(a) allows split
                // messages; callers can re-scale the period to avoid splits).
                let mut remaining = step.duration.clone();
                while remaining.is_positive() {
                    let Some((payload, count, duration)) = queue.first_mut() else {
                        break;
                    };
                    let from = NodeId(key.0);
                    let to = NodeId(key.1);
                    if *duration <= remaining {
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: count.clone(),
                            duration: duration.clone(),
                        });
                        remaining = &remaining - &*duration;
                        queue.remove(0);
                    } else {
                        // Split: send the fraction that fits.
                        let fraction = &remaining / &*duration;
                        let part_count = count.clone() * fraction.clone();
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: part_count.clone(),
                            duration: remaining.clone(),
                        });
                        *count = &*count - &part_count;
                        *duration = &*duration - &remaining;
                        remaining = Ratio::zero();
                    }
                }
            }
            slots.push(CommSlot { duration: step.duration.clone(), transfers });
        }

        let schedule = PeriodicSchedule {
            period: period.clone(),
            operations_per_period: &self.throughput * &period,
            slots,
            computations: Vec::new(),
        };
        Ok(schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure2};
    use steady_rational::rat;

    fn figure2_problem() -> ScatterProblem {
        ScatterProblem::from_instance(figure2()).unwrap()
    }

    #[test]
    fn figure2_throughput_is_one_half() {
        let problem = figure2_problem();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 2));
        sol.verify(&problem).unwrap();
    }

    #[test]
    fn figure2_period_divides_twelve() {
        // The paper uses period 12; the minimal period must divide it.
        let problem = figure2_problem();
        let sol = problem.solve().unwrap();
        let period = sol.period();
        let twelve = steady_rational::BigInt::from(12i64);
        let (_, rem) = twelve.div_rem(&period);
        assert!(rem.is_zero(), "period {period} does not divide 12");
    }

    #[test]
    fn figure2_source_port_is_saturated() {
        // The optimum is limited by the source's outgoing port: occupation 1.
        let problem = figure2_problem();
        let sol = problem.solve().unwrap();
        let platform = problem.platform();
        let source = problem.source();
        let total: Ratio =
            platform.out_edges(source).iter().map(|&e| sol.edge_occupation(&problem, e)).sum();
        assert_eq!(total, rat(1, 1));
    }

    #[test]
    fn figure2_schedule_is_valid_and_achieves_throughput() {
        let problem = figure2_problem();
        let sol = problem.solve().unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), rat(1, 2));
        // One scatter every two time-units: TP * T operations per period.
        let expected_ops = &Ratio::from(sol.period()) * sol.throughput();
        assert_eq!(schedule.operations_per_period, expected_ops);
        // Every message type reaches its target with the right multiplicity.
        let totals = schedule.transfer_totals();
        let mut delivered_p0 = Ratio::zero();
        let mut delivered_p1 = Ratio::zero();
        for ((_, to, payload), count) in &totals {
            if let Payload::Scatter { destination } = payload {
                if to == destination {
                    if destination.index() == 3 {
                        delivered_p0 += count;
                    } else if destination.index() == 4 {
                        delivered_p1 += count;
                    }
                }
            }
        }
        assert_eq!(delivered_p0, expected_ops);
        assert_eq!(delivered_p1, expected_ops);
    }

    #[test]
    fn figure2_paper_solution_is_feasible_with_same_throughput() {
        // The per-edge rates printed on Figure 2(b) (for a period of 12):
        // Ps->Pa: 3 m0, Ps->Pb: 3 m0 + 6 m1, Pa->P0: 3 m0, Pb->P0: 3 m0,
        // Pb->P1: 6 m1.  They form a feasible steady-state solution with the
        // same optimal throughput 1/2, using both routes towards P0.  The LP
        // may return a different (equally optimal) vertex, so we verify the
        // paper's solution explicitly rather than requiring the solver to
        // reproduce that exact vertex.
        let problem = figure2_problem();
        let platform = problem.platform();
        let edge = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        let mut flows = BTreeMap::new();
        flows.insert((edge(0, 1), 0usize), rat(3, 12));
        flows.insert((edge(0, 2), 0), rat(3, 12));
        flows.insert((edge(0, 2), 1), rat(6, 12));
        flows.insert((edge(1, 3), 0), rat(3, 12));
        flows.insert((edge(2, 3), 0), rat(3, 12));
        flows.insert((edge(2, 4), 1), rat(6, 12));
        let paper = ScatterSolution { throughput: rat(1, 2), flows };
        paper.verify(&problem).unwrap();
        // And it is optimal: the LP optimum matches.
        let sol = problem.solve().unwrap();
        assert_eq!(sol.throughput(), paper.throughput());
        // The paper's occupations (Figure 2(c), scaled to a period of 12).
        assert_eq!(paper.edge_occupation(&problem, edge(0, 1)) * rat(12, 1), rat(3, 1));
        assert_eq!(paper.edge_occupation(&problem, edge(0, 2)) * rat(12, 1), rat(9, 1));
        assert_eq!(paper.edge_occupation(&problem, edge(1, 3)) * rat(12, 1), rat(2, 1));
        assert_eq!(paper.edge_occupation(&problem, edge(2, 3)) * rat(12, 1), rat(4, 1));
        assert_eq!(paper.edge_occupation(&problem, edge(2, 4)) * rat(12, 1), rat(8, 1));
        // The paper's schedule (Figure 4) can be rebuilt from that solution.
        let schedule = paper.build_schedule(&problem).unwrap();
        schedule.validate(platform).unwrap();
        assert_eq!(schedule.period, rat(4, 1));
        assert_eq!(schedule.throughput(), rat(1, 2));
    }

    #[test]
    fn star_scatter_throughput() {
        // Star with k identical leaves and cost c: the source port serializes
        // all k messages, so TP = 1 / (k * c).
        for k in 1..5 {
            let (p, center, leaves) = generators::star(k, rat(1, 2));
            let problem = ScatterProblem::new(p, center, leaves).unwrap();
            let sol = problem.solve().unwrap();
            assert_eq!(*sol.throughput(), rat(2, k as i64));
            sol.verify(&problem).unwrap();
            let schedule = sol.build_schedule(&problem).unwrap();
            schedule.validate(problem.platform()).unwrap();
            assert_eq!(schedule.throughput(), rat(2, k as i64));
        }
    }

    #[test]
    fn heterogeneous_star_scatter() {
        // Leaves with costs 1 and 1/2: TP = 1 / (1 + 1/2) = 2/3.
        let (p, center, leaves) = generators::heterogeneous_star(&[rat(1, 1), rat(1, 2)]);
        let problem = ScatterProblem::new(p, center, leaves).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(2, 3));
    }

    #[test]
    fn chain_scatter_bounded_by_first_hop() {
        // On a chain source -> a -> b, messages for both targets cross the
        // first link: TP = 1/2 with unit costs.
        let (p, nodes) = generators::chain(3, rat(1, 1));
        let problem = ScatterProblem::new(p, nodes[0], vec![nodes[1], nodes[2]]).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 2));
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
    }

    #[test]
    fn invalid_problems_are_rejected() {
        let inst = figure2();
        // Source in targets.
        assert!(matches!(
            ScatterProblem::new(inst.platform.clone(), inst.source, vec![inst.source]),
            Err(CoreError::SourceIsTarget { .. })
        ));
        // Empty targets.
        assert!(matches!(
            ScatterProblem::new(inst.platform.clone(), inst.source, vec![]),
            Err(CoreError::EmptyProblem)
        ));
        // Duplicate target.
        assert!(matches!(
            ScatterProblem::new(
                inst.platform.clone(),
                inst.source,
                vec![inst.targets[0], inst.targets[0]]
            ),
            Err(CoreError::DuplicateParticipant { .. })
        ));
        // Unreachable target: P1 cannot reach Ps (edges point away from Ps).
        assert!(matches!(
            ScatterProblem::new(inst.platform.clone(), inst.targets[1], vec![inst.source]),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn lp_structure_is_reasonable() {
        let problem = figure2_problem();
        let (lp, vars) = problem.build_lp();
        // 5 edges x 2 commodities + TP.
        assert_eq!(lp.num_vars(), 11);
        assert_eq!(vars.send.len(), 10);
        assert!(lp.num_constraints() > 5);
        let dump = lp.dump();
        assert!(dump.contains("one-port-out"));
        assert!(dump.contains("conservation"));
        assert!(dump.contains("throughput"));
    }

    #[test]
    fn solution_flow_accessors() {
        let problem = figure2_problem();
        let sol = problem.solve().unwrap();
        assert!(!sol.flows().is_empty());
        // Unknown edge/commodity combinations read as zero flow.
        assert_eq!(sol.flow(EdgeId(0), 57), Ratio::zero());
    }
}
