//! The collective-generic steady-state pipeline: build → solve → interpret.
//!
//! Every collective in this crate ([`crate::scatter`], [`crate::gather`],
//! [`crate::gossip`], [`crate::reduce`], [`crate::prefix`]) follows the same
//! three-step flow: formulate the steady-state LP, solve it exactly, and read
//! the optimal variable values back into domain quantities (flows, task
//! rates, throughput).  [`SteadyProblem`] captures the two collective-specific
//! steps and [`solve_steady`] / [`solve_steady_warm`] provide the one shared
//! solve driver, so the LP plumbing — solver selection, warm-start seeding,
//! error mapping, pivot accounting — exists exactly once.
//!
//! The warm path is what the serving layer builds on: a [`SolvedBasis`] kept
//! from a previous solve of a *structurally identical* problem (same
//! topology and roles, possibly different edge costs) seeds the simplex,
//! which then re-optimizes from that vertex instead of from scratch.  The
//! returned [`SolveReport`] says whether the seed took and how many pivots
//! the solve spent, so callers can measure the savings.

use std::collections::BTreeMap;

use steady_lp::{LpProblem, VarId};
use steady_rational::Ratio;

use crate::error::CoreError;

pub use steady_lp::{Certificate, SolveHealth, SolvedBasis};

/// A steady-state collective problem that can be formulated as an LP and its
/// solution read back from the LP's optimal variable values.
///
/// Implementations provide the two collective-specific halves of the
/// pipeline; [`solve_steady`] supplies the shared middle.
pub trait SteadyProblem {
    /// Mapping from LP variables back to domain quantities.
    type Vars;
    /// Domain solution produced from the optimal LP values.
    type Solution;

    /// Short lowercase name of the collective kind (`"scatter"`, ...).
    const KIND: &'static str;

    /// Builds the steady-state LP and the variable map.
    fn formulate(&self) -> (LpProblem, Self::Vars);

    /// Reads the optimal LP values back into a domain solution.
    ///
    /// `values` holds one exact rational per LP variable, indexed by
    /// [`VarId`]; the method is pure interpretation and must not fail —
    /// every invariant it relies on is enforced by the LP's constraints.
    fn interpret(&self, vars: &Self::Vars, values: &[Ratio]) -> Self::Solution;
}

/// What one shared-driver solve cost and produced, besides the solution.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Total simplex pivots performed (both phases, all runs).
    pub iterations: usize,
    /// Pivots spent in phase 1 (feasibility search); the rest is phase 2.
    pub phase1_iterations: usize,
    /// `true` when a supplied basis installed cleanly and seeded the solve.
    pub warm_started: bool,
    /// Final basis, reusable to warm-start a structurally identical solve.
    pub basis: Option<SolvedBasis>,
    /// Basis refactorizations performed by the revised sparse solver
    /// (`0` whenever the LP ran on the dense tableau route).
    pub refactorizations: usize,
    /// How the exact optimum was validated by the solving pipeline.
    pub certificate: Certificate,
    /// Numeric-health aggregate of the solve (degenerate-pivot fraction,
    /// Bland switches, peak eta fill, fallback cause), folded from the
    /// solver's event stream — see [`steady_lp::instrument`].
    pub health: SolveHealth,
}

impl SolveReport {
    /// Per-phase pivot accounting, in the shape the observability layer
    /// records ([`steady_lp::SolveTrace`]).
    pub fn trace(&self) -> steady_lp::SolveTrace {
        steady_lp::SolveTrace {
            phase1_pivots: self.phase1_iterations,
            phase2_pivots: self.iterations - self.phase1_iterations,
            warm_started: self.warm_started,
        }
    }
}

/// Solves `problem` exactly through the shared pipeline.
pub fn solve_steady<P: SteadyProblem>(problem: &P) -> Result<P::Solution, CoreError> {
    solve_steady_warm(problem, None).map(|(solution, _)| solution)
}

/// Solves `problem` exactly, optionally warm-starting the simplex from a
/// basis kept from a structurally identical solve, and reports the cost.
///
/// Warm and cold solves return the same exact optimum — an unusable basis is
/// silently discarded (see [`steady_lp::solve_with_basis`]) — so a caller
/// can cache bases as aggressively as it likes without risking correctness.
pub fn solve_steady_warm<P: SteadyProblem>(
    problem: &P,
    warm: Option<&SolvedBasis>,
) -> Result<(P::Solution, SolveReport), CoreError> {
    solve_steady_warm_observed(problem, warm, &mut steady_lp::NoopObserver)
}

/// [`solve_steady_warm`] with a [`steady_lp::SolveObserver`] tap on the
/// underlying solver runs.  The report's [`SolveHealth`] is aggregated
/// regardless of the caller's observer (events are fanned out to both).
pub fn solve_steady_warm_observed<P: SteadyProblem, O: steady_lp::SolveObserver>(
    problem: &P,
    warm: Option<&SolvedBasis>,
    obs: &mut O,
) -> Result<(P::Solution, SolveReport), CoreError> {
    let (lp, vars) = problem.formulate();
    let mut health = steady_lp::HealthObserver::new();
    let sol = {
        let mut tap = steady_lp::Chain(&mut health, obs);
        steady_lp::solve_exact_auto_observed(&lp, warm, &mut tap)?
    };
    let report = SolveReport {
        iterations: sol.iterations,
        phase1_iterations: sol.phase1_iterations,
        warm_started: sol.warm_started,
        basis: sol.basis,
        refactorizations: sol.refactorizations,
        certificate: sol.certificate,
        health: health.into_health(),
    };
    Ok((problem.interpret(&vars, &sol.values), report))
}

/// Filters a variable map down to the strictly positive optimal values —
/// the shared "read the flows back" step of every `interpret`.
pub(crate) fn positive_values<K: Ord + Copy>(
    vars: &BTreeMap<K, VarId>,
    values: &[Ratio],
) -> BTreeMap<K, Ratio> {
    let mut out = BTreeMap::new();
    for (&key, &var) in vars {
        let v = values[var.index()].clone();
        if v.is_positive() {
            out.insert(key, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scatter::ScatterProblem;
    use steady_platform::generators::figure2;
    use steady_rational::rat;

    #[test]
    fn shared_driver_matches_the_inherent_solve() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let direct = problem.solve().unwrap();
        let (via_driver, report) = solve_steady_warm(&problem, None).unwrap();
        assert_eq!(via_driver.throughput(), direct.throughput());
        assert!(!report.warm_started);
        assert!(report.basis.is_some());
        assert_eq!(ScatterProblem::KIND, "scatter");
    }

    #[test]
    fn warm_start_reuses_the_basis_and_matches_cold() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let (cold, cold_report) = solve_steady_warm(&problem, None).unwrap();
        let basis = cold_report.basis.expect("cold solve yields a basis");
        let (warm, warm_report) = solve_steady_warm(&problem, Some(&basis)).unwrap();
        assert!(warm_report.warm_started);
        assert!(warm_report.iterations <= cold_report.iterations);
        assert_eq!(warm.throughput(), cold.throughput());
        assert_eq!(*warm.throughput(), rat(1, 2));
    }
}
