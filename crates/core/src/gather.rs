//! Series of Gathers: the dual of the Series of Scatters problem.
//!
//! In a gather operation every source processor `P_{s_i}` owns a distinct
//! message that must reach a single sink processor `P_sink`; in the *series*
//! version each source keeps emitting fresh messages and the goal is to
//! maximize the common steady-state throughput `TP` — the number of gather
//! operations completed per time-unit.
//!
//! The paper treats the gather/reduce family in §4; when no combining is
//! possible (the "reduction" operator is plain concatenation of full-size
//! messages) the problem degenerates to a multi-commodity flow that is exactly
//! the **transpose dual** of the scatter LP `SSSP(G)`: reversing every edge of
//! the platform swaps the one-port roles of emission and reception, so
//!
//! ```text
//! TP_gather(G, sources -> sink)  =  TP_scatter(Gᵀ, sink -> sources).
//! ```
//!
//! This module provides both a direct LP formulation (`SSG(G)`, mirroring
//! `SSSP(G)` with the commodity orientation reversed) and the explicit
//! transpose-duality bridge [`GatherProblem::dual_scatter`], which tests use to
//! cross-check the two routes; schedules are built with the same
//! weighted-matching decomposition as for the scatter.

use std::collections::BTreeMap;

use steady_lp::{LinearExpr, LpProblem, Sense, VarId};
use steady_platform::{EdgeId, GatherInstance, NodeId, Platform};
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

use crate::coloring::{decompose, BipartiteLoad};
use crate::error::CoreError;
use crate::scatter::ScatterProblem;
use crate::schedule::{CommSlot, Payload, PayloadQueue, PeriodicSchedule, Transfer};

/// A pipelined gather problem: platform, sources and sink.
#[derive(Debug, Clone)]
pub struct GatherProblem {
    platform: Platform,
    sources: Vec<NodeId>,
    sink: NodeId,
}

/// Mapping from LP variables back to gather quantities.
#[derive(Debug, Clone)]
pub struct GatherVars {
    /// `send[(edge, source_index)]` variables.
    pub send: BTreeMap<(EdgeId, usize), VarId>,
    /// The throughput variable `TP`.
    pub throughput: VarId,
}

/// Exact steady-state solution of a gather problem.
#[derive(Debug, Clone)]
pub struct GatherSolution {
    throughput: Ratio,
    /// `flows[(edge, source_index)]` = messages originating at
    /// `sources[source_index]` crossing `edge` per time-unit.
    flows: BTreeMap<(EdgeId, usize), Ratio>,
}

impl GatherProblem {
    /// Builds and validates a gather problem.
    pub fn new(platform: Platform, sources: Vec<NodeId>, sink: NodeId) -> Result<Self, CoreError> {
        platform.validate()?;
        if sources.is_empty() {
            return Err(CoreError::EmptyProblem);
        }
        if sources.contains(&sink) {
            return Err(CoreError::SourceIsTarget { node: sink });
        }
        let mut seen = Vec::new();
        for &s in &sources {
            if seen.contains(&s) {
                return Err(CoreError::DuplicateParticipant { node: s });
            }
            seen.push(s);
            if !platform.is_reachable(s, sink) {
                return Err(CoreError::Unreachable { node: s });
            }
        }
        Ok(GatherProblem { platform, sources, sink })
    }

    /// Builds a problem from a generated [`GatherInstance`].
    pub fn from_instance(instance: GatherInstance) -> Result<Self, CoreError> {
        GatherProblem::new(instance.platform, instance.sources, instance.sink)
    }

    /// The platform graph.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// The source processors, in commodity order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The sink processor.
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The transpose-dual scatter problem: same node ids, every edge reversed,
    /// the sink becomes the scatter source and the gather sources become the
    /// scatter targets.  Its optimal throughput equals this problem's.
    pub fn dual_scatter(&self) -> Result<ScatterProblem, CoreError> {
        ScatterProblem::new(self.platform.transpose(), self.sink, self.sources.clone())
    }

    /// Builds the `SSG(G)` linear program (the scatter LP with the commodity
    /// orientation reversed).
    pub fn build_lp(&self) -> (LpProblem, GatherVars) {
        let mut lp = LpProblem::maximize();
        let platform = &self.platform;

        let mut send = BTreeMap::new();
        for e in platform.edge_ids() {
            let edge = platform.edge(e);
            for (si, s) in self.sources.iter().enumerate() {
                let v = lp.add_var(format!("send[{}->{},g{}]", edge.from, edge.to, s));
                send.insert((e, si), v);
            }
        }
        let throughput = lp.add_var("TP");
        lp.set_objective(throughput, Ratio::one());

        // One-port constraints: per-node outgoing and incoming occupation.
        for n in platform.node_ids() {
            let mut out_expr = LinearExpr::new();
            for &e in platform.out_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for si in 0..self.sources.len() {
                    out_expr.add_term(send[&(e, si)], cost.clone());
                }
            }
            if !out_expr.is_empty() {
                lp.add_constraint(format!("one-port-out[{n}]"), out_expr, Sense::Le, Ratio::one());
            }
            let mut in_expr = LinearExpr::new();
            for &e in platform.in_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for si in 0..self.sources.len() {
                    in_expr.add_term(send[&(e, si)], cost.clone());
                }
            }
            if !in_expr.is_empty() {
                lp.add_constraint(format!("one-port-in[{n}]"), in_expr, Sense::Le, Ratio::one());
            }
        }

        // Conservation: every message of commodity `si` entering a node that is
        // neither its origin nor the sink leaves it.
        for n in platform.node_ids() {
            if n == self.sink {
                continue;
            }
            for (si, &s) in self.sources.iter().enumerate() {
                if n == s {
                    continue;
                }
                let mut expr = LinearExpr::new();
                for &e in platform.in_edges(n) {
                    expr.add_term(send[&(e, si)], Ratio::one());
                }
                for &e in platform.out_edges(n) {
                    expr.add_term(send[&(e, si)], -Ratio::one());
                }
                if !expr.is_empty() {
                    lp.add_constraint(
                        format!("conservation[{n},g{s}]"),
                        expr,
                        Sense::Eq,
                        Ratio::zero(),
                    );
                }
            }
        }

        // The sink never re-emits delivered messages (same WLOG restriction as
        // the scatter's no-reemit constraints: conservation is not stated at
        // the destination of a commodity, so without this the LP could bounce
        // delivered messages off a neighbour and count them twice).
        for si in 0..self.sources.len() {
            for &e in platform.out_edges(self.sink) {
                lp.add_constraint(
                    format!("no-reemit[{}]", self.sink),
                    LinearExpr::var(send[&(e, si)]),
                    Sense::Eq,
                    Ratio::zero(),
                );
            }
        }

        // Throughput: the sink receives TP messages of every commodity per
        // time-unit.
        for (si, &s) in self.sources.iter().enumerate() {
            let mut expr = LinearExpr::new();
            for &e in platform.in_edges(self.sink) {
                expr.add_term(send[&(e, si)], Ratio::one());
            }
            expr.add_term(throughput, -Ratio::one());
            lp.add_constraint(format!("throughput[g{s}]"), expr, Sense::Eq, Ratio::zero());
        }

        (lp, GatherVars { send, throughput })
    }

    /// Solves `SSG(G)` exactly and returns the steady-state solution.
    pub fn solve(&self) -> Result<GatherSolution, CoreError> {
        crate::problem::solve_steady(self)
    }
}

impl crate::problem::SteadyProblem for GatherProblem {
    type Vars = GatherVars;
    type Solution = GatherSolution;
    const KIND: &'static str = "gather";

    fn formulate(&self) -> (LpProblem, GatherVars) {
        self.build_lp()
    }

    fn interpret(&self, vars: &GatherVars, values: &[Ratio]) -> GatherSolution {
        GatherSolution {
            throughput: values[vars.throughput.index()].clone(),
            flows: crate::problem::positive_values(&vars.send, values),
        }
    }
}

impl GatherSolution {
    /// Optimal steady-state throughput (gather operations per time-unit).
    pub fn throughput(&self) -> &Ratio {
        &self.throughput
    }

    /// Messages originating at `sources[source_index]` crossing `edge` per time-unit.
    pub fn flow(&self, edge: EdgeId, source_index: usize) -> Ratio {
        self.flows.get(&(edge, source_index)).cloned().unwrap_or_else(Ratio::zero)
    }

    /// All non-zero flows.
    pub fn flows(&self) -> &BTreeMap<(EdgeId, usize), Ratio> {
        &self.flows
    }

    /// Occupation `s(P_i -> P_j)` of an edge: total transfer time per time-unit.
    pub fn edge_occupation(&self, problem: &GatherProblem, edge: EdgeId) -> Ratio {
        let cost = &problem.platform().edge(edge).cost;
        let total: Ratio = (0..problem.sources().len()).map(|si| self.flow(edge, si)).sum();
        &total * cost
    }

    /// The minimal integer period: the LCM of the denominators of all rates.
    pub fn period(&self) -> BigInt {
        let mut values: Vec<Ratio> = self.flows.values().cloned().collect();
        values.push(self.throughput.clone());
        lcm_of_denominators(&values)
    }

    /// Exhaustively re-checks every constraint of `SSG(G)` on this solution.
    pub fn verify(&self, problem: &GatherProblem) -> Result<(), String> {
        let platform = problem.platform();
        for ((e, si), v) in &self.flows {
            if v.is_negative() {
                return Err(format!("negative flow on edge {:?} commodity {si}", e));
            }
            if *si >= problem.sources().len() {
                return Err(format!("unknown commodity index {si}"));
            }
            if e.index() >= platform.num_edges() {
                return Err(format!("unknown edge index {}", e.index()));
            }
        }
        // One-port.
        for n in platform.node_ids() {
            let mut out = Ratio::zero();
            for &e in platform.out_edges(n) {
                out += self.edge_occupation(problem, e);
            }
            if out > Ratio::one() {
                return Err(format!("{n} emits for {out} > 1 per time-unit"));
            }
            let mut inc = Ratio::zero();
            for &e in platform.in_edges(n) {
                inc += self.edge_occupation(problem, e);
            }
            if inc > Ratio::one() {
                return Err(format!("{n} receives for {inc} > 1 per time-unit"));
            }
        }
        // Conservation.
        for n in platform.node_ids() {
            if n == problem.sink() {
                continue;
            }
            for (si, &s) in problem.sources().iter().enumerate() {
                if n == s {
                    continue;
                }
                let inflow: Ratio = platform.in_edges(n).iter().map(|&e| self.flow(e, si)).sum();
                let outflow: Ratio = platform.out_edges(n).iter().map(|&e| self.flow(e, si)).sum();
                if inflow != outflow {
                    return Err(format!(
                        "conservation violated at {n} for g{s}: in {inflow}, out {outflow}"
                    ));
                }
            }
        }
        // Throughput and no re-emission at the sink.
        for (si, &s) in problem.sources().iter().enumerate() {
            for &e in platform.out_edges(problem.sink()) {
                if self.flow(e, si).is_positive() {
                    return Err(format!("sink re-emits messages of source {s}"));
                }
            }
            let received: Ratio =
                platform.in_edges(problem.sink()).iter().map(|&e| self.flow(e, si)).sum();
            if received != self.throughput {
                return Err(format!(
                    "sink receives {received} messages of source {s} instead of TP = {}",
                    self.throughput
                ));
            }
        }
        Ok(())
    }

    /// Builds the explicit periodic schedule achieving this solution's
    /// throughput, using the same weighted-matching decomposition as the
    /// scatter (§3.3).
    pub fn build_schedule(&self, problem: &GatherProblem) -> Result<PeriodicSchedule, CoreError> {
        let platform = problem.platform();
        let period_int = self.period();
        let period = Ratio::from(period_int);

        let mut load = BipartiteLoad::new();
        let mut queues: BTreeMap<(usize, usize), PayloadQueue> = BTreeMap::new();
        for ((e, si), flow) in &self.flows {
            let edge = platform.edge(*e);
            let count = flow * &period;
            let duration = &count * &edge.cost;
            if !duration.is_positive() {
                continue;
            }
            let key = (edge.from.index(), edge.to.index());
            load.add(key.0, key.1, duration.clone());
            queues.entry(key).or_default().push((
                Payload::Gather { origin: problem.sources()[*si] },
                count,
                duration,
            ));
        }

        let steps = decompose(&load)?;
        let mut slots = Vec::with_capacity(steps.len());
        for step in &steps {
            let mut transfers = Vec::new();
            for &edge_idx in &step.edges {
                let le = &load.edges[edge_idx];
                let key = (le.sender, le.receiver);
                let queue = queues.get_mut(&key).expect("load edge without queue");
                let mut remaining = step.duration.clone();
                while remaining.is_positive() {
                    let Some((payload, count, duration)) = queue.first_mut() else {
                        break;
                    };
                    let from = NodeId(key.0);
                    let to = NodeId(key.1);
                    if *duration <= remaining {
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: count.clone(),
                            duration: duration.clone(),
                        });
                        remaining = &remaining - &*duration;
                        queue.remove(0);
                    } else {
                        let fraction = &remaining / &*duration;
                        let part_count = count.clone() * fraction;
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: part_count.clone(),
                            duration: remaining.clone(),
                        });
                        *count = &*count - &part_count;
                        *duration = &*duration - &remaining;
                        remaining = Ratio::zero();
                    }
                }
            }
            slots.push(CommSlot { duration: step.duration.clone(), transfers });
        }

        Ok(PeriodicSchedule {
            period: period.clone(),
            operations_per_period: &self.throughput * &period,
            slots,
            computations: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure2};
    use steady_platform::topologies::dumbbell_gather_instance;
    use steady_rational::rat;

    /// Figure 2 reversed: P0 and P1 gather towards Ps on the transposed platform.
    fn figure2_gather() -> GatherProblem {
        let inst = figure2();
        let transposed = inst.platform.transpose();
        GatherProblem::new(transposed, inst.targets, inst.source).unwrap()
    }

    #[test]
    fn figure2_reversed_gather_matches_scatter_optimum() {
        // Gather on the reversed Figure 2 platform is exactly the scatter dual,
        // so its throughput equals the scatter optimum 1/2.
        let problem = figure2_gather();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 2));
        sol.verify(&problem).unwrap();
    }

    #[test]
    fn transpose_duality_holds_on_figure2() {
        let problem = figure2_gather();
        let sol = problem.solve().unwrap();
        let dual = problem.dual_scatter().unwrap();
        let dual_sol = dual.solve().unwrap();
        assert_eq!(sol.throughput(), dual_sol.throughput());
    }

    #[test]
    fn star_gather_throughput() {
        // k leaves gathering to the center: the center's incoming port
        // serializes all k messages, TP = 1 / (k * c).
        for k in 1..5usize {
            let (p, center, leaves) = generators::star(k, rat(1, 2));
            let problem = GatherProblem::new(p, leaves, center).unwrap();
            let sol = problem.solve().unwrap();
            assert_eq!(*sol.throughput(), rat(2, k as i64));
            sol.verify(&problem).unwrap();
            let schedule = sol.build_schedule(&problem).unwrap();
            schedule.validate(problem.platform()).unwrap();
            assert_eq!(schedule.throughput(), rat(2, k as i64));
        }
    }

    #[test]
    fn dumbbell_gather_is_bridge_limited() {
        // 2 local + 2 remote sources, local cost 1/2, bridge cost 1: the three
        // remote/right messages plus intra-cluster traffic make the sink's
        // in-port and the bridge the contended resources.  The LP optimum must
        // never exceed the sink's in-port bound 1 / (#sources * local_cost).
        let inst = dumbbell_gather_instance(2, rat(1, 2), rat(1, 1));
        let n_sources = inst.sources.len() as i64;
        let problem = GatherProblem::from_instance(inst).unwrap();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        assert!(sol.throughput().is_positive());
        assert!(*sol.throughput() <= rat(2, n_sources));
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), *sol.throughput());
    }

    #[test]
    fn gather_schedule_delivers_every_commodity() {
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = GatherProblem::new(p, leaves.clone(), center).unwrap();
        let sol = problem.solve().unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        let expected = &Ratio::from(sol.period()) * sol.throughput();
        let totals = schedule.transfer_totals();
        for &leaf in &leaves {
            let delivered: Ratio = totals
                .iter()
                .filter(|((_, to, payload), _)| {
                    *to == center && *payload == Payload::Gather { origin: leaf }
                })
                .map(|(_, count)| count.clone())
                .sum();
            assert_eq!(delivered, expected, "leaf {leaf} under-delivered");
        }
    }

    #[test]
    fn invalid_problems_are_rejected() {
        let (p, center, leaves) = generators::star(2, rat(1, 1));
        assert!(matches!(
            GatherProblem::new(p.clone(), vec![center, leaves[0]], center),
            Err(CoreError::SourceIsTarget { .. })
        ));
        assert!(matches!(
            GatherProblem::new(p.clone(), vec![], center),
            Err(CoreError::EmptyProblem)
        ));
        assert!(matches!(
            GatherProblem::new(p.clone(), vec![leaves[0], leaves[0]], center),
            Err(CoreError::DuplicateParticipant { .. })
        ));
        // Unreachable source: a star with a one-way edge away from the center only.
        let mut q = Platform::new();
        let a = q.add_node("a", rat(1, 1));
        let b = q.add_node("b", rat(1, 1));
        let c = q.add_node("c", rat(1, 1));
        q.add_edge(a, b, rat(1, 1));
        q.add_edge(b, c, rat(1, 1));
        assert!(matches!(GatherProblem::new(q, vec![c], a), Err(CoreError::Unreachable { .. })));
    }

    #[test]
    fn lp_structure_is_reasonable() {
        let problem = figure2_gather();
        let (lp, vars) = problem.build_lp();
        // 5 edges x 2 commodities + TP.
        assert_eq!(lp.num_vars(), 11);
        assert_eq!(vars.send.len(), 10);
        let dump = lp.dump();
        assert!(dump.contains("one-port-in"));
        assert!(dump.contains("conservation"));
        // The Figure-2 sink has no outgoing edge after transposition, so the
        // no-reemit pinning only appears on platforms with symmetric links.
        let (p, center, leaves) = generators::star(2, rat(1, 1));
        let star_problem = GatherProblem::new(p, leaves, center).unwrap();
        assert!(star_problem.build_lp().0.dump().contains("no-reemit"));
    }

    #[test]
    fn solution_accessors() {
        let problem = figure2_gather();
        let sol = problem.solve().unwrap();
        assert!(!sol.flows().is_empty());
        assert_eq!(sol.flow(EdgeId(0), 99), Ratio::zero());
        assert!(sol.period() > steady_rational::BigInt::from(0i64));
    }
}
