//! Periodic schedules and their one-port validation.
//!
//! The output of the steady-state machinery is a **periodic schedule**: a
//! period `T`, an ordered list of communication *slots* (each slot is a
//! matching — a set of transfers with pairwise distinct senders and pairwise
//! distinct receivers, running simultaneously for the slot's duration), and,
//! for reduce operations, the per-period computation load of every processor
//! (computations overlap with communications under the full-overlap model).
//!
//! A schedule produced from an LP solution with throughput `TP` performs
//! `TP × T` collective operations per period once the pipeline is full
//! (§3.4: initialization phase, steady-state phase, clean-up phase).

use std::collections::BTreeMap;
use std::fmt;

use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;

/// What a transfer carries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Payload {
    /// Scatter message destined to `destination`.
    Scatter {
        /// Final destination of the message.
        destination: NodeId,
    },
    /// Gossip (personalized all-to-all) message `m_{source, destination}`.
    Gossip {
        /// Emitting processor.
        source: NodeId,
        /// Final destination of the message.
        destination: NodeId,
    },
    /// Gather message emitted by `origin` and destined to the gather sink.
    Gather {
        /// Processor that emitted the message.
        origin: NodeId,
    },
    /// Partial reduction result `v[lo, hi]`.
    Partial {
        /// First reduced index.
        lo: usize,
        /// Last reduced index (inclusive).
        hi: usize,
    },
}

/// FIFO of `(payload, count, duration)` items queued on a `(sender, receiver)`
/// pair while a period's transfers are distributed over the matchings of the
/// weighted-edge-coloring decomposition (§3.3).
pub type PayloadQueue = Vec<(Payload, Ratio, Ratio)>;

impl fmt::Display for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Payload::Scatter { destination } => write!(f, "m[{destination}]"),
            Payload::Gossip { source, destination } => write!(f, "m[{source}->{destination}]"),
            Payload::Gather { origin } => write!(f, "g[{origin}]"),
            Payload::Partial { lo, hi } => write!(f, "v[{lo},{hi}]"),
        }
    }
}

/// One aggregated transfer inside a slot.
#[derive(Debug, Clone)]
pub struct Transfer {
    /// Sending processor.
    pub from: NodeId,
    /// Receiving processor.
    pub to: NodeId,
    /// What is transferred.
    pub payload: Payload,
    /// Fractional number of messages of this payload moved during the slot.
    pub count: Ratio,
    /// Busy time of the link for this transfer (`count × size × c(e)`).
    pub duration: Ratio,
}

/// A communication slot: transfers that run simultaneously.
#[derive(Debug, Clone)]
pub struct CommSlot {
    /// Duration of the slot.
    pub duration: Ratio,
    /// The simultaneous transfers (a matching over senders/receivers).
    pub transfers: Vec<Transfer>,
}

/// Per-period computation performed by one node (reduce only).
#[derive(Debug, Clone)]
pub struct ComputeOp {
    /// The processor executing the task.
    pub node: NodeId,
    /// The reduction task `T_{k,l,m}`: combines `v[k,l]` and `v[l+1,m]`.
    pub task: (usize, usize, usize),
    /// Fractional number of such tasks per period.
    pub count: Ratio,
    /// Busy time of the processor for these tasks per period.
    pub duration: Ratio,
}

/// A complete periodic schedule.
#[derive(Debug, Clone)]
pub struct PeriodicSchedule {
    /// Length of one period.
    pub period: Ratio,
    /// Number of collective operations completed per period in steady state.
    pub operations_per_period: Ratio,
    /// Ordered communication slots; their total duration never exceeds the period.
    pub slots: Vec<CommSlot>,
    /// Per-period computations (empty for scatter/gossip).
    pub computations: Vec<ComputeOp>,
}

impl PeriodicSchedule {
    /// Steady-state throughput of the schedule (operations per time-unit).
    pub fn throughput(&self) -> Ratio {
        if self.period.is_zero() {
            return Ratio::zero();
        }
        &self.operations_per_period / &self.period
    }

    /// Total communication time scheduled within one period.
    pub fn total_slot_time(&self) -> Ratio {
        self.slots.iter().map(|s| s.duration.clone()).sum()
    }

    /// Validates the one-port and full-overlap feasibility of the schedule:
    ///
    /// * within each slot, no sender and no receiver appears twice and every
    ///   transfer fits in the slot;
    /// * the sum of slot durations does not exceed the period;
    /// * the total computation time of every node does not exceed the period;
    /// * every transfer uses an existing platform edge and its duration equals
    ///   `count × size × c(e)` is not checked here (sizes are problem-specific)
    ///   but must be positive.
    pub fn validate(&self, platform: &Platform) -> Result<(), String> {
        if !self.period.is_positive() {
            return Err("period must be positive".into());
        }
        if self.total_slot_time() > self.period {
            return Err(format!(
                "slots last {} which exceeds the period {}",
                self.total_slot_time(),
                self.period
            ));
        }
        for (si, slot) in self.slots.iter().enumerate() {
            if !slot.duration.is_positive() {
                return Err(format!("slot {si} has non-positive duration"));
            }
            // A slot is a matching: each sender talks to exactly one receiver
            // and vice versa.  Several payloads may share the same (from, to)
            // pair within the slot (they are serialized on the link), as long
            // as the total busy time fits in the slot.
            let mut partner_of_sender: BTreeMap<NodeId, NodeId> = BTreeMap::new();
            let mut partner_of_receiver: BTreeMap<NodeId, NodeId> = BTreeMap::new();
            let mut send_time: BTreeMap<NodeId, Ratio> = BTreeMap::new();
            let mut recv_time: BTreeMap<NodeId, Ratio> = BTreeMap::new();
            for t in &slot.transfers {
                match partner_of_sender.get(&t.from) {
                    Some(prev) if *prev != t.to => {
                        return Err(format!(
                            "slot {si}: {} sends to both {} and {} simultaneously",
                            t.from, prev, t.to
                        ));
                    }
                    _ => {
                        partner_of_sender.insert(t.from, t.to);
                    }
                }
                match partner_of_receiver.get(&t.to) {
                    Some(prev) if *prev != t.from => {
                        return Err(format!(
                            "slot {si}: {} receives from both {} and {} simultaneously",
                            t.to, prev, t.from
                        ));
                    }
                    _ => {
                        partner_of_receiver.insert(t.to, t.from);
                    }
                }
                if platform.edge_between(t.from, t.to).is_none() {
                    return Err(format!("slot {si}: no edge {} -> {}", t.from, t.to));
                }
                if t.count.is_negative() || t.duration.is_negative() {
                    return Err(format!("slot {si}: negative transfer amount"));
                }
                *send_time.entry(t.from).or_insert_with(Ratio::zero) += &t.duration;
                *recv_time.entry(t.to).or_insert_with(Ratio::zero) += &t.duration;
            }
            for (node, time) in send_time.iter().chain(recv_time.iter()) {
                if *time > slot.duration {
                    return Err(format!(
                        "slot {si}: {node} is busy for {time} in a slot of {}",
                        slot.duration
                    ));
                }
            }
        }
        // Full-overlap: computation runs in parallel with communication but a
        // node still has a single compute unit.
        let mut compute_time: BTreeMap<NodeId, Ratio> = BTreeMap::new();
        for op in &self.computations {
            if !platform.node(op.node).can_compute() {
                return Err(format!("{} is a router but is assigned computation", op.node));
            }
            *compute_time.entry(op.node).or_insert_with(Ratio::zero) += &op.duration;
        }
        for (node, time) in compute_time {
            if time > self.period {
                return Err(format!(
                    "{node} computes for {time} during a period of {}",
                    self.period
                ));
            }
        }
        Ok(())
    }

    /// Per-node outgoing communication time within one period.
    pub fn send_time_per_node(&self) -> BTreeMap<NodeId, Ratio> {
        let mut out: BTreeMap<NodeId, Ratio> = BTreeMap::new();
        for slot in &self.slots {
            for t in &slot.transfers {
                *out.entry(t.from).or_insert_with(Ratio::zero) += &t.duration;
            }
        }
        out
    }

    /// Per-node incoming communication time within one period.
    pub fn recv_time_per_node(&self) -> BTreeMap<NodeId, Ratio> {
        let mut out: BTreeMap<NodeId, Ratio> = BTreeMap::new();
        for slot in &self.slots {
            for t in &slot.transfers {
                *out.entry(t.to).or_insert_with(Ratio::zero) += &t.duration;
            }
        }
        out
    }

    /// Number of messages of each payload crossing each (from, to) pair per
    /// period; used by tests to cross-check against the LP solution.
    pub fn transfer_totals(&self) -> BTreeMap<(NodeId, NodeId, Payload), Ratio> {
        let mut out: BTreeMap<(NodeId, NodeId, Payload), Ratio> = BTreeMap::new();
        for slot in &self.slots {
            for t in &slot.transfers {
                *out.entry((t.from, t.to, t.payload.clone())).or_insert_with(Ratio::zero) +=
                    &t.count;
            }
        }
        out
    }

    /// Human-readable rendering (one line per slot), similar in spirit to the
    /// Gantt-like Figure 4 of the paper.
    pub fn render(&self, platform: &Platform) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "period {} | {} operation(s) per period | throughput {}\n",
            self.period,
            self.operations_per_period,
            self.throughput()
        ));
        let mut t = Ratio::zero();
        for (si, slot) in self.slots.iter().enumerate() {
            let end = &t + &slot.duration;
            out.push_str(&format!("slot {si} [{t} .. {end}):\n"));
            for tr in &slot.transfers {
                out.push_str(&format!(
                    "  {} -> {} : {} x {} ({} time-units)\n",
                    platform.node(tr.from).name,
                    platform.node(tr.to).name,
                    tr.count,
                    tr.payload,
                    tr.duration
                ));
            }
            t = end;
        }
        if !self.computations.is_empty() {
            out.push_str("computations (overlapped):\n");
            for c in &self.computations {
                out.push_str(&format!(
                    "  {} : {} x T[{},{},{}] ({} time-units)\n",
                    platform.node(c.node).name,
                    c.count,
                    c.task.0,
                    c.task.1,
                    c.task.2,
                    c.duration
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::figure2;
    use steady_rational::rat;

    fn toy_schedule() -> (Platform, PeriodicSchedule) {
        let inst = figure2();
        let p = inst.platform.clone();
        let ps = NodeId(0);
        let pa = NodeId(1);
        let pb = NodeId(2);
        let p0 = NodeId(3);
        let p1 = NodeId(4);
        let schedule = PeriodicSchedule {
            period: rat(12, 1),
            operations_per_period: rat(6, 1),
            slots: vec![
                CommSlot {
                    duration: rat(6, 1),
                    transfers: vec![
                        Transfer {
                            from: ps,
                            to: pb,
                            payload: Payload::Scatter { destination: p1 },
                            count: rat(6, 1),
                            duration: rat(6, 1),
                        },
                        Transfer {
                            from: pa,
                            to: p0,
                            payload: Payload::Scatter { destination: p0 },
                            count: rat(3, 1),
                            duration: rat(2, 1),
                        },
                    ],
                },
                CommSlot {
                    duration: rat(6, 1),
                    transfers: vec![
                        Transfer {
                            from: ps,
                            to: pa,
                            payload: Payload::Scatter { destination: p0 },
                            count: rat(3, 1),
                            duration: rat(3, 1),
                        },
                        Transfer {
                            from: pb,
                            to: p1,
                            payload: Payload::Scatter { destination: p1 },
                            count: rat(4, 1),
                            duration: rat(16, 3),
                        },
                    ],
                },
            ],
            computations: vec![],
        };
        (p, schedule)
    }

    #[test]
    fn throughput_and_totals() {
        let (_p, s) = toy_schedule();
        assert_eq!(s.throughput(), rat(1, 2));
        assert_eq!(s.total_slot_time(), rat(12, 1));
        let send = s.send_time_per_node();
        assert_eq!(send[&NodeId(0)], rat(9, 1));
        let recv = s.recv_time_per_node();
        assert_eq!(recv[&NodeId(3)], rat(2, 1));
        let totals = s.transfer_totals();
        assert_eq!(
            totals[&(NodeId(0), NodeId(2), Payload::Scatter { destination: NodeId(4) })],
            rat(6, 1)
        );
    }

    #[test]
    fn validation_accepts_toy_schedule() {
        let (p, s) = toy_schedule();
        assert!(s.validate(&p).is_ok());
        let rendered = s.render(&p);
        assert!(rendered.contains("slot 0"));
        assert!(rendered.contains("Ps"));
    }

    #[test]
    fn validation_rejects_one_port_violation() {
        let (p, mut s) = toy_schedule();
        // Make Ps send to two different receivers in the same slot.
        let dup = s.slots[0].transfers[0].clone();
        s.slots[0].transfers.push(Transfer { to: NodeId(1), ..dup });
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("sends to both"), "{err}");
    }

    #[test]
    fn validation_rejects_duplicate_receiver() {
        let (p, mut s) = toy_schedule();
        let dup = s.slots[1].transfers[0].clone();
        // Slot 1 already contains Pb -> P1; add Pa -> P1 so that P1 receives
        // from two different senders simultaneously.
        s.slots[1].transfers.push(Transfer { from: NodeId(1), to: NodeId(4), ..dup });
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("receives from both"), "{err}");
    }

    #[test]
    fn validation_rejects_oversubscribed_link_in_slot() {
        let (p, mut s) = toy_schedule();
        // Same (from, to) pair twice is allowed only if the total fits the slot.
        let dup = s.slots[0].transfers[0].clone();
        s.slots[0].transfers.push(dup);
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("busy for"), "{err}");
    }

    #[test]
    fn validation_rejects_overlong_slots() {
        let (p, mut s) = toy_schedule();
        s.slots[0].duration = rat(20, 1);
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("exceeds the period"), "{err}");
    }

    #[test]
    fn validation_rejects_missing_edge() {
        let (p, mut s) = toy_schedule();
        // There is no edge P0 -> P1 on the Figure 2 platform.
        s.slots[0].transfers[0].from = NodeId(3);
        s.slots[0].transfers[0].to = NodeId(4);
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("no edge"), "{err}");
    }

    #[test]
    fn validation_rejects_router_computation() {
        let (p, mut s) = toy_schedule();
        s.computations.push(ComputeOp {
            node: NodeId(0),
            task: (0, 0, 1),
            count: rat(1, 1),
            duration: rat(1, 1),
        });
        // Node 0 of figure2 has speed 1, so it is allowed; use an impossible amount instead.
        s.computations[0].duration = rat(100, 1);
        let err = s.validate(&p).unwrap_err();
        assert!(err.contains("computes for"), "{err}");
    }

    #[test]
    fn payload_display() {
        assert_eq!(Payload::Scatter { destination: NodeId(3) }.to_string(), "m[P3]");
        assert_eq!(Payload::Partial { lo: 1, hi: 4 }.to_string(), "v[1,4]");
        assert_eq!(
            Payload::Gossip { source: NodeId(0), destination: NodeId(2) }.to_string(),
            "m[P0->P2]"
        );
    }
}
