//! Error type shared by the steady-state schedulers.

use steady_lp::{CertifyError, SimplexError};
use steady_platform::{NodeId, PlatformError};

use crate::coloring::ColoringError;

/// Errors raised while building problems, solving the steady-state LPs or
/// constructing periodic schedules.
#[derive(Debug)]
pub enum CoreError {
    /// The platform failed validation.
    Platform(PlatformError),
    /// The LP solver failed (infeasible, unbounded, iteration limit).
    Solver(CertifyError),
    /// The scatter/gossip source coincides with one of the targets.
    SourceIsTarget {
        /// The offending node.
        node: NodeId,
    },
    /// A target cannot be reached from the source (scatter/gossip) or cannot
    /// reach the target (reduce).
    Unreachable {
        /// The disconnected node.
        node: NodeId,
    },
    /// The problem has no targets / participants.
    EmptyProblem,
    /// A participant or target is a router (cannot hold values or compute).
    NotAComputeNode {
        /// The offending node.
        node: NodeId,
    },
    /// A node appears twice in the participant list.
    DuplicateParticipant {
        /// The offending node.
        node: NodeId,
    },
    /// The matching decomposition failed (internal invariant violation).
    Coloring(ColoringError),
    /// Reduction-tree extraction failed on a malformed or cyclic solution.
    TreeExtraction {
        /// Human-readable description.
        reason: String,
    },
    /// The requested fixed period is not positive.
    InvalidPeriod,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Platform(e) => write!(f, "invalid platform: {e}"),
            CoreError::Solver(e) => write!(f, "LP solver failed: {e}"),
            CoreError::SourceIsTarget { node } => {
                write!(f, "node {node} is both the source and a target")
            }
            CoreError::Unreachable { node } => {
                write!(f, "node {node} is not connected to the operation")
            }
            CoreError::EmptyProblem => write!(f, "the problem has no targets or participants"),
            CoreError::NotAComputeNode { node } => {
                write!(f, "node {node} is a router and cannot take part in the operation")
            }
            CoreError::DuplicateParticipant { node } => {
                write!(f, "node {node} appears twice in the participant list")
            }
            CoreError::Coloring(e) => write!(f, "matching decomposition failed: {e}"),
            CoreError::TreeExtraction { reason } => {
                write!(f, "reduction-tree extraction failed: {reason}")
            }
            CoreError::InvalidPeriod => write!(f, "the requested period must be positive"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<PlatformError> for CoreError {
    fn from(e: PlatformError) -> Self {
        CoreError::Platform(e)
    }
}

impl From<CertifyError> for CoreError {
    fn from(e: CertifyError) -> Self {
        CoreError::Solver(e)
    }
}

impl From<SimplexError> for CoreError {
    fn from(e: SimplexError) -> Self {
        CoreError::Solver(CertifyError::Simplex(e))
    }
}

impl From<ColoringError> for CoreError {
    fn from(e: ColoringError) -> Self {
        CoreError::Coloring(e)
    }
}
