//! Series of parallel-prefix operations (the extension suggested in the
//! paper's conclusion).
//!
//! In a parallel-prefix (scan) operation every participant `P_i` owns a value
//! `v_i` and must obtain the prefix `v[0, i] = v_0 ⊕ ... ⊕ v_i` of the
//! associative, non-commutative operator `⊕`.  The *series* version pipelines
//! a large number of such scans and maximizes the common steady-state
//! throughput `TP`.
//!
//! # Formulation
//!
//! The LP `SSP(G)` used here tags every partial value with the **rank it is
//! destined to**: for every destination rank `d ∈ {1, …, N}` there is an
//! independent copy of the reduce flow of §4.2 restricted to the participants
//! `0..=d` with target `P_d`, and all the copies share the physical one-port
//! and compute capacities.  Rank 0 needs no work (it already owns `v[0,0]`).
//!
//! This *no-sharing* formulation does not model the reuse of a partial value
//! across destinations (the same `v[0,k]` instance feeding both rank `k` and
//! rank `k+1`), so the computed throughput is a **feasible lower bound** on
//! the true optimal prefix throughput; conversely the reduce LP of any single
//! rank is a relaxation, so `min_d TP_reduce(0..=d → P_d)` is an upper bound
//! ([`PrefixProblem::upper_bound`]).  Tests bracket the solution between the
//! two; on small platforms the bounds frequently coincide.
//!
//! Schedules are built per destination by re-using the reduction-tree
//! extraction of §4.3–4.4 on each rank's sub-flow, then aggregating all the
//! trees of all ranks into one weighted-matching decomposition.

use std::collections::BTreeMap;

use steady_lp::{LinearExpr, LpProblem, Sense, VarId};
use steady_platform::{EdgeId, NodeId, Platform, PrefixInstance};
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

use crate::coloring::{decompose, BipartiteLoad};
use crate::error::CoreError;
use crate::reduce::{Interval, ReduceProblem, ReduceSolution, Task};
use crate::schedule::{CommSlot, ComputeOp, Payload, PayloadQueue, PeriodicSchedule, Transfer};
use crate::trees::{TreeOp, WeightedTree};

/// A pipelined parallel-prefix problem.
#[derive(Debug, Clone)]
pub struct PrefixProblem {
    platform: Platform,
    participants: Vec<NodeId>,
    message_size: Ratio,
    task_cost: Ratio,
}

/// Mapping from LP variables back to prefix quantities.
#[derive(Debug, Clone)]
pub struct PrefixVars {
    /// `send[(edge, destination_rank, interval)]` variables.
    pub send: BTreeMap<(EdgeId, usize, Interval), VarId>,
    /// `cons[(node, destination_rank, task)]` variables.
    pub cons: BTreeMap<(NodeId, usize, Task), VarId>,
    /// The throughput variable `TP`.
    pub throughput: VarId,
}

/// Exact steady-state solution of a parallel-prefix problem.
#[derive(Debug, Clone)]
pub struct PrefixSolution {
    throughput: Ratio,
    sends: BTreeMap<(EdgeId, usize, Interval), Ratio>,
    tasks: BTreeMap<(NodeId, usize, Task), Ratio>,
}

impl PrefixProblem {
    /// Builds and validates a parallel-prefix problem.
    pub fn new(
        platform: Platform,
        participants: Vec<NodeId>,
        message_size: Ratio,
        task_cost: Ratio,
    ) -> Result<Self, CoreError> {
        platform.validate()?;
        if participants.len() < 2 {
            return Err(CoreError::EmptyProblem);
        }
        let mut seen = Vec::new();
        for &p in &participants {
            if seen.contains(&p) {
                return Err(CoreError::DuplicateParticipant { node: p });
            }
            seen.push(p);
            if !platform.node(p).can_compute() {
                return Err(CoreError::NotAComputeNode { node: p });
            }
        }
        // Every rank k must be able to feed every later rank d (k < d).
        for d in 1..participants.len() {
            for k in 0..d {
                if !platform.is_reachable(participants[k], participants[d]) {
                    return Err(CoreError::Unreachable { node: participants[k] });
                }
            }
        }
        Ok(PrefixProblem { platform, participants, message_size, task_cost })
    }

    /// Builds a problem from a generated [`PrefixInstance`].
    pub fn from_instance(instance: PrefixInstance) -> Result<Self, CoreError> {
        PrefixProblem::new(
            instance.platform,
            instance.participants,
            instance.message_size,
            instance.task_cost,
        )
    }

    /// The platform graph.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Participants in rank order.
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// Largest rank `N`.
    pub fn last_index(&self) -> usize {
        self.participants.len() - 1
    }

    /// Size of every partial value.
    pub fn message_size(&self) -> &Ratio {
        &self.message_size
    }

    /// Cost of every combining task.
    pub fn task_cost(&self) -> &Ratio {
        &self.task_cost
    }

    /// The reduce sub-problem of destination rank `d`: participants `0..=d`,
    /// target `P_d`.  Panics if `d` is 0 or out of range.
    pub fn sub_problem(&self, d: usize) -> Result<ReduceProblem, CoreError> {
        assert!(d >= 1 && d <= self.last_index(), "destination rank out of range");
        ReduceProblem::new(
            self.platform.clone(),
            self.participants[..=d].to_vec(),
            self.participants[d],
            self.message_size.clone(),
            self.task_cost.clone(),
        )
    }

    /// Upper bound on the optimal prefix throughput: serving rank `d` alone is
    /// a relaxation of the prefix, so `min_d TP_reduce(0..=d → P_d)` dominates
    /// any prefix schedule.
    pub fn upper_bound(&self) -> Result<Ratio, CoreError> {
        let mut best: Option<Ratio> = None;
        for d in 1..=self.last_index() {
            let tp = self.sub_problem(d)?.solve()?.throughput().clone();
            best = Some(match best {
                None => tp,
                Some(b) => b.min(tp),
            });
        }
        Ok(best.expect("at least one destination rank"))
    }

    fn intervals_for(&self, d: usize) -> Vec<Interval> {
        let mut out = Vec::new();
        for k in 0..=d {
            for m in k..=d {
                out.push((k, m));
            }
        }
        out
    }

    fn tasks_for(&self, d: usize) -> Vec<Task> {
        let mut out = Vec::new();
        for k in 0..=d {
            for m in (k + 1)..=d {
                for l in k..m {
                    out.push((k, l, m));
                }
            }
        }
        out
    }

    fn task_time(&self, node: NodeId) -> Option<Ratio> {
        let speed = &self.platform.node(node).speed;
        if speed.is_positive() {
            Some(&self.task_cost / speed)
        } else {
            None
        }
    }

    /// Whether the conservation law applies to `(node, destination d, interval)`.
    fn conservation_applies(&self, node: NodeId, d: usize, interval: Interval) -> bool {
        let (k, m) = interval;
        // Initial values are free on their owner (for every destination).
        if k == m && self.participants.get(k) == Some(&node) {
            return false;
        }
        // The destination consumes its own prefix value.
        !(node == self.participants[d] && interval == (0, d))
    }

    /// Builds the `SSP(G)` linear program.
    pub fn build_lp(&self) -> (LpProblem, PrefixVars) {
        let mut lp = LpProblem::maximize();
        let platform = &self.platform;
        let n = self.last_index();

        let mut send = BTreeMap::new();
        let mut cons = BTreeMap::new();
        for d in 1..=n {
            for e in platform.edge_ids() {
                let edge = platform.edge(e);
                for &iv in &self.intervals_for(d) {
                    let v = lp.add_var(format!(
                        "send[{}->{},d{},v[{},{}]]",
                        edge.from, edge.to, d, iv.0, iv.1
                    ));
                    send.insert((e, d, iv), v);
                }
            }
            for node in platform.node_ids() {
                if !platform.node(node).can_compute() {
                    continue;
                }
                for &t in &self.tasks_for(d) {
                    let v = lp.add_var(format!("cons[{node},d{d},T[{},{},{}]]", t.0, t.1, t.2));
                    cons.insert((node, d, t), v);
                }
            }
        }
        let throughput = lp.add_var("TP");
        lp.set_objective(throughput, Ratio::one());

        // Shared one-port constraints.
        for node in platform.node_ids() {
            let mut out_expr = LinearExpr::new();
            for &e in platform.out_edges(node) {
                let cost = platform.edge(e).cost.clone();
                for d in 1..=n {
                    for &iv in &self.intervals_for(d) {
                        out_expr.add_term(send[&(e, d, iv)], &self.message_size * &cost);
                    }
                }
            }
            if !out_expr.is_empty() {
                lp.add_constraint(
                    format!("one-port-out[{node}]"),
                    out_expr,
                    Sense::Le,
                    Ratio::one(),
                );
            }
            let mut in_expr = LinearExpr::new();
            for &e in platform.in_edges(node) {
                let cost = platform.edge(e).cost.clone();
                for d in 1..=n {
                    for &iv in &self.intervals_for(d) {
                        in_expr.add_term(send[&(e, d, iv)], &self.message_size * &cost);
                    }
                }
            }
            if !in_expr.is_empty() {
                lp.add_constraint(format!("one-port-in[{node}]"), in_expr, Sense::Le, Ratio::one());
            }
        }

        // Shared compute-occupation constraints.
        for node in platform.node_ids() {
            let Some(task_time) = self.task_time(node) else { continue };
            let mut expr = LinearExpr::new();
            for d in 1..=n {
                for &t in &self.tasks_for(d) {
                    expr.add_term(cons[&(node, d, t)], task_time.clone());
                }
            }
            if !expr.is_empty() {
                lp.add_constraint(format!("compute[{node}]"), expr, Sense::Le, Ratio::one());
            }
        }

        // Per-destination conservation law (the reduce constraint (10) with
        // last index d).
        for d in 1..=n {
            for node in platform.node_ids() {
                let computes = platform.node(node).can_compute();
                for &(k, m) in &self.intervals_for(d) {
                    if !self.conservation_applies(node, d, (k, m)) {
                        continue;
                    }
                    let mut expr = LinearExpr::new();
                    for &e in platform.in_edges(node) {
                        expr.add_term(send[&(e, d, (k, m))], Ratio::one());
                    }
                    if computes {
                        for l in k..m {
                            expr.add_term(cons[&(node, d, (k, l, m))], Ratio::one());
                        }
                    }
                    for &e in platform.out_edges(node) {
                        expr.add_term(send[&(e, d, (k, m))], -Ratio::one());
                    }
                    if computes {
                        for next in (m + 1)..=d {
                            expr.add_term(cons[&(node, d, (k, m, next))], -Ratio::one());
                        }
                        for prev in 0..k {
                            expr.add_term(cons[&(node, d, (prev, k - 1, m))], -Ratio::one());
                        }
                    }
                    if !expr.is_empty() {
                        lp.add_constraint(
                            format!("conservation[{node},d{d},v[{k},{m}]]"),
                            expr,
                            Sense::Eq,
                            Ratio::zero(),
                        );
                    }
                }
            }
        }

        // No re-emission of a delivered prefix value by its destination (same
        // WLOG restriction as for scatter/reduce).
        for d in 1..=n {
            let dest = self.participants[d];
            for &e in platform.out_edges(dest) {
                lp.add_constraint(
                    format!("no-reemit[d{d}]"),
                    LinearExpr::var(send[&(e, d, (0, d))]),
                    Sense::Eq,
                    Ratio::zero(),
                );
            }
        }

        // Throughput: every destination rank receives (or computes in place)
        // TP prefix values per time-unit.
        for d in 1..=n {
            let dest = self.participants[d];
            let mut expr = LinearExpr::new();
            for &e in platform.in_edges(dest) {
                expr.add_term(send[&(e, d, (0, d))], Ratio::one());
            }
            if platform.node(dest).can_compute() {
                for l in 0..d {
                    expr.add_term(cons[&(dest, d, (0, l, d))], Ratio::one());
                }
            }
            expr.add_term(throughput, -Ratio::one());
            lp.add_constraint(format!("throughput[d{d}]"), expr, Sense::Eq, Ratio::zero());
        }

        (lp, PrefixVars { send, cons, throughput })
    }

    /// Solves `SSP(G)` exactly.
    pub fn solve(&self) -> Result<PrefixSolution, CoreError> {
        crate::problem::solve_steady(self)
    }
}

impl crate::problem::SteadyProblem for PrefixProblem {
    type Vars = PrefixVars;
    type Solution = PrefixSolution;
    const KIND: &'static str = "prefix";

    fn formulate(&self) -> (LpProblem, PrefixVars) {
        self.build_lp()
    }

    fn interpret(&self, vars: &PrefixVars, values: &[Ratio]) -> PrefixSolution {
        PrefixSolution {
            throughput: values[vars.throughput.index()].clone(),
            sends: crate::problem::positive_values(&vars.send, values),
            tasks: crate::problem::positive_values(&vars.cons, values),
        }
    }
}

impl PrefixSolution {
    /// Steady-state throughput (prefix operations per time-unit) of this
    /// feasible solution.
    pub fn throughput(&self) -> &Ratio {
        &self.throughput
    }

    /// All non-zero send rates, keyed by `(edge, destination rank, interval)`.
    pub fn sends(&self) -> &BTreeMap<(EdgeId, usize, Interval), Ratio> {
        &self.sends
    }

    /// All non-zero task rates, keyed by `(node, destination rank, task)`.
    pub fn tasks(&self) -> &BTreeMap<(NodeId, usize, Task), Ratio> {
        &self.tasks
    }

    /// The flow serving destination rank `d`, viewed as a reduce solution of
    /// the sub-problem `0..=d → P_d`.
    pub fn rank_solution(&self, d: usize) -> ReduceSolution {
        let sends = self
            .sends
            .iter()
            .filter(|((_, dd, _), _)| *dd == d)
            .map(|((e, _, iv), v)| ((*e, *iv), v.clone()))
            .collect();
        let tasks = self
            .tasks
            .iter()
            .filter(|((_, dd, _), _)| *dd == d)
            .map(|((node, _, t), v)| ((*node, *t), v.clone()))
            .collect();
        ReduceSolution::from_rates(self.throughput.clone(), sends, tasks)
    }

    /// The minimal integer period: LCM of the denominators of all rates.
    pub fn period(&self) -> BigInt {
        let mut values: Vec<Ratio> = self.sends.values().cloned().collect();
        values.extend(self.tasks.values().cloned());
        values.push(self.throughput.clone());
        lcm_of_denominators(&values)
    }

    /// Exhaustively re-checks the solution: every rank's sub-flow is a valid
    /// reduce solution of its sub-problem, and the aggregated port/compute
    /// occupations respect the shared one-port and full-overlap capacities.
    pub fn verify(&self, problem: &PrefixProblem) -> Result<(), String> {
        let platform = problem.platform();
        // Per-rank flow validity.
        for d in 1..=problem.last_index() {
            let sub = problem.sub_problem(d).map_err(|e| e.to_string())?;
            self.rank_solution(d).verify(&sub).map_err(|e| format!("destination rank {d}: {e}"))?;
        }
        // Aggregated occupations.
        for node in platform.node_ids() {
            let mut out = Ratio::zero();
            let mut inc = Ratio::zero();
            for ((e, _, _), rate) in &self.sends {
                let edge = platform.edge(*e);
                let busy = rate * problem.message_size() * &edge.cost;
                if edge.from == node {
                    out += &busy;
                }
                if edge.to == node {
                    inc += &busy;
                }
            }
            if out > Ratio::one() {
                return Err(format!("{node} emits for {out} > 1 per time-unit"));
            }
            if inc > Ratio::one() {
                return Err(format!("{node} receives for {inc} > 1 per time-unit"));
            }
            let mut compute = Ratio::zero();
            for ((task_node, _, _), rate) in &self.tasks {
                if *task_node == node {
                    let time = problem
                        .task_time(node)
                        .ok_or_else(|| format!("router {node} executes tasks"))?;
                    compute += rate * &time;
                }
            }
            if compute > Ratio::one() {
                return Err(format!("{node} computes for {compute} > 1 per time-unit"));
            }
        }
        Ok(())
    }

    /// Extracts, for every destination rank, the weighted reduction trees
    /// realizing its sub-flow.
    pub fn extract_trees(
        &self,
        problem: &PrefixProblem,
    ) -> Result<BTreeMap<usize, Vec<WeightedTree>>, CoreError> {
        let mut out = BTreeMap::new();
        for d in 1..=problem.last_index() {
            let sub = problem.sub_problem(d)?;
            let trees = self.rank_solution(d).extract_trees(&sub)?;
            out.insert(d, trees);
        }
        Ok(out)
    }

    /// Builds an explicit one-port-feasible periodic schedule achieving this
    /// solution's throughput, by aggregating the reduction trees of every
    /// destination rank into a single weighted-matching decomposition.
    pub fn build_schedule(&self, problem: &PrefixProblem) -> Result<PeriodicSchedule, CoreError> {
        let platform = problem.platform();
        let per_rank_trees = self.extract_trees(problem)?;

        let weights: Vec<Ratio> = per_rank_trees
            .values()
            .flat_map(|trees| trees.iter().map(|t| t.weight.clone()))
            .collect();
        let period_int = lcm_of_denominators(&weights);
        let period = Ratio::from(period_int);

        let mut load = BipartiteLoad::new();
        let mut queues: BTreeMap<(usize, usize), PayloadQueue> = BTreeMap::new();
        let mut compute: BTreeMap<(NodeId, Task), Ratio> = BTreeMap::new();

        for trees in per_rank_trees.values() {
            for wt in trees {
                let count = &wt.weight * &period;
                for op in &wt.tree.ops {
                    match op {
                        TreeOp::Transfer { from, to, edge, interval } => {
                            let cost = &platform.edge(*edge).cost;
                            let duration = &count * problem.message_size() * cost;
                            if !duration.is_positive() {
                                continue;
                            }
                            let key = (from.index(), to.index());
                            load.add(key.0, key.1, duration.clone());
                            queues.entry(key).or_default().push((
                                Payload::Partial { lo: interval.0, hi: interval.1 },
                                count.clone(),
                                duration,
                            ));
                        }
                        TreeOp::Compute { node, task } => {
                            *compute.entry((*node, *task)).or_insert_with(Ratio::zero) += &count;
                        }
                    }
                }
            }
        }

        let steps = decompose(&load)?;
        let mut slots = Vec::with_capacity(steps.len());
        for step in &steps {
            let mut transfers = Vec::new();
            for &edge_idx in &step.edges {
                let le = &load.edges[edge_idx];
                let key = (le.sender, le.receiver);
                let queue = queues.get_mut(&key).expect("load edge without queue");
                let mut remaining = step.duration.clone();
                while remaining.is_positive() {
                    let Some((payload, count, duration)) = queue.first_mut() else {
                        break;
                    };
                    let from = NodeId(key.0);
                    let to = NodeId(key.1);
                    if *duration <= remaining {
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: count.clone(),
                            duration: duration.clone(),
                        });
                        remaining = &remaining - &*duration;
                        queue.remove(0);
                    } else {
                        let fraction = &remaining / &*duration;
                        let part_count = count.clone() * fraction;
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: part_count.clone(),
                            duration: remaining.clone(),
                        });
                        *count = &*count - &part_count;
                        *duration = &*duration - &remaining;
                        remaining = Ratio::zero();
                    }
                }
            }
            slots.push(CommSlot { duration: step.duration.clone(), transfers });
        }

        let computations = compute
            .into_iter()
            .map(|((node, task), count)| {
                let task_time =
                    problem.task_time(node).expect("tree assigns computation to a compute node");
                let duration = &count * &task_time;
                ComputeOp { node, task, count, duration }
            })
            .collect();

        Ok(PeriodicSchedule {
            period: period.clone(),
            operations_per_period: &self.throughput * &period,
            slots,
            computations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure6};
    use steady_platform::topologies::hypercube_prefix_instance;
    use steady_rational::rat;

    fn clique3_prefix() -> PrefixProblem {
        let (p, nodes) = generators::clique(3, rat(1, 1));
        PrefixProblem::new(p, nodes, rat(1, 1), rat(1, 1)).unwrap()
    }

    #[test]
    fn two_participant_prefix_matches_reduce() {
        // With two participants the prefix degenerates to a single reduce
        // towards rank 1, so the LP, the upper bound and the reduce optimum all
        // coincide.
        let (p, nodes) = generators::chain(2, rat(1, 1));
        let problem = PrefixProblem::new(p, nodes, rat(1, 1), rat(1, 1)).unwrap();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        let upper = problem.upper_bound().unwrap();
        assert_eq!(*sol.throughput(), upper);
        let reduce = problem.sub_problem(1).unwrap().solve().unwrap();
        assert_eq!(sol.throughput(), reduce.throughput());
    }

    #[test]
    fn clique3_prefix_is_bracketed_and_scheduled() {
        let problem = clique3_prefix();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        assert!(sol.throughput().is_positive());
        let upper = problem.upper_bound().unwrap();
        assert!(*sol.throughput() <= upper, "lower bound exceeds upper bound");

        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), *sol.throughput());
        // Some computation happens somewhere (rank 2 needs at least one task).
        assert!(!schedule.computations.is_empty());
    }

    #[test]
    fn prefix_throughput_never_exceeds_any_rank_reduce() {
        let problem = clique3_prefix();
        let sol = problem.solve().unwrap();
        for d in 1..=problem.last_index() {
            let reduce = problem.sub_problem(d).unwrap().solve().unwrap();
            assert!(
                sol.throughput() <= reduce.throughput(),
                "prefix TP {} beats rank-{d} reduce TP {}",
                sol.throughput(),
                reduce.throughput()
            );
        }
    }

    #[test]
    fn figure6_platform_prefix() {
        // Same platform as the Figure 6 reduce toy, but used as a prefix: rank
        // 1 needs v[0,1] and rank 2 needs v[0,2].
        let inst = figure6();
        let problem =
            PrefixProblem::new(inst.platform, inst.participants, inst.message_size, inst.task_cost)
                .unwrap();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        assert!(sol.throughput().is_positive());
        // Every destination rank's trees sum to TP.
        let trees = sol.extract_trees(&problem).unwrap();
        for (d, rank_trees) in &trees {
            let total: Ratio = rank_trees.iter().map(|t| t.weight.clone()).sum();
            assert_eq!(total, *sol.throughput(), "rank {d} trees do not sum to TP");
        }
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
    }

    #[test]
    fn hypercube_prefix_instance_solves() {
        // 4-node hypercube (dimension 2): small enough for the exact LP.
        let problem =
            PrefixProblem::from_instance(hypercube_prefix_instance(2, rat(1, 1))).unwrap();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        assert!(sol.throughput().is_positive());
        assert!(*sol.throughput() <= problem.upper_bound().unwrap());
    }

    #[test]
    fn rank_solutions_partition_the_rates() {
        let problem = clique3_prefix();
        let sol = problem.solve().unwrap();
        let total_sends: usize =
            (1..=problem.last_index()).map(|d| sol.rank_solution(d).sends().len()).sum();
        assert_eq!(total_sends, sol.sends().len());
        let total_tasks: usize =
            (1..=problem.last_index()).map(|d| sol.rank_solution(d).tasks().len()).sum();
        assert_eq!(total_tasks, sol.tasks().len());
    }

    #[test]
    fn invalid_problems_are_rejected() {
        let (p, nodes) = generators::clique(3, rat(1, 1));
        assert!(matches!(
            PrefixProblem::new(p.clone(), vec![nodes[0]], rat(1, 1), rat(1, 1)),
            Err(CoreError::EmptyProblem)
        ));
        assert!(matches!(
            PrefixProblem::new(p.clone(), vec![nodes[0], nodes[0]], rat(1, 1), rat(1, 1)),
            Err(CoreError::DuplicateParticipant { .. })
        ));
        // A router cannot participate.
        let mut q = Platform::new();
        let a = q.add_node("a", rat(1, 1));
        let r = q.add_router("r");
        q.add_link(a, r, rat(1, 1));
        assert!(matches!(
            PrefixProblem::new(q, vec![a, r], rat(1, 1), rat(1, 1)),
            Err(CoreError::NotAComputeNode { .. })
        ));
        // Rank 0 must be able to reach rank 1.
        let mut q = Platform::new();
        let a = q.add_node("a", rat(1, 1));
        let b = q.add_node("b", rat(1, 1));
        q.add_edge(b, a, rat(1, 1));
        assert!(matches!(
            PrefixProblem::new(q, vec![a, b], rat(1, 1), rat(1, 1)),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn lp_structure_is_reasonable() {
        let problem = clique3_prefix();
        let (lp, vars) = problem.build_lp();
        // 6 edges x (3 + 6) intervals + 3 nodes x (1 + 4) tasks + TP.
        assert_eq!(vars.send.len(), 54);
        assert_eq!(vars.cons.len(), 15);
        assert_eq!(lp.num_vars(), 70);
        let dump = lp.dump();
        assert!(dump.contains("throughput[d1]"));
        assert!(dump.contains("throughput[d2]"));
        assert!(dump.contains("conservation"));
    }
}
