//! Series of Reduces (§4): LP formulation `SSR(G)`, exact solution,
//! reduction-tree based schedule construction.
//!
//! Participants `P_{r_0}, ..., P_{r_N}` own values `v_0, ..., v_N`; each
//! reduce operation computes `v = v_0 ⊕ ... ⊕ v_N` for an associative,
//! non-commutative operator `⊕` and stores the result on `P_target`.  Partial
//! results `v[k,m] = v_k ⊕ ... ⊕ v_m` can be combined by the computational
//! task `T_{k,l,m} : v[k,m] = v[k,l] ⊕ v[l+1,m]`, so — unlike the scatter —
//! the steady-state behaviour interleaves communications and computations.
//!
//! The LP `SSR(G)` (§4.2) has one `send` variable per (edge, interval) pair,
//! one `cons` variable per (processor, task) pair, the per-processor compute
//! occupation `α(P_i)`, and the throughput `TP`.  Its constraints are the
//! one-port inequalities, the compute-occupation bound, the conservation law
//! (10) coupling transfers and computations, and the throughput equation (11).
//!
//! From the solved LP, [`crate::trees`] extracts a polynomial number of
//! weighted **reduction trees** (Lemma 2 / Theorem 1) and
//! [`ReduceSolution::build_schedule`] turns them into an explicit periodic
//! schedule using the weighted-matching decomposition, exactly as for the
//! scatter case.

use std::collections::BTreeMap;

use steady_lp::{LinearExpr, LpProblem, Sense, VarId};
use steady_platform::{EdgeId, NodeId, Platform, ReduceInstance};
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

use crate::coloring::{decompose, BipartiteLoad};
use crate::error::CoreError;
use crate::schedule::{CommSlot, ComputeOp, Payload, PayloadQueue, PeriodicSchedule, Transfer};
use crate::trees::{extract_trees, TreeOp, WeightedTree};

/// An interval `[k, m]` of participant indices: the partial value `v[k, m]`.
pub type Interval = (usize, usize);

/// A reduction task `T_{k,l,m}`: combines `v[k,l]` and `v[l+1,m]` into `v[k,m]`.
pub type Task = (usize, usize, usize);

/// A pipelined reduce problem.
#[derive(Debug, Clone)]
pub struct ReduceProblem {
    platform: Platform,
    participants: Vec<NodeId>,
    target: NodeId,
    message_size: Ratio,
    task_cost: Ratio,
    size_overrides: BTreeMap<Interval, Ratio>,
}

/// Mapping from LP variables back to reduce quantities.
#[derive(Debug, Clone)]
pub struct ReduceVars {
    /// `send[(edge, interval)]` variables.
    pub send: BTreeMap<(EdgeId, Interval), VarId>,
    /// `cons[(node, task)]` variables (compute nodes only).
    pub cons: BTreeMap<(NodeId, Task), VarId>,
    /// The throughput variable.
    pub throughput: VarId,
}

/// Exact steady-state solution of a reduce problem.
#[derive(Debug, Clone)]
pub struct ReduceSolution {
    throughput: Ratio,
    /// `sends[(edge, (k, m))]` = messages `v[k,m]` crossing `edge` per time-unit.
    sends: BTreeMap<(EdgeId, Interval), Ratio>,
    /// `tasks[(node, (k, l, m))]` = tasks `T_{k,l,m}` executed on `node` per time-unit.
    tasks: BTreeMap<(NodeId, Task), Ratio>,
}

impl ReduceProblem {
    /// Builds and validates a reduce problem.
    pub fn new(
        platform: Platform,
        participants: Vec<NodeId>,
        target: NodeId,
        message_size: Ratio,
        task_cost: Ratio,
    ) -> Result<Self, CoreError> {
        platform.validate()?;
        if participants.len() < 2 {
            return Err(CoreError::EmptyProblem);
        }
        let mut seen = Vec::new();
        for &p in &participants {
            if seen.contains(&p) {
                return Err(CoreError::DuplicateParticipant { node: p });
            }
            seen.push(p);
            if !platform.node(p).can_compute() {
                return Err(CoreError::NotAComputeNode { node: p });
            }
            if !platform.is_reachable(p, target) {
                return Err(CoreError::Unreachable { node: p });
            }
        }
        Ok(ReduceProblem {
            platform,
            participants,
            target,
            message_size,
            task_cost,
            size_overrides: BTreeMap::new(),
        })
    }

    /// Builds a problem from a generated [`ReduceInstance`].
    pub fn from_instance(instance: ReduceInstance) -> Result<Self, CoreError> {
        ReduceProblem::new(
            instance.platform,
            instance.participants,
            instance.target,
            instance.message_size,
            instance.task_cost,
        )
    }

    /// Overrides the size of one partial value `v[k, m]` (all others keep the
    /// uniform `message_size`).
    pub fn set_size_override(&mut self, interval: Interval, size: Ratio) {
        self.size_overrides.insert(interval, size);
    }

    /// The platform graph.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Participants in logical order (`participants[i]` owns `v_i`).
    pub fn participants(&self) -> &[NodeId] {
        &self.participants
    }

    /// The target node receiving `v[0, N]`.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Largest participant index `N`.
    pub fn last_index(&self) -> usize {
        self.participants.len() - 1
    }

    /// Size of the partial value `v[k, m]`.
    pub fn size(&self, interval: Interval) -> Ratio {
        self.size_overrides.get(&interval).cloned().unwrap_or_else(|| self.message_size.clone())
    }

    /// Time needed by `node` to execute one task `T_{k,l,m}`
    /// (`task_cost / speed(node)`); `None` for routers.
    pub fn task_time(&self, node: NodeId) -> Option<Ratio> {
        let speed = &self.platform.node(node).speed;
        if speed.is_positive() {
            Some(&self.task_cost / speed)
        } else {
            None
        }
    }

    /// All intervals `(k, m)` with `0 <= k <= m <= N`.
    pub fn intervals(&self) -> Vec<Interval> {
        let n = self.last_index();
        let mut out = Vec::new();
        for k in 0..=n {
            for m in k..=n {
                out.push((k, m));
            }
        }
        out
    }

    /// All tasks `(k, l, m)` with `k <= l < m <= N`.
    pub fn task_triples(&self) -> Vec<Task> {
        let n = self.last_index();
        let mut out = Vec::new();
        for k in 0..=n {
            for m in (k + 1)..=n {
                for l in k..m {
                    out.push((k, l, m));
                }
            }
        }
        out
    }

    /// Logical index of a node if it is a participant.
    pub fn participant_index(&self, node: NodeId) -> Option<usize> {
        self.participants.iter().position(|&p| p == node)
    }

    /// Whether the conservation law applies to `(node, interval)`:
    /// it does *not* apply to the initial values `v[i,i]` on their owner nor to
    /// the final value `v[0,N]` on the target.
    fn conservation_applies(&self, node: NodeId, interval: Interval) -> bool {
        let n = self.last_index();
        if let Some(idx) = self.participant_index(node) {
            if interval == (idx, idx) {
                return false;
            }
        }
        !(node == self.target && interval == (0, n))
    }

    /// Builds the `SSR(G)` linear program.
    pub fn build_lp(&self) -> (LpProblem, ReduceVars) {
        let mut lp = LpProblem::maximize();
        let platform = &self.platform;
        let n = self.last_index();
        let intervals = self.intervals();
        let triples = self.task_triples();

        let mut send = BTreeMap::new();
        for e in platform.edge_ids() {
            let edge = platform.edge(e);
            for &iv in &intervals {
                let v =
                    lp.add_var(format!("send[{}->{},v[{},{}]]", edge.from, edge.to, iv.0, iv.1));
                send.insert((e, iv), v);
            }
        }
        let mut cons = BTreeMap::new();
        for node in platform.node_ids() {
            if !platform.node(node).can_compute() {
                continue;
            }
            for &t in &triples {
                let v = lp.add_var(format!("cons[{node},T[{},{},{}]]", t.0, t.1, t.2));
                cons.insert((node, t), v);
            }
        }
        let throughput = lp.add_var("TP");
        lp.set_objective(throughput, Ratio::one());

        // One-port constraints (2)-(3) with the size-aware occupation (8).
        for node in platform.node_ids() {
            let mut out_expr = LinearExpr::new();
            for &e in platform.out_edges(node) {
                let cost = platform.edge(e).cost.clone();
                for &iv in &intervals {
                    out_expr.add_term(send[&(e, iv)], &self.size(iv) * &cost);
                }
            }
            if !out_expr.is_empty() {
                lp.add_constraint(
                    format!("one-port-out[{node}]"),
                    out_expr,
                    Sense::Le,
                    Ratio::one(),
                );
            }
            let mut in_expr = LinearExpr::new();
            for &e in platform.in_edges(node) {
                let cost = platform.edge(e).cost.clone();
                for &iv in &intervals {
                    in_expr.add_term(send[&(e, iv)], &self.size(iv) * &cost);
                }
            }
            if !in_expr.is_empty() {
                lp.add_constraint(format!("one-port-in[{node}]"), in_expr, Sense::Le, Ratio::one());
            }
        }

        // Compute occupation (7) + (9): alpha(P_i) <= 1.
        for node in platform.node_ids() {
            let Some(task_time) = self.task_time(node) else { continue };
            let mut expr = LinearExpr::new();
            for &t in &triples {
                expr.add_term(cons[&(node, t)], task_time.clone());
            }
            if !expr.is_empty() {
                lp.add_constraint(format!("compute[{node}]"), expr, Sense::Le, Ratio::one());
            }
        }

        // Conservation law (10).
        for node in platform.node_ids() {
            let computes = platform.node(node).can_compute();
            for &(k, m) in &intervals {
                if !self.conservation_applies(node, (k, m)) {
                    continue;
                }
                let mut expr = LinearExpr::new();
                // Incoming: transfers of v[k,m] into the node...
                for &e in platform.in_edges(node) {
                    expr.add_term(send[&(e, (k, m))], Ratio::one());
                }
                // ... and local tasks producing v[k,m].
                if computes {
                    for l in k..m {
                        expr.add_term(cons[&(node, (k, l, m))], Ratio::one());
                    }
                }
                // Outgoing: transfers of v[k,m] away from the node...
                for &e in platform.out_edges(node) {
                    expr.add_term(send[&(e, (k, m))], -Ratio::one());
                }
                // ... and local tasks consuming v[k,m]: as the left operand of
                // T_{k,m,n} (n > m) or the right operand of T_{n,k-1,m} (n < k).
                if computes {
                    for next in (m + 1)..=n {
                        expr.add_term(cons[&(node, (k, m, next))], -Ratio::one());
                    }
                    for prev in 0..k {
                        expr.add_term(cons[&(node, (prev, k - 1, m))], -Ratio::one());
                    }
                }
                if !expr.is_empty() {
                    lp.add_constraint(
                        format!("conservation[{node},v[{k},{m}]]"),
                        expr,
                        Sense::Eq,
                        Ratio::zero(),
                    );
                }
            }
        }

        // The conservation law is deliberately not stated for v[0,N] on the
        // target (the final result is consumed there).  Without an extra
        // condition the LP could exploit this by letting the target *emit*
        // final results it never computed and count them again when they come
        // back, inflating TP.  Re-emitting the final result is never useful,
        // so we pin those variables to zero (a WLOG restriction that restores
        // the physical meaning of constraint (11)).
        for &e in platform.out_edges(self.target) {
            lp.add_constraint(
                format!("no-reemit[{}]", self.target),
                LinearExpr::var(send[&(e, (0, n))]),
                Sense::Eq,
                Ratio::zero(),
            );
        }

        // Throughput (11): complete results reaching the target.
        {
            let mut expr = LinearExpr::new();
            for &e in platform.in_edges(self.target) {
                expr.add_term(send[&(e, (0, n))], Ratio::one());
            }
            if platform.node(self.target).can_compute() {
                for l in 0..n {
                    expr.add_term(cons[&(self.target, (0, l, n))], Ratio::one());
                }
            }
            expr.add_term(throughput, -Ratio::one());
            lp.add_constraint("throughput", expr, Sense::Eq, Ratio::zero());
        }

        (lp, ReduceVars { send, cons, throughput })
    }

    /// Solves `SSR(G)` exactly.
    pub fn solve(&self) -> Result<ReduceSolution, CoreError> {
        crate::problem::solve_steady(self)
    }
}

impl crate::problem::SteadyProblem for ReduceProblem {
    type Vars = ReduceVars;
    type Solution = ReduceSolution;
    const KIND: &'static str = "reduce";

    fn formulate(&self) -> (LpProblem, ReduceVars) {
        self.build_lp()
    }

    fn interpret(&self, vars: &ReduceVars, values: &[Ratio]) -> ReduceSolution {
        ReduceSolution {
            throughput: values[vars.throughput.index()].clone(),
            sends: crate::problem::positive_values(&vars.send, values),
            tasks: crate::problem::positive_values(&vars.cons, values),
        }
    }
}

impl ReduceSolution {
    /// Optimal steady-state throughput (reduce operations per time-unit).
    pub fn throughput(&self) -> &Ratio {
        &self.throughput
    }

    /// Messages `v[k,m]` crossing `edge` per time-unit.
    pub fn send_rate(&self, edge: EdgeId, interval: Interval) -> Ratio {
        self.sends.get(&(edge, interval)).cloned().unwrap_or_else(Ratio::zero)
    }

    /// Tasks `T_{k,l,m}` executed on `node` per time-unit.
    pub fn task_rate(&self, node: NodeId, task: Task) -> Ratio {
        self.tasks.get(&(node, task)).cloned().unwrap_or_else(Ratio::zero)
    }

    /// All non-zero send rates.
    pub fn sends(&self) -> &BTreeMap<(EdgeId, Interval), Ratio> {
        &self.sends
    }

    /// All non-zero task rates.
    pub fn tasks(&self) -> &BTreeMap<(NodeId, Task), Ratio> {
        &self.tasks
    }

    /// Builds a solution directly from raw rates (used by tests that verify
    /// the paper's published solutions and by the simulator's fault-injection
    /// tests).
    pub fn from_rates(
        throughput: Ratio,
        sends: BTreeMap<(EdgeId, Interval), Ratio>,
        tasks: BTreeMap<(NodeId, Task), Ratio>,
    ) -> Self {
        ReduceSolution { throughput, sends, tasks }
    }

    /// The minimal integer period: LCM of the denominators of all rates.
    pub fn period(&self) -> BigInt {
        let mut values: Vec<Ratio> = self.sends.values().cloned().collect();
        values.extend(self.tasks.values().cloned());
        values.push(self.throughput.clone());
        lcm_of_denominators(&values)
    }

    /// Compute occupation `alpha(P_i)` of a node per time-unit.
    pub fn compute_occupation(&self, problem: &ReduceProblem, node: NodeId) -> Ratio {
        let Some(task_time) = problem.task_time(node) else {
            return Ratio::zero();
        };
        let total: Ratio =
            self.tasks.iter().filter(|((n, _), _)| *n == node).map(|(_, rate)| rate.clone()).sum();
        total * task_time
    }

    /// Outgoing communication occupation of a node per time-unit.
    pub fn send_occupation(&self, problem: &ReduceProblem, node: NodeId) -> Ratio {
        let platform = problem.platform();
        let mut total = Ratio::zero();
        for &e in platform.out_edges(node) {
            let cost = &platform.edge(e).cost;
            for ((edge, iv), rate) in &self.sends {
                if *edge == e {
                    total += rate * &problem.size(*iv) * cost;
                }
            }
        }
        total
    }

    /// Incoming communication occupation of a node per time-unit.
    pub fn recv_occupation(&self, problem: &ReduceProblem, node: NodeId) -> Ratio {
        let platform = problem.platform();
        let mut total = Ratio::zero();
        for &e in platform.in_edges(node) {
            let cost = &platform.edge(e).cost;
            for ((edge, iv), rate) in &self.sends {
                if *edge == e {
                    total += rate * &problem.size(*iv) * cost;
                }
            }
        }
        total
    }

    /// Exhaustively re-checks every constraint of `SSR(G)` on this solution.
    pub fn verify(&self, problem: &ReduceProblem) -> Result<(), String> {
        let platform = problem.platform();
        let n = problem.last_index();
        for ((e, iv), v) in &self.sends {
            if v.is_negative() {
                return Err(format!("negative send rate on edge {:?} for v[{},{}]", e, iv.0, iv.1));
            }
            if iv.0 > iv.1 || iv.1 > n {
                return Err(format!("invalid interval ({}, {})", iv.0, iv.1));
            }
        }
        for ((node, t), v) in &self.tasks {
            if v.is_negative() {
                return Err(format!("negative task rate on {node}"));
            }
            if !(t.0 <= t.1 && t.1 < t.2 && t.2 <= n) {
                return Err(format!("invalid task ({}, {}, {})", t.0, t.1, t.2));
            }
            if problem.task_time(*node).is_none() {
                return Err(format!("router {node} executes tasks"));
            }
        }
        // Port and compute occupations.
        for node in platform.node_ids() {
            if self.send_occupation(problem, node) > Ratio::one() {
                return Err(format!("{node} emits for more than one time-unit per time-unit"));
            }
            if self.recv_occupation(problem, node) > Ratio::one() {
                return Err(format!("{node} receives for more than one time-unit per time-unit"));
            }
            if self.compute_occupation(problem, node) > Ratio::one() {
                return Err(format!("{node} computes for more than one time-unit per time-unit"));
            }
        }
        // Conservation law.
        for node in platform.node_ids() {
            for iv in problem.intervals() {
                if !problem.conservation_applies(node, iv) {
                    continue;
                }
                let (k, m) = iv;
                let mut incoming: Ratio =
                    platform.in_edges(node).iter().map(|&e| self.send_rate(e, iv)).sum();
                for l in k..m {
                    incoming += self.task_rate(node, (k, l, m));
                }
                let mut outgoing: Ratio =
                    platform.out_edges(node).iter().map(|&e| self.send_rate(e, iv)).sum();
                for next in (m + 1)..=n {
                    outgoing += self.task_rate(node, (k, m, next));
                }
                for prev in 0..k {
                    outgoing += self.task_rate(node, (prev, k - 1, m));
                }
                if incoming != outgoing {
                    return Err(format!(
                        "conservation violated at {node} for v[{k},{m}]: in {incoming}, out {outgoing}"
                    ));
                }
            }
        }
        // The target never re-emits the final result (see build_lp).
        for &e in platform.out_edges(problem.target()) {
            if self.send_rate(e, (0, n)).is_positive() {
                return Err(format!(
                    "target {} re-emits the final result v[0,{n}]",
                    problem.target()
                ));
            }
        }
        // Throughput.
        let mut delivered: Ratio =
            platform.in_edges(problem.target()).iter().map(|&e| self.send_rate(e, (0, n))).sum();
        for l in 0..n {
            delivered += self.task_rate(problem.target(), (0, l, n));
        }
        if delivered != self.throughput {
            return Err(format!(
                "target receives {delivered} complete results instead of TP = {}",
                self.throughput
            ));
        }
        Ok(())
    }

    /// Extracts the weighted reduction trees realizing this solution
    /// (Lemma 2 / Theorem 1).
    pub fn extract_trees(&self, problem: &ReduceProblem) -> Result<Vec<WeightedTree>, CoreError> {
        extract_trees(problem, self)
    }

    /// Builds the explicit periodic schedule achieving this solution's
    /// throughput: extract the reduction trees, aggregate their transfers into
    /// the per-link load of one period, decompose into matchings, and attach
    /// the (fully overlapped) per-node computations.
    pub fn build_schedule(&self, problem: &ReduceProblem) -> Result<PeriodicSchedule, CoreError> {
        let trees = self.extract_trees(problem)?;
        self.build_schedule_from_trees(problem, &trees)
    }

    /// Same as [`ReduceSolution::build_schedule`] but re-using already
    /// extracted trees (the fixed-period approximation path re-weights them).
    pub fn build_schedule_from_trees(
        &self,
        problem: &ReduceProblem,
        trees: &[WeightedTree],
    ) -> Result<PeriodicSchedule, CoreError> {
        let platform = problem.platform();
        // Period: make every tree weight integral.
        let weights: Vec<Ratio> = trees.iter().map(|t| t.weight.clone()).collect();
        let period_int = lcm_of_denominators(&weights);
        let period = Ratio::from(period_int);

        let mut load = BipartiteLoad::new();
        let mut queues: BTreeMap<(usize, usize), PayloadQueue> = BTreeMap::new();
        let mut compute: BTreeMap<(NodeId, Task), Ratio> = BTreeMap::new();
        let mut operations = Ratio::zero();

        for wt in trees {
            let count = &wt.weight * &period;
            operations += &count;
            for op in &wt.tree.ops {
                match op {
                    TreeOp::Transfer { from, to, edge, interval } => {
                        let cost = &platform.edge(*edge).cost;
                        let duration = &count * &problem.size(*interval) * cost;
                        if !duration.is_positive() {
                            continue;
                        }
                        let key = (from.index(), to.index());
                        load.add(key.0, key.1, duration.clone());
                        queues.entry(key).or_default().push((
                            Payload::Partial { lo: interval.0, hi: interval.1 },
                            count.clone(),
                            duration,
                        ));
                    }
                    TreeOp::Compute { node, task } => {
                        *compute.entry((*node, *task)).or_insert_with(Ratio::zero) += &count;
                    }
                }
            }
        }

        let steps = decompose(&load)?;
        let mut slots = Vec::with_capacity(steps.len());
        for step in &steps {
            let mut transfers = Vec::new();
            for &edge_idx in &step.edges {
                let le = &load.edges[edge_idx];
                let key = (le.sender, le.receiver);
                let queue = queues.get_mut(&key).expect("load edge without queue");
                let mut remaining = step.duration.clone();
                while remaining.is_positive() {
                    let Some((payload, count, duration)) = queue.first_mut() else {
                        break;
                    };
                    let from = NodeId(key.0);
                    let to = NodeId(key.1);
                    if *duration <= remaining {
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: count.clone(),
                            duration: duration.clone(),
                        });
                        remaining = &remaining - &*duration;
                        queue.remove(0);
                    } else {
                        let fraction = &remaining / &*duration;
                        let part_count = count.clone() * fraction;
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: part_count.clone(),
                            duration: remaining.clone(),
                        });
                        *count = &*count - &part_count;
                        *duration = &*duration - &remaining;
                        remaining = Ratio::zero();
                    }
                }
            }
            slots.push(CommSlot { duration: step.duration.clone(), transfers });
        }

        let computations = compute
            .into_iter()
            .map(|((node, task), count)| {
                let task_time =
                    problem.task_time(node).expect("tree assigns computation to a compute node");
                let duration = &count * &task_time;
                ComputeOp { node, task, count, duration }
            })
            .collect();

        Ok(PeriodicSchedule { period, operations_per_period: operations, slots, computations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure6};
    use steady_rational::rat;

    fn figure6_problem() -> ReduceProblem {
        ReduceProblem::from_instance(figure6()).unwrap()
    }

    #[test]
    fn figure6_throughput_is_one() {
        let problem = figure6_problem();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 1));
        sol.verify(&problem).unwrap();
    }

    #[test]
    fn figure6_paper_solution_is_feasible() {
        // Figure 6(b): for a period of 3,
        //   send(P1 -> P2, v[1,1]) = 2, send(P2 -> P1, v[2,2]) = 1,
        //   send(P1 -> P0, v[1,2]) = 1, send(P2 -> P0, v[1,2]) = 2,
        //   cons(P1, T_{1,1,2}) = 1, cons(P2, T_{1,1,2}) = 2, cons(P0, T_{0,0,2}) = 3.
        let problem = figure6_problem();
        let platform = problem.platform();
        let e = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        let mut sends = BTreeMap::new();
        sends.insert((e(1, 2), (1, 1)), rat(2, 3));
        sends.insert((e(2, 1), (2, 2)), rat(1, 3));
        sends.insert((e(1, 0), (1, 2)), rat(1, 3));
        sends.insert((e(2, 0), (1, 2)), rat(2, 3));
        let mut tasks = BTreeMap::new();
        tasks.insert((NodeId(1), (1, 1, 2)), rat(1, 3));
        tasks.insert((NodeId(2), (1, 1, 2)), rat(2, 3));
        tasks.insert((NodeId(0), (0, 0, 2)), rat(1, 1));
        let paper = ReduceSolution::from_rates(rat(1, 1), sends, tasks);
        paper.verify(&problem).unwrap();
        // Its throughput matches the LP optimum.
        let sol = problem.solve().unwrap();
        assert_eq!(sol.throughput(), paper.throughput());
        // Scaled to the paper's period of 3 the node occupations stay within bounds.
        assert!(paper.compute_occupation(&problem, NodeId(0)) <= rat(1, 1));
        assert_eq!(paper.compute_occupation(&problem, NodeId(0)), rat(1, 2));
        assert_eq!(paper.send_occupation(&problem, NodeId(1)), rat(1, 1));
        assert_eq!(paper.send_occupation(&problem, NodeId(2)), rat(1, 1));
    }

    #[test]
    fn figure6_schedule_is_valid() {
        let problem = figure6_problem();
        let sol = problem.solve().unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), rat(1, 1));
    }

    #[test]
    fn two_node_reduce_chain() {
        // Two participants P0 (target) and P1 connected by a unit link;
        // each operation needs v[1,1] shipped to P0 (size 1, cost 1) and one
        // task T_{0,0,1} on P0 (speed 1) -- or the task could run on P1 after
        // shipping v[0,0] there and shipping the result back, which is slower.
        // The optimum interleaves nothing fancier than TP = 1: the link carries
        // one unit-size message per operation in the best case, and P0's
        // compute port handles one task per time-unit.
        let (p, nodes) = generators::chain(2, rat(1, 1));
        let problem =
            ReduceProblem::new(p, vec![nodes[0], nodes[1]], nodes[0], rat(1, 1), rat(1, 1))
                .unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 1));
        sol.verify(&problem).unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
    }

    #[test]
    fn slow_link_bounds_throughput() {
        // Same two-node reduce but the link costs 4 per unit: v[1,1] (size 1)
        // takes 4 time-units to cross, so TP = 1/4.
        let mut p = Platform::new();
        let p0 = p.add_node("P0", rat(1, 1));
        let p1 = p.add_node("P1", rat(1, 1));
        p.add_link(p0, p1, rat(4, 1));
        let problem = ReduceProblem::new(p, vec![p0, p1], p0, rat(1, 1), rat(1, 1)).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 4));
    }

    #[test]
    fn slow_target_cpu_bounds_throughput() {
        // Star of 3 participants around a slow target: the target must execute
        // at least one task per operation (non-commutative reduction ending at
        // the target requires the last combine or a transfer of v[0,N]); with
        // speed 1/2 and fast links, computation elsewhere is preferred, but the
        // reduction can be finished on P1 or P2 and shipped, so communication
        // (cost 1/10, size 1) is the real bottleneck only at 10 ops/unit; the
        // compute capacity of the three nodes (1/2 + 1 + 1 tasks per unit,
        // 2 tasks per op) bounds TP at 5/4.
        let mut p = Platform::new();
        let p0 = p.add_node("P0", rat(1, 2));
        let p1 = p.add_node("P1", rat(1, 1));
        let p2 = p.add_node("P2", rat(1, 1));
        p.add_link(p0, p1, rat(1, 10));
        p.add_link(p0, p2, rat(1, 10));
        p.add_link(p1, p2, rat(1, 10));
        let problem = ReduceProblem::new(p, vec![p0, p1, p2], p0, rat(1, 1), rat(1, 1)).unwrap();
        let sol = problem.solve().unwrap();
        sol.verify(&problem).unwrap();
        assert_eq!(*sol.throughput(), rat(5, 4));
    }

    #[test]
    fn invalid_problems_are_rejected() {
        let inst = figure6();
        assert!(matches!(
            ReduceProblem::new(
                inst.platform.clone(),
                vec![inst.participants[0]],
                inst.target,
                rat(1, 1),
                rat(1, 1)
            ),
            Err(CoreError::EmptyProblem)
        ));
        assert!(matches!(
            ReduceProblem::new(
                inst.platform.clone(),
                vec![inst.participants[0], inst.participants[0]],
                inst.target,
                rat(1, 1),
                rat(1, 1)
            ),
            Err(CoreError::DuplicateParticipant { .. })
        ));
        // A router cannot participate.
        let mut p = inst.platform.clone();
        let router = p.add_router("r");
        p.add_link(router, NodeId(0), rat(1, 1));
        assert!(matches!(
            ReduceProblem::new(p, vec![router, NodeId(0)], NodeId(0), rat(1, 1), rat(1, 1)),
            Err(CoreError::NotAComputeNode { .. })
        ));
        // Unreachable participant.
        let mut p = Platform::new();
        let a = p.add_node("a", rat(1, 1));
        let b = p.add_node("b", rat(1, 1));
        assert!(matches!(
            ReduceProblem::new(p, vec![a, b], a, rat(1, 1), rat(1, 1)),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn interval_and_task_enumeration() {
        let problem = figure6_problem();
        assert_eq!(problem.last_index(), 2);
        assert_eq!(problem.intervals().len(), 6);
        assert_eq!(problem.task_triples().len(), 4); // (0,0,1) (0,0,2) (0,1,2) (1,1,2)
        assert_eq!(problem.participant_index(NodeId(1)), Some(1));
        assert_eq!(problem.participant_index(NodeId(7)), None);
    }

    #[test]
    fn size_overrides_affect_lp() {
        let mut problem = figure6_problem();
        assert_eq!(problem.size((0, 1)), rat(1, 1));
        problem.set_size_override((0, 1), rat(5, 1));
        assert_eq!(problem.size((0, 1)), rat(5, 1));
        assert_eq!(problem.size((1, 2)), rat(1, 1));
    }

    #[test]
    fn lp_dimensions() {
        let problem = figure6_problem();
        let (lp, vars) = problem.build_lp();
        // 6 edges x 6 intervals sends + 3 nodes x 4 tasks cons + TP.
        assert_eq!(vars.send.len(), 36);
        assert_eq!(vars.cons.len(), 12);
        assert_eq!(lp.num_vars(), 49);
        assert!(lp.num_constraints() > 10);
    }
}
