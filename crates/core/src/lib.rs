//! Steady-state throughput optimization of scatter, gossip and reduce
//! collectives on heterogeneous platforms.
//!
//! This crate is the primary contribution of the reproduction of
//! *"Optimizing the steady-state throughput of scatter and reduce operations
//! on heterogeneous platforms"* (A. Legrand, L. Marchal, Y. Robert,
//! IPDPS 2004).  Instead of minimizing the makespan of a single collective
//! operation, a long series of identical operations is pipelined and the
//! sustained **throughput** — the number of collective operations initiated
//! per time-unit — is maximized on a heterogeneous platform graph operated
//! under the one-port, full-overlap model.
//!
//! # What the crate provides
//!
//! | Module | Paper section | Content |
//! |---|---|---|
//! | [`scatter`] | §3 | LP `SSSP(G)`, exact throughput, periodic schedule |
//! | [`gather`] | §3 (dual) | LP `SSG(G)`: many sources, one sink; transpose duality |
//! | [`gossip`] | §3.5 | LP `SSPA2A(G)` for personalized all-to-all series |
//! | [`reduce`] | §4 | LP `SSR(G)` mixing transfers and computations |
//! | [`prefix`] | §6 (extension) | parallel-prefix series: per-rank reduce flows on shared ports |
//! | [`trees`] | §4.3–4.4 | Reduction-tree extraction (Lemma 2 / Theorem 1) |
//! | [`problem`] | — | Collective-generic build → solve → interpret pipeline with warm starts |
//! | [`coloring`] | §3.3 | Weighted bipartite matching decomposition |
//! | [`schedule`] | §3.3, §4.3 | Periodic schedules and one-port validation |
//! | [`approx`] | §4.6 | Fixed-period approximation (Proposition 4) |
//! | [`bounds`] | §3.4, §4.5 | Asymptotic optimality bounds (Lemma 1, Prop. 1–3) |
//!
//! # Quick start
//!
//! ```
//! use steady_core::scatter::ScatterProblem;
//! use steady_platform::generators::figure2;
//! use steady_rational::rat;
//!
//! // The toy platform of Figure 2: one source, two targets.
//! let problem = ScatterProblem::from_instance(figure2()).unwrap();
//! let solution = problem.solve().unwrap();
//! assert_eq!(*solution.throughput(), rat(1, 2));      // one scatter every 2 time-units
//!
//! // An explicit, one-port-feasible periodic schedule achieving it.
//! let schedule = solution.build_schedule(&problem).unwrap();
//! schedule.validate(problem.platform()).unwrap();
//! assert_eq!(schedule.throughput(), rat(1, 2));
//! ```
//!
//! Reduce operations work the same way but additionally expose the weighted
//! reduction trees realizing the optimal mix:
//!
//! ```
//! use steady_core::reduce::ReduceProblem;
//! use steady_platform::generators::figure6;
//! use steady_rational::rat;
//!
//! let problem = ReduceProblem::from_instance(figure6()).unwrap();
//! let solution = problem.solve().unwrap();
//! assert_eq!(*solution.throughput(), rat(1, 1));
//! let trees = solution.extract_trees(&problem).unwrap();
//! let total: steady_rational::Ratio = trees.iter().map(|t| t.weight.clone()).sum();
//! assert_eq!(total, rat(1, 1));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod approx;
pub mod bounds;
pub mod coloring;
pub mod error;
pub mod gather;
pub mod gossip;
pub mod paths;
pub mod prefix;
pub mod problem;
pub mod reduce;
pub mod scatter;
pub mod schedule;
pub mod trees;

pub use analysis::{analyze_gather, analyze_reduce, analyze_scatter, OccupationReport, Resource};
pub use approx::{
    approximate_for_period, approximate_scatter_for_period, build_fixed_period_scatter_schedule,
    build_fixed_period_schedule, FixedPeriodPlan, FixedPeriodScatterPlan,
};
pub use bounds::SteadyStateBounds;
pub use coloring::{BipartiteLoad, ColoringError, LoadEdge, MatchingStep};
pub use error::CoreError;
pub use gather::{GatherProblem, GatherSolution};
pub use gossip::{GossipProblem, GossipSolution};
pub use paths::{extract_paths, verify_path_set, WeightedPath};
pub use prefix::{PrefixProblem, PrefixSolution};
pub use problem::{
    solve_steady, solve_steady_warm, solve_steady_warm_observed, Certificate, SolveHealth,
    SolveReport, SteadyProblem,
};
pub use reduce::{Interval, ReduceProblem, ReduceSolution, Task};
pub use scatter::{ScatterProblem, ScatterSolution};
pub use schedule::{CommSlot, ComputeOp, Payload, PeriodicSchedule, Transfer};
pub use trees::{ReductionTree, TreeOp, WeightedTree};
