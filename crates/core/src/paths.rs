//! Flow-path decomposition of scatter solutions.
//!
//! The reduce machinery describes a steady-state solution compactly as a
//! weighted set of reduction trees (§4.3–4.4); the natural analogue for the
//! scatter is a weighted set of **routing paths**: for every target `P_k`, the
//! per-edge flows of commodity `m_k` decompose into at most `|E|` directed
//! paths from the source to `P_k`, whose weights sum to the throughput `TP`.
//! The decomposition is what makes the fixed-period approximation
//! (Proposition 4) applicable to scatters as well: rounding path weights keeps
//! the conservation law intact, whereas rounding raw edge flows would not.

use std::collections::{BTreeMap, VecDeque};

use steady_platform::{EdgeId, NodeId};
use steady_rational::Ratio;

use crate::error::CoreError;
use crate::scatter::{ScatterProblem, ScatterSolution};

/// One routing path of a scatter solution, carrying `weight` messages of the
/// commodity of `targets[target_index]` per time-unit.
#[derive(Debug, Clone)]
pub struct WeightedPath {
    /// Index of the target (commodity) in the problem's target list.
    pub target_index: usize,
    /// Edges of the path, in order from the source to the target.
    pub edges: Vec<EdgeId>,
    /// Messages per time-unit routed along this path.
    pub weight: Ratio,
}

impl WeightedPath {
    /// Number of hops.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the path has no edges (never produced by the extraction).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Decomposes a scatter solution into weighted source → target paths.
///
/// For every commodity the extraction repeatedly finds a path of
/// positive-remaining-flow edges from the source to the target (BFS), assigns
/// it the minimum remaining flow along it, and subtracts.  Each step zeroes at
/// least one edge, so at most `|E|` paths are produced per commodity.  Flow
/// circulations that do not contribute to the throughput (possible in a
/// degenerate LP vertex, never useful) are ignored.
pub fn extract_paths(
    problem: &ScatterProblem,
    solution: &ScatterSolution,
) -> Result<Vec<WeightedPath>, CoreError> {
    let platform = problem.platform();
    let source = problem.source();
    let mut out = Vec::new();

    for (ti, &target) in problem.targets().iter().enumerate() {
        // Remaining flow of this commodity on every edge.
        let mut remaining: BTreeMap<EdgeId, Ratio> = BTreeMap::new();
        for ((e, k), v) in solution.flows() {
            if *k == ti && v.is_positive() {
                remaining.insert(*e, v.clone());
            }
        }
        let mut extracted = Ratio::zero();
        while extracted < *solution.throughput() {
            // BFS from the source along positive-flow edges.
            let mut pred: BTreeMap<NodeId, EdgeId> = BTreeMap::new();
            let mut queue = VecDeque::new();
            queue.push_back(source);
            while let Some(node) = queue.pop_front() {
                if node == target {
                    break;
                }
                for &e in platform.out_edges(node) {
                    let positive = remaining.get(&e).map(|v| v.is_positive()).unwrap_or(false);
                    let next = platform.edge(e).to;
                    if positive && next != source && !pred.contains_key(&next) {
                        pred.insert(next, e);
                        queue.push_back(next);
                    }
                }
            }
            if !pred.contains_key(&target) {
                return Err(CoreError::TreeExtraction {
                    reason: format!(
                        "commodity of {target}: only {extracted} of {} units decompose into paths",
                        solution.throughput()
                    ),
                });
            }
            // Reconstruct the path and its bottleneck weight.
            let mut edges = Vec::new();
            let mut cursor = target;
            while cursor != source {
                let e = pred[&cursor];
                edges.push(e);
                cursor = platform.edge(e).from;
            }
            edges.reverse();
            let mut weight = remaining[&edges[0]].clone();
            for e in &edges {
                weight = weight.min(remaining[e].clone());
            }
            // Never extract more than the throughput still unaccounted for.
            weight = weight.min(solution.throughput() - &extracted);
            for e in &edges {
                let slot = remaining.get_mut(e).expect("edge on the path has flow");
                *slot = &*slot - &weight;
            }
            extracted += &weight;
            out.push(WeightedPath { target_index: ti, edges, weight });
        }
    }
    Ok(out)
}

/// Verifies a path decomposition against its solution: every path runs from
/// the source to its commodity's target along existing edges, per-commodity
/// weights sum to `TP`, and the per-edge usage never exceeds the solution's
/// flows.
pub fn verify_path_set(
    problem: &ScatterProblem,
    solution: &ScatterSolution,
    paths: &[WeightedPath],
) -> Result<(), String> {
    let platform = problem.platform();
    let mut usage: BTreeMap<(EdgeId, usize), Ratio> = BTreeMap::new();
    let mut per_target: Vec<Ratio> = vec![Ratio::zero(); problem.targets().len()];

    for (pi, path) in paths.iter().enumerate() {
        if !path.weight.is_positive() {
            return Err(format!("path {pi} has non-positive weight"));
        }
        let Some(&target) = problem.targets().get(path.target_index) else {
            return Err(format!("path {pi} refers to an unknown commodity"));
        };
        if path.edges.is_empty() {
            return Err(format!("path {pi} is empty"));
        }
        let mut cursor = problem.source();
        for &e in &path.edges {
            let edge = platform.edge(e);
            if edge.from != cursor {
                return Err(format!("path {pi} is not contiguous at {cursor}"));
            }
            cursor = edge.to;
            *usage.entry((e, path.target_index)).or_insert_with(Ratio::zero) += &path.weight;
        }
        if cursor != target {
            return Err(format!("path {pi} ends at {cursor} instead of {target}"));
        }
        per_target[path.target_index] += &path.weight;
    }
    for (ti, total) in per_target.iter().enumerate() {
        if total != solution.throughput() {
            return Err(format!(
                "commodity {ti} decomposes into {total} instead of TP = {}",
                solution.throughput()
            ));
        }
    }
    for ((e, ti), used) in usage {
        if used > solution.flow(e, ti) {
            return Err(format!(
                "edge {:?} carries {used} of commodity {ti} but the solution only routes {}",
                e,
                solution.flow(e, ti)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure2};
    use steady_platform::NodeId;
    use steady_rational::rat;

    #[test]
    fn figure2_decomposes_into_few_paths() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let paths = extract_paths(&problem, &solution).unwrap();
        verify_path_set(&problem, &solution, &paths).unwrap();
        // At most |E| paths per commodity; here far fewer.
        assert!(paths.len() <= 2 * problem.platform().num_edges());
        // Every commodity is covered.
        for ti in 0..problem.targets().len() {
            assert!(paths.iter().any(|p| p.target_index == ti));
        }
        // Two-hop platform: every path has exactly two edges.
        for p in &paths {
            assert_eq!(p.len(), 2);
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn paper_figure2_solution_uses_both_routes_to_p0() {
        // The paper's published flow (Figure 2(b)) splits commodity m0 across
        // the Pa and Pb routes; the decomposition must return both paths.
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let platform = problem.platform();
        let edge = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        let mut flows = std::collections::BTreeMap::new();
        flows.insert((edge(0, 1), 0usize), rat(3, 12));
        flows.insert((edge(0, 2), 0), rat(3, 12));
        flows.insert((edge(0, 2), 1), rat(6, 12));
        flows.insert((edge(1, 3), 0), rat(3, 12));
        flows.insert((edge(2, 3), 0), rat(3, 12));
        flows.insert((edge(2, 4), 1), rat(6, 12));
        let paper = ScatterSolution::from_flows(rat(1, 2), flows);
        let paths = extract_paths(&problem, &paper).unwrap();
        verify_path_set(&problem, &paper, &paths).unwrap();
        let m0_paths: Vec<_> = paths.iter().filter(|p| p.target_index == 0).collect();
        assert_eq!(m0_paths.len(), 2, "m0 must use both the Pa and the Pb route");
        let weights: Vec<Ratio> = m0_paths.iter().map(|p| p.weight.clone()).collect();
        assert!(weights.iter().all(|w| *w == rat(1, 4)));
    }

    #[test]
    fn star_decomposes_into_one_path_per_leaf() {
        let (p, center, leaves) = generators::star(4, rat(1, 1));
        let problem = ScatterProblem::new(p, center, leaves).unwrap();
        let solution = problem.solve().unwrap();
        let paths = extract_paths(&problem, &solution).unwrap();
        verify_path_set(&problem, &solution, &paths).unwrap();
        assert_eq!(paths.len(), 4);
        assert!(paths.iter().all(|p| p.len() == 1));
    }

    #[test]
    fn verify_rejects_corrupted_path_sets() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let paths = extract_paths(&problem, &solution).unwrap();

        // Dropping a path breaks the per-commodity total.
        let mut missing = paths.clone();
        missing.pop();
        assert!(verify_path_set(&problem, &solution, &missing).is_err());

        // Inflating a weight overshoots the edge flows.
        let mut inflated = paths.clone();
        inflated[0].weight = &inflated[0].weight + &rat(1, 1);
        assert!(verify_path_set(&problem, &solution, &inflated).is_err());

        // A non-contiguous path is rejected.
        let mut broken = paths;
        broken[0].edges.reverse();
        if broken[0].edges.len() > 1 {
            assert!(verify_path_set(&problem, &solution, &broken).is_err());
        }
    }
}
