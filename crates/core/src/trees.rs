//! Reduction-tree extraction (§4.3–§4.4, Lemma 2 and Theorem 1).
//!
//! A schedule for a single reduce operation is naturally described by a
//! *reduction tree*: a set of transfers and computational tasks such that the
//! input of every task is either produced by another task of the tree or is an
//! initial value `v[i,i]` sitting on its owner, and whose final output is the
//! complete result `v[0,N]` on the target processor.
//!
//! The steady-state LP solution mixes several reduction trees (different
//! time-stamps may use different trees).  [`extract_trees`] reconstructs an
//! explicit weighted set of trees `{(T, w(T))}` with
//! `sum_T w(T) = TP` and `sum_T w(T) · χ_T <= A` (the LP solution), following
//! the greedy `EXTRACT_TREES` / `FIND_TREE` algorithm of Figure 8:
//!
//! 1. pure transfer circulations are cancelled per interval first (they carry
//!    no useful work and would trap the greedy walk in cycles);
//! 2. starting from `v[0,N]` on the target, every pending input is resolved
//!    either by a local task producing it or by a transfer from a neighbour,
//!    preferring local computation as in the paper;
//! 3. the tree's weight is the minimum remaining value among its operations;
//!    that amount is subtracted and the process repeats until the accumulated
//!    weight reaches `TP`.
//!
//! The number of extracted trees is polynomial (at most the number of non-zero
//! operations, each extraction zeroing at least one of them).

use std::collections::{BTreeMap, BTreeSet};

use steady_platform::{EdgeId, NodeId};
use steady_rational::Ratio;

use crate::error::CoreError;
use crate::reduce::{Interval, ReduceProblem, ReduceSolution, Task};

/// One operation of a reduction tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeOp {
    /// Transfer of the partial value `v[interval]` along `edge`.
    Transfer {
        /// Sending node.
        from: NodeId,
        /// Receiving node.
        to: NodeId,
        /// Platform edge used.
        edge: EdgeId,
        /// The partial value moved.
        interval: Interval,
    },
    /// Execution of the task `T_{k,l,m}` on `node`.
    Compute {
        /// Executing node.
        node: NodeId,
        /// The task `(k, l, m)`.
        task: Task,
    },
}

/// A reduction tree: a list of operations whose final product is `v[0,N]` on
/// the target.
#[derive(Debug, Clone, Default)]
pub struct ReductionTree {
    /// Operations of the tree (no particular order; dependencies are implied
    /// by the intervals).
    pub ops: Vec<TreeOp>,
}

impl ReductionTree {
    /// Number of transfer operations.
    pub fn num_transfers(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, TreeOp::Transfer { .. })).count()
    }

    /// Number of computational tasks.
    pub fn num_tasks(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o, TreeOp::Compute { .. })).count()
    }

    /// Checks the structural validity of the tree for `problem`:
    /// every operation's inputs are produced within the tree or are initial
    /// values on their owners, every produced value is consumed exactly once
    /// (except the final result on the target), and the tree computes `v[0,N]`
    /// on the target.
    pub fn verify(&self, problem: &ReduceProblem) -> Result<(), String> {
        let n = problem.last_index();
        // Multiset of available (interval, node) facts: initial values.
        let mut produced: BTreeMap<(Interval, NodeId), i64> = BTreeMap::new();
        let mut consumed: BTreeMap<(Interval, NodeId), i64> = BTreeMap::new();

        for op in &self.ops {
            match op {
                TreeOp::Transfer { from, to, edge, interval } => {
                    let e = problem.platform().edge(*edge);
                    if e.from != *from || e.to != *to {
                        return Err(format!(
                            "transfer uses edge {:?} whose endpoints do not match {from} -> {to}",
                            edge
                        ));
                    }
                    *consumed.entry((*interval, *from)).or_insert(0) += 1;
                    *produced.entry((*interval, *to)).or_insert(0) += 1;
                }
                TreeOp::Compute { node, task } => {
                    if problem.task_time(*node).is_none() {
                        return Err(format!("router {node} executes a task"));
                    }
                    let (k, l, m) = *task;
                    if !(k <= l && l < m && m <= n) {
                        return Err(format!("invalid task ({k},{l},{m})"));
                    }
                    *consumed.entry(((k, l), *node)).or_insert(0) += 1;
                    *consumed.entry(((l + 1, m), *node)).or_insert(0) += 1;
                    *produced.entry(((k, m), *node)).or_insert(0) += 1;
                }
            }
        }

        // Every consumption must be backed by a production or an initial value.
        for (&(interval, node), &count) in &consumed {
            let initial =
                problem.participant_index(node) == Some(interval.0) && interval.0 == interval.1;
            let have = produced.get(&(interval, node)).copied().unwrap_or(0);
            if !initial && have < count {
                return Err(format!(
                    "value v[{},{}] consumed {count} times on {node} but produced only {have}",
                    interval.0, interval.1
                ));
            }
        }
        // The final result must be produced on the target.
        let final_ok = produced.get(&((0, n), problem.target())).copied().unwrap_or(0) >= 1
            || (problem.participant_index(problem.target()) == Some(0) && n == 0);
        if !final_ok {
            return Err("the tree does not produce v[0,N] on the target".into());
        }
        Ok(())
    }
}

/// A reduction tree together with its steady-state weight (operations per
/// time-unit performed along this tree).
#[derive(Debug, Clone)]
pub struct WeightedTree {
    /// The tree.
    pub tree: ReductionTree,
    /// Its throughput share `w(T)`.
    pub weight: Ratio,
}

/// Key identifying one "task" of the solution in the paper's sense (either a
/// transfer or a computation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum OpKey {
    Send(EdgeId, Interval),
    Compute(NodeId, Task),
}

/// Remaining (not yet attributed to a tree) amounts of every operation.
#[derive(Debug, Clone)]
struct Remaining {
    values: BTreeMap<OpKey, Ratio>,
}

impl Remaining {
    fn get(&self, key: &OpKey) -> Ratio {
        self.values.get(key).cloned().unwrap_or_else(Ratio::zero)
    }

    fn subtract(&mut self, key: &OpKey, amount: &Ratio) {
        if let Some(v) = self.values.get_mut(key) {
            *v = &*v - amount;
            if !v.is_positive() {
                self.values.remove(key);
            }
        }
    }
}

/// Extracts the weighted reduction trees realizing `solution` (Theorem 1).
pub fn extract_trees(
    problem: &ReduceProblem,
    solution: &ReduceSolution,
) -> Result<Vec<WeightedTree>, CoreError> {
    let mut remaining = Remaining {
        values: solution
            .sends()
            .iter()
            .map(|(&(e, iv), v)| (OpKey::Send(e, iv), v.clone()))
            .chain(solution.tasks().iter().map(|(&(n, t), v)| (OpKey::Compute(n, t), v.clone())))
            .filter(|(_, v)| v.is_positive())
            .collect(),
    };

    // Step 1: cancel pure transfer circulations per interval.  They satisfy
    // the conservation law but carry no useful work, and they would trap the
    // greedy backward walk of FIND_TREE in a cycle.
    cancel_circulations(problem, &mut remaining);

    let mut trees = Vec::new();
    let mut total = Ratio::zero();
    let throughput = solution.throughput().clone();
    let max_trees = remaining.values.len() + 2;

    while total < throughput {
        if trees.len() >= max_trees {
            return Err(CoreError::TreeExtraction {
                reason: format!(
                    "extracted {} trees covering only {total} of TP = {throughput}",
                    trees.len()
                ),
            });
        }
        let tree = find_tree(problem, &remaining)?;
        // Weight: minimum remaining value over the tree's operations, clamped
        // by the still-uncovered throughput.
        let mut weight = &throughput - &total;
        for op in &tree.ops {
            let key = op_key(op);
            let avail = remaining.get(&key);
            if avail < weight {
                weight = avail;
            }
        }
        if !weight.is_positive() {
            return Err(CoreError::TreeExtraction {
                reason: "found a tree with zero available weight".into(),
            });
        }
        for op in &tree.ops {
            remaining.subtract(&op_key(op), &weight);
        }
        total += &weight;
        trees.push(WeightedTree { tree, weight });
    }

    Ok(trees)
}

fn op_key(op: &TreeOp) -> OpKey {
    match op {
        TreeOp::Transfer { edge, interval, .. } => OpKey::Send(*edge, *interval),
        TreeOp::Compute { node, task } => OpKey::Compute(*node, *task),
    }
}

/// Cancels directed cycles in the per-interval transfer flow.  Tasks strictly
/// enlarge intervals, so any useless circulation in a conservative solution is
/// made of transfers of a single interval only.
fn cancel_circulations(problem: &ReduceProblem, remaining: &mut Remaining) {
    let platform = problem.platform();
    for interval in problem.intervals() {
        loop {
            // Positive-flow adjacency for this interval.
            let mut adjacency: BTreeMap<NodeId, Vec<(EdgeId, NodeId)>> = BTreeMap::new();
            for e in platform.edge_ids() {
                if remaining.get(&OpKey::Send(e, interval)).is_positive() {
                    let edge = platform.edge(e);
                    adjacency.entry(edge.from).or_default().push((e, edge.to));
                }
            }
            if adjacency.is_empty() {
                break;
            }
            // DFS cycle detection.
            let Some(cycle) = find_cycle(&adjacency) else { break };
            let amount = cycle
                .iter()
                .map(|&(e, _)| remaining.get(&OpKey::Send(e, interval)))
                .min()
                .expect("cycle is non-empty");
            for &(e, _) in &cycle {
                remaining.subtract(&OpKey::Send(e, interval), &amount);
            }
        }
    }
}

/// Finds a directed cycle in the adjacency structure, returned as a list of
/// `(edge, destination)` hops.
fn find_cycle(
    adjacency: &BTreeMap<NodeId, Vec<(EdgeId, NodeId)>>,
) -> Option<Vec<(EdgeId, NodeId)>> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Unvisited,
        InStack,
        Done,
    }
    let mut state: BTreeMap<NodeId, State> = BTreeMap::new();
    for &n in adjacency.keys() {
        state.entry(n).or_insert(State::Unvisited);
        for &(_, to) in &adjacency[&n] {
            state.entry(to).or_insert(State::Unvisited);
        }
    }
    let nodes: Vec<NodeId> = state.keys().copied().collect();

    fn dfs(
        node: NodeId,
        adjacency: &BTreeMap<NodeId, Vec<(EdgeId, NodeId)>>,
        state: &mut BTreeMap<NodeId, State>,
        path: &mut Vec<(NodeId, EdgeId, NodeId)>,
    ) -> Option<Vec<(EdgeId, NodeId)>> {
        state.insert(node, State::InStack);
        if let Some(next_hops) = adjacency.get(&node) {
            for &(edge, to) in next_hops {
                match state.get(&to).copied().unwrap_or(State::Unvisited) {
                    State::InStack => {
                        // Found a cycle: collect the portion of the path from `to`.
                        let mut cycle = Vec::new();
                        let start = path.iter().position(|&(from, _, _)| from == to);
                        if let Some(start) = start {
                            for &(_, e, t) in &path[start..] {
                                cycle.push((e, t));
                            }
                        }
                        cycle.push((edge, to));
                        return Some(cycle);
                    }
                    State::Unvisited => {
                        path.push((node, edge, to));
                        if let Some(c) = dfs(to, adjacency, state, path) {
                            return Some(c);
                        }
                        path.pop();
                    }
                    State::Done => {}
                }
            }
        }
        state.insert(node, State::Done);
        None
    }

    for n in nodes {
        if state[&n] == State::Unvisited {
            let mut path = Vec::new();
            if let Some(c) = dfs(n, adjacency, &mut state, &mut path) {
                return Some(c);
            }
        }
    }
    None
}

/// One pending input of `FIND_TREE`: the partial value `interval` must be made
/// available on `node`; `forbidden` lists the nodes already traversed by this
/// interval's transfer chain (cycle guard).
#[derive(Debug, Clone)]
struct PendingInput {
    interval: Interval,
    node: NodeId,
    forbidden: BTreeSet<NodeId>,
}

/// `FIND_TREE` (Figure 8): walks backwards from `v[0,N]` on the target,
/// resolving every pending input by a local task (preferred, as in the paper)
/// or by a transfer from a neighbour with positive remaining flow.
fn find_tree(problem: &ReduceProblem, remaining: &Remaining) -> Result<ReductionTree, CoreError> {
    let platform = problem.platform();
    let n = problem.last_index();
    let mut ops = Vec::new();
    let mut inputs = vec![PendingInput {
        interval: (0, n),
        node: problem.target(),
        forbidden: BTreeSet::from([problem.target()]),
    }];

    let mut guard = 0usize;
    let guard_cap =
        4 * (remaining.values.len() + problem.intervals().len() + 4) * (platform.num_nodes() + 1);

    while let Some(pos) = inputs.iter().position(|inp| {
        !(problem.participant_index(inp.node) == Some(inp.interval.0)
            && inp.interval.0 == inp.interval.1)
    }) {
        guard += 1;
        if guard > guard_cap {
            return Err(CoreError::TreeExtraction {
                reason: "FIND_TREE exceeded its iteration bound".into(),
            });
        }
        let input = inputs.swap_remove(pos);
        let (k, m) = input.interval;
        let node = input.node;

        // Preferred: the value is computed in place by some task T_{k,l,m}.
        let mut best_task: Option<(Task, Ratio)> = None;
        if problem.task_time(node).is_some() {
            for l in k..m {
                let avail = remaining.get(&OpKey::Compute(node, (k, l, m)));
                if avail.is_positive() {
                    match &best_task {
                        Some((_, best)) if *best >= avail => {}
                        _ => best_task = Some(((k, l, m), avail)),
                    }
                }
            }
        }
        if let Some((task, _)) = best_task {
            let (_, l, _) = task;
            ops.push(TreeOp::Compute { node, task });
            inputs.push(PendingInput { interval: (k, l), node, forbidden: BTreeSet::from([node]) });
            inputs.push(PendingInput {
                interval: (l + 1, m),
                node,
                forbidden: BTreeSet::from([node]),
            });
            continue;
        }

        // Otherwise: the value is received from a neighbour.
        let mut best_edge: Option<(EdgeId, NodeId, Ratio)> = None;
        for &e in platform.in_edges(node) {
            let from = platform.edge(e).from;
            if input.forbidden.contains(&from) {
                continue;
            }
            let avail = remaining.get(&OpKey::Send(e, (k, m)));
            if avail.is_positive() {
                match &best_edge {
                    Some((_, _, best)) if *best >= avail => {}
                    _ => best_edge = Some((e, from, avail)),
                }
            }
        }
        let Some((edge, from, _)) = best_edge else {
            return Err(CoreError::TreeExtraction {
                reason: format!(
                    "no remaining operation produces v[{k},{m}] on {node} (throughput not fully decomposable)"
                ),
            });
        };
        ops.push(TreeOp::Transfer { from, to: node, edge, interval: (k, m) });
        let mut forbidden = input.forbidden.clone();
        forbidden.insert(from);
        inputs.push(PendingInput { interval: (k, m), node: from, forbidden });
    }

    Ok(ReductionTree { ops })
}

/// Verifies a weighted tree set against the original solution:
/// `sum_T w(T) = TP`, `sum_T w(T) · χ_T <= A`, and each tree is structurally
/// valid.
pub fn verify_tree_set(
    problem: &ReduceProblem,
    solution: &ReduceSolution,
    trees: &[WeightedTree],
) -> Result<(), String> {
    let mut usage: BTreeMap<OpKey, Ratio> = BTreeMap::new();
    let mut total = Ratio::zero();
    for wt in trees {
        if !wt.weight.is_positive() {
            return Err("a tree has non-positive weight".into());
        }
        wt.tree.verify(problem)?;
        total += &wt.weight;
        for op in &wt.tree.ops {
            *usage.entry(op_key(op)).or_insert_with(Ratio::zero) += &wt.weight;
        }
    }
    if total != *solution.throughput() {
        return Err(format!(
            "tree weights sum to {total} instead of TP = {}",
            solution.throughput()
        ));
    }
    for (key, used) in &usage {
        let available = match key {
            OpKey::Send(e, iv) => solution.send_rate(*e, *iv),
            OpKey::Compute(n, t) => solution.task_rate(*n, *t),
        };
        if *used > available {
            return Err(format!("operation {key:?} used {used} but only {available} available"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceProblem;
    use steady_platform::generators::{self, figure6};
    use steady_rational::rat;

    fn figure6_problem() -> ReduceProblem {
        ReduceProblem::from_instance(figure6()).unwrap()
    }

    #[test]
    fn figure6_decomposes_into_two_trees() {
        // Figure 7: the solution of Figure 6 uses two reduction trees with
        // throughputs 1/3 and 2/3.
        let problem = figure6_problem();
        let solution = problem.solve().unwrap();
        let trees = extract_trees(&problem, &solution).unwrap();
        verify_tree_set(&problem, &solution, &trees).unwrap();
        let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
        assert_eq!(total, rat(1, 1));
        // A reduce over three values always needs exactly two tasks per tree.
        for t in &trees {
            assert_eq!(t.tree.num_tasks(), 2);
            assert!(t.tree.num_transfers() >= 2);
        }
        // The optimum genuinely needs more than one tree here (the paper uses
        // weights 1/3 and 2/3); we only require a small polynomial number.
        assert!(!trees.is_empty() && trees.len() <= 6, "got {} trees", trees.len());
    }

    #[test]
    fn figure6_paper_trees_are_valid() {
        // Hand-build the two trees of Figure 7 and check them.
        let problem = figure6_problem();
        let platform = problem.platform();
        let e = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        // Tree T0 (throughput 1/3): P2 sends v[2,2] to P1, P1 computes T_{1,1,2},
        // P1 sends v[1,2] to P0, P0 computes T_{0,0,2}.
        let t0 = ReductionTree {
            ops: vec![
                TreeOp::Transfer {
                    from: NodeId(2),
                    to: NodeId(1),
                    edge: e(2, 1),
                    interval: (2, 2),
                },
                TreeOp::Compute { node: NodeId(1), task: (1, 1, 2) },
                TreeOp::Transfer {
                    from: NodeId(1),
                    to: NodeId(0),
                    edge: e(1, 0),
                    interval: (1, 2),
                },
                TreeOp::Compute { node: NodeId(0), task: (0, 0, 2) },
            ],
        };
        t0.verify(&problem).unwrap();
        // Tree T1 (throughput 2/3): P1 sends v[1,1] to P2, P2 computes T_{1,1,2},
        // P2 sends v[1,2] to P0, P0 computes T_{0,0,2}.
        let t1 = ReductionTree {
            ops: vec![
                TreeOp::Transfer {
                    from: NodeId(1),
                    to: NodeId(2),
                    edge: e(1, 2),
                    interval: (1, 1),
                },
                TreeOp::Compute { node: NodeId(2), task: (1, 1, 2) },
                TreeOp::Transfer {
                    from: NodeId(2),
                    to: NodeId(0),
                    edge: e(2, 0),
                    interval: (1, 2),
                },
                TreeOp::Compute { node: NodeId(0), task: (0, 0, 2) },
            ],
        };
        t1.verify(&problem).unwrap();
        assert_eq!(t0.num_transfers(), 2);
        assert_eq!(t0.num_tasks(), 2);
    }

    #[test]
    fn tree_verify_rejects_missing_production() {
        let problem = figure6_problem();
        let platform = problem.platform();
        let e = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        // v[1,2] is sent without ever being computed.
        let bad = ReductionTree {
            ops: vec![
                TreeOp::Transfer {
                    from: NodeId(1),
                    to: NodeId(0),
                    edge: e(1, 0),
                    interval: (1, 2),
                },
                TreeOp::Compute { node: NodeId(0), task: (0, 0, 2) },
            ],
        };
        let err = bad.verify(&problem).unwrap_err();
        assert!(err.contains("consumed"), "{err}");
    }

    #[test]
    fn tree_verify_rejects_wrong_final_result() {
        let problem = figure6_problem();
        let platform = problem.platform();
        let e = |a: usize, b: usize| platform.edge_between(NodeId(a), NodeId(b)).unwrap();
        // A tree that only builds v[1,2] on P0 and never the full result.
        let bad = ReductionTree {
            ops: vec![
                TreeOp::Transfer {
                    from: NodeId(2),
                    to: NodeId(1),
                    edge: e(2, 1),
                    interval: (2, 2),
                },
                TreeOp::Compute { node: NodeId(1), task: (1, 1, 2) },
                TreeOp::Transfer {
                    from: NodeId(1),
                    to: NodeId(0),
                    edge: e(1, 0),
                    interval: (1, 2),
                },
            ],
        };
        let err = bad.verify(&problem).unwrap_err();
        assert!(err.contains("does not produce"), "{err}");
    }

    #[test]
    fn extraction_survives_junk_circulations() {
        // Start from half of the optimal solution (so that ports have slack)
        // and add a useless v[1,1] circulation P1 -> P2 -> P1; the doctored
        // solution is still feasible and extraction must not be confused by
        // the junk flow.
        let problem = figure6_problem();
        let solution = problem.solve().unwrap();
        let platform = problem.platform();
        let half = rat(1, 2);
        let mut sends: BTreeMap<_, _> =
            solution.sends().iter().map(|(k, v)| (*k, v * &half)).collect();
        let tasks: BTreeMap<_, _> = solution.tasks().iter().map(|(k, v)| (*k, v * &half)).collect();
        let e12 = platform.edge_between(NodeId(1), NodeId(2)).unwrap();
        let e21 = platform.edge_between(NodeId(2), NodeId(1)).unwrap();
        *sends.entry((e12, (1, 1))).or_insert_with(Ratio::zero) += rat(1, 10);
        *sends.entry((e21, (1, 1))).or_insert_with(Ratio::zero) += rat(1, 10);
        let doctored = ReduceSolution::from_rates(solution.throughput() * &half, sends, tasks);
        // The doctored solution still satisfies every constraint (the cycle is
        // conservative and the ports have slack) ...
        doctored.verify(&problem).unwrap();
        // ... and the extraction is not confused by the junk flow.
        let trees = extract_trees(&problem, &doctored).unwrap();
        let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
        assert_eq!(total, rat(1, 2));
        for t in &trees {
            t.tree.verify(&problem).unwrap();
        }
    }

    #[test]
    fn chain_reduce_tree_extraction() {
        // Four participants on a chain, target at one end: the natural tree is
        // a pipeline of partial combinations.
        let (p, nodes) = generators::chain(4, rat(1, 1));
        let problem = ReduceProblem::new(
            p,
            vec![nodes[0], nodes[1], nodes[2], nodes[3]],
            nodes[0],
            rat(1, 1),
            rat(1, 1),
        )
        .unwrap();
        let solution = problem.solve().unwrap();
        solution.verify(&problem).unwrap();
        let trees = extract_trees(&problem, &solution).unwrap();
        verify_tree_set(&problem, &solution, &trees).unwrap();
        // Every tree must contain exactly N = 3 computational tasks.
        for t in &trees {
            assert_eq!(t.tree.num_tasks(), 3);
        }
    }
}
