//! Asymptotic optimality bounds (§3.4, Lemma 1, Propositions 1–3).
//!
//! For a time horizon `K`:
//!
//! * **upper bound** (Lemma 1): no schedule of any kind — periodic or not —
//!   can complete more than `opt(G, K) ≤ TP(G) × K` operations, because the
//!   time-averaged rates of any schedule satisfy the steady-state LP.
//! * **lower bound** (the concrete algorithm of §3.4): play the periodic
//!   schedule with an initialization phase that fills the forwarding buffers
//!   (at most `I = diameter × T` time-units), `r = ⌊(K − 2I − T)/T⌋` full
//!   steady-state periods, and a clean-up phase; this completes
//!   `steady(G, K) = r × T × TP(G)` operations.
//!
//! The ratio `steady(G, K) / opt(G, K)` therefore tends to 1 as `K → ∞`
//! (Proposition 1), which the simulator crate checks empirically.

use steady_rational::{BigInt, Ratio};

/// Number of operations per period and period length of a periodic schedule,
/// together with the platform's hop diameter; everything needed to evaluate
/// the §3.4 bounds.
#[derive(Debug, Clone)]
pub struct SteadyStateBounds {
    /// Optimal steady-state throughput `TP(G)`.
    pub throughput: Ratio,
    /// Period `T` of the concrete schedule.
    pub period: Ratio,
    /// Hop diameter of the platform graph (longest shortest path, in hops).
    pub diameter: usize,
}

impl SteadyStateBounds {
    /// Creates the bound evaluator.
    pub fn new(throughput: Ratio, period: Ratio, diameter: usize) -> Self {
        SteadyStateBounds { throughput, period, diameter }
    }

    /// Lemma 1: an upper bound on the number of operations any schedule can
    /// complete within `horizon` time-units.
    pub fn optimal_upper_bound(&self, horizon: &Ratio) -> Ratio {
        &self.throughput * horizon
    }

    /// Duration of the initialization (and clean-up) phase: the buffers are
    /// full after at most `diameter` periods.
    pub fn startup_time(&self) -> Ratio {
        &Ratio::from(self.diameter) * &self.period
    }

    /// Number of full steady-state periods fitting in `horizon`:
    /// `r = ⌊(K − 2I − T) / T⌋`, clamped at zero.
    pub fn steady_periods(&self, horizon: &Ratio) -> BigInt {
        let two_i = &Ratio::from(2) * &self.startup_time();
        let available = horizon - &two_i - &self.period;
        if !available.is_positive() {
            return BigInt::zero();
        }
        (&available / &self.period).floor()
    }

    /// Number of operations completed by the concrete steady-state algorithm
    /// within `horizon` time-units: `steady(G, K) = r × T × TP`.
    pub fn steady_lower_bound(&self, horizon: &Ratio) -> Ratio {
        let r = Ratio::from(self.steady_periods(horizon));
        &(&r * &self.period) * &self.throughput
    }

    /// The ratio `steady(G, K) / opt(G, K)`; tends to 1 as the horizon grows
    /// (Proposition 1).
    pub fn efficiency(&self, horizon: &Ratio) -> Ratio {
        let opt = self.optimal_upper_bound(horizon);
        if !opt.is_positive() {
            return Ratio::zero();
        }
        &self.steady_lower_bound(horizon) / &opt
    }

    /// Smallest horizon guaranteeing an efficiency of at least `1 - epsilon`
    /// (derived from `r T ≥ (1-ε) K` and `r ≥ (K − 2I − T)/T − 1`):
    /// `K ≥ (2I + 2T) / ε`.
    pub fn horizon_for_efficiency(&self, epsilon: &Ratio) -> Ratio {
        assert!(epsilon.is_positive(), "epsilon must be positive");
        let two_i = &Ratio::from(2) * &self.startup_time();
        let numerator = &two_i + &(&Ratio::from(2) * &self.period);
        &numerator / epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    fn toy_bounds() -> SteadyStateBounds {
        // Figure 2: TP = 1/2, period 12, diameter 2.
        SteadyStateBounds::new(rat(1, 2), rat(12, 1), 2)
    }

    #[test]
    fn upper_bound_is_linear() {
        let b = toy_bounds();
        assert_eq!(b.optimal_upper_bound(&rat(100, 1)), rat(50, 1));
        assert_eq!(b.optimal_upper_bound(&rat(0, 1)), rat(0, 1));
    }

    #[test]
    fn steady_counts_match_formula() {
        let b = toy_bounds();
        // I = 24, so for K = 100: r = floor((100 - 48 - 12)/12) = 3,
        // steady = 3 * 12 * 1/2 = 18.
        assert_eq!(b.startup_time(), rat(24, 1));
        assert_eq!(b.steady_periods(&rat(100, 1)), steady_rational::BigInt::from(3i64));
        assert_eq!(b.steady_lower_bound(&rat(100, 1)), rat(18, 1));
        // Short horizons complete nothing.
        assert_eq!(b.steady_lower_bound(&rat(30, 1)), rat(0, 1));
    }

    #[test]
    fn efficiency_tends_to_one() {
        let b = toy_bounds();
        let mut last = Ratio::zero();
        for k in [100i64, 1_000, 10_000, 100_000] {
            let eff = b.efficiency(&rat(k, 1));
            assert!(eff <= rat(1, 1));
            assert!(eff >= last, "efficiency must be non-decreasing on this grid");
            last = eff;
        }
        assert!(last > rat(999, 1000), "efficiency at K = 100000 is {last}");
    }

    #[test]
    fn horizon_for_efficiency_is_sufficient() {
        let b = toy_bounds();
        for (num, den) in [(1i64, 10i64), (1, 100), (1, 1000)] {
            let eps = rat(num, den);
            let k = b.horizon_for_efficiency(&eps);
            let eff = b.efficiency(&k);
            assert!(eff >= &rat(1, 1) - &eps, "efficiency {eff} at horizon {k} is below 1 - {eps}");
        }
    }

    #[test]
    fn zero_throughput_edge_case() {
        let b = SteadyStateBounds::new(Ratio::zero(), rat(1, 1), 1);
        assert_eq!(b.efficiency(&rat(100, 1)), Ratio::zero());
    }
}
