//! Fixed-period approximation (§4.6, Proposition 4).
//!
//! The exact periodic schedule uses the period `T` = LCM of the denominators
//! of the LP solution, which may be impractically large.  The paper's remedy:
//! pick any fixed period `T_fixed`, round each reduction tree's per-period
//! weight down to `r(T) = ⌊ w(T)/T × T_fixed ⌋`, and schedule `r(T)` instances
//! of every tree per period.  The loss is bounded by
//! `TP − (1/T_fixed) Σ r(T) ≤ card(Trees) / T_fixed`, so the approximated
//! throughput converges to the optimum as `T_fixed` grows.

use std::collections::BTreeMap;

use steady_rational::{BigInt, Ratio};

use crate::error::CoreError;
use crate::paths::WeightedPath;
use crate::reduce::{ReduceProblem, ReduceSolution};
use crate::scatter::{ScatterProblem, ScatterSolution};
use crate::schedule::PeriodicSchedule;
use crate::trees::WeightedTree;

/// Result of the fixed-period approximation.
#[derive(Debug, Clone)]
pub struct FixedPeriodPlan {
    /// The requested period.
    pub period: Ratio,
    /// For every input tree, the integer number of instances per period.
    pub tree_counts: Vec<BigInt>,
    /// Achieved throughput `(Σ r(T)) / T_fixed`.
    pub throughput: Ratio,
    /// The a-priori bound on the loss: `card(Trees) / T_fixed`.
    pub loss_bound: Ratio,
}

/// Rounds a weighted tree set to an integer number of instances per period of
/// `t_fixed`, per Proposition 4.
pub fn approximate_for_period(
    trees: &[WeightedTree],
    t_fixed: &Ratio,
) -> Result<FixedPeriodPlan, CoreError> {
    if !t_fixed.is_positive() {
        return Err(CoreError::InvalidPeriod);
    }
    let mut counts = Vec::with_capacity(trees.len());
    let mut total = Ratio::zero();
    for wt in trees {
        // w(T) is a per-time-unit rate, so the per-period amount is w(T) * T_fixed.
        let r = (&wt.weight * t_fixed).floor();
        total += Ratio::from(r.clone());
        counts.push(r);
    }
    let throughput = &total / t_fixed;
    let loss_bound = &Ratio::from(trees.len()) / t_fixed;
    Ok(FixedPeriodPlan { period: t_fixed.clone(), tree_counts: counts, throughput, loss_bound })
}

/// Builds an explicit schedule with period `t_fixed` from the rounded plan:
/// the trees are re-weighted to `r(T)/T_fixed` and fed through the usual
/// matching decomposition.
pub fn build_fixed_period_schedule(
    problem: &ReduceProblem,
    solution: &ReduceSolution,
    trees: &[WeightedTree],
    t_fixed: &Ratio,
) -> Result<(FixedPeriodPlan, PeriodicSchedule), CoreError> {
    let plan = approximate_for_period(trees, t_fixed)?;
    let reweighted: Vec<WeightedTree> = trees
        .iter()
        .zip(&plan.tree_counts)
        .filter(|(_, r)| r.is_positive())
        .map(|(wt, r)| WeightedTree {
            tree: wt.tree.clone(),
            weight: &Ratio::from(r.clone()) / t_fixed,
        })
        .collect();
    let schedule = solution.build_schedule_from_trees(problem, &reweighted)?;
    Ok((plan, schedule))
}

/// Result of the fixed-period approximation applied to a scatter (paths play
/// the role the reduction trees play for the reduce).
#[derive(Debug, Clone)]
pub struct FixedPeriodScatterPlan {
    /// The requested period.
    pub period: Ratio,
    /// For every input path, the integer number of messages per period.
    pub path_counts: Vec<BigInt>,
    /// Achieved throughput: the slowest commodity's rounded delivery rate.
    pub throughput: Ratio,
    /// The a-priori bound on the loss: `card(paths) / T_fixed`.
    pub loss_bound: Ratio,
}

/// Rounds a weighted path set to an integer number of messages per period of
/// `t_fixed` (Proposition 4 transposed to the scatter: rounding path weights
/// preserves the conservation law, rounding raw edge flows would not).
pub fn approximate_scatter_for_period(
    problem: &ScatterProblem,
    paths: &[WeightedPath],
    t_fixed: &Ratio,
) -> Result<FixedPeriodScatterPlan, CoreError> {
    if !t_fixed.is_positive() {
        return Err(CoreError::InvalidPeriod);
    }
    let mut counts = Vec::with_capacity(paths.len());
    let mut per_target = vec![Ratio::zero(); problem.targets().len()];
    for path in paths {
        let r = (&path.weight * t_fixed).floor();
        per_target[path.target_index] += Ratio::from(r.clone());
        counts.push(r);
    }
    // Every target must receive the same number of messages per operation, so
    // the achieved throughput is pinned by the slowest commodity.
    let slowest = per_target.iter().min().cloned().unwrap_or_else(Ratio::zero);
    let throughput = &slowest / t_fixed;
    let loss_bound = &Ratio::from(paths.len()) / t_fixed;
    Ok(FixedPeriodScatterPlan {
        period: t_fixed.clone(),
        path_counts: counts,
        throughput,
        loss_bound,
    })
}

/// Builds an explicit scatter schedule with period `t_fixed` from the rounded
/// plan, by turning the rounded paths back into per-edge flows and reusing the
/// usual matching decomposition.
pub fn build_fixed_period_scatter_schedule(
    problem: &ScatterProblem,
    paths: &[WeightedPath],
    t_fixed: &Ratio,
) -> Result<(FixedPeriodScatterPlan, PeriodicSchedule), CoreError> {
    let plan = approximate_scatter_for_period(problem, paths, t_fixed)?;
    let mut flows: BTreeMap<_, Ratio> = BTreeMap::new();
    for (path, count) in paths.iter().zip(&plan.path_counts) {
        if !count.is_positive() {
            continue;
        }
        let rate = &Ratio::from(count.clone()) / t_fixed;
        for &e in &path.edges {
            *flows.entry((e, path.target_index)).or_insert_with(Ratio::zero) += &rate;
        }
    }
    let rounded = ScatterSolution::from_flows(plan.throughput.clone(), flows);
    let schedule = rounded.build_schedule(problem)?;
    Ok((plan, schedule))
}

/// Checks Proposition 4 for a plan: the achieved throughput is within
/// `card(Trees)/T_fixed` of the optimum and never exceeds it.
pub fn verify_loss_bound(plan: &FixedPeriodPlan, optimal: &Ratio) -> Result<(), String> {
    if plan.throughput > *optimal {
        return Err(format!(
            "approximated throughput {} exceeds the optimum {optimal}",
            plan.throughput
        ));
    }
    let loss = optimal - &plan.throughput;
    if loss > plan.loss_bound {
        return Err(format!("loss {loss} exceeds the Proposition-4 bound {}", plan.loss_bound));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::ReduceProblem;
    use steady_platform::generators::figure6;
    use steady_rational::rat;

    fn solved_figure6() -> (ReduceProblem, ReduceSolution, Vec<WeightedTree>) {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let solution = problem.solve().unwrap();
        let trees = solution.extract_trees(&problem).unwrap();
        (problem, solution, trees)
    }

    #[test]
    fn loss_shrinks_with_period() {
        let (_problem, solution, trees) = solved_figure6();
        let mut last_loss = None;
        for t in [3i64, 9, 27, 81, 243] {
            let plan = approximate_for_period(&trees, &rat(t, 1)).unwrap();
            verify_loss_bound(&plan, solution.throughput()).unwrap();
            let loss = solution.throughput() - &plan.throughput;
            if let Some(prev) = &last_loss {
                assert!(loss <= *prev, "loss must not increase with the period");
            }
            last_loss = Some(loss);
        }
        // With a period that is a multiple of the exact one, the loss is zero.
        let exact_period = Ratio::from(solution.period());
        let plan = approximate_for_period(&trees, &exact_period).unwrap();
        assert_eq!(plan.throughput, *solution.throughput());
    }

    #[test]
    fn tiny_period_can_lose_everything() {
        let (_problem, _solution, trees) = solved_figure6();
        // With a ridiculously small period every tree rounds down to zero.
        let plan = approximate_for_period(&trees, &rat(1, 100)).unwrap();
        assert_eq!(plan.throughput, Ratio::zero());
        assert!(plan.loss_bound >= rat(1, 1));
    }

    #[test]
    fn fixed_period_schedule_is_feasible() {
        let (problem, solution, trees) = solved_figure6();
        let (plan, schedule) =
            build_fixed_period_schedule(&problem, &solution, &trees, &rat(30, 1)).unwrap();
        schedule.validate(problem.platform()).unwrap();
        verify_loss_bound(&plan, solution.throughput()).unwrap();
        assert_eq!(schedule.throughput(), plan.throughput);
    }

    #[test]
    fn invalid_period_rejected() {
        let (_problem, _solution, trees) = solved_figure6();
        assert!(matches!(
            approximate_for_period(&trees, &Ratio::zero()),
            Err(CoreError::InvalidPeriod)
        ));
        assert!(matches!(
            approximate_for_period(&trees, &rat(-3, 1)),
            Err(CoreError::InvalidPeriod)
        ));
    }

    #[test]
    fn scatter_fixed_period_loss_is_bounded() {
        use crate::paths::extract_paths;
        use crate::scatter::ScatterProblem;
        use steady_platform::generators::figure2;

        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let paths = extract_paths(&problem, &solution).unwrap();

        let mut last_loss: Option<Ratio> = None;
        for t in [2i64, 4, 8, 16, 64] {
            let plan = approximate_scatter_for_period(&problem, &paths, &rat(t, 1)).unwrap();
            assert!(plan.throughput <= *solution.throughput());
            let loss = solution.throughput() - &plan.throughput;
            assert!(loss <= plan.loss_bound, "loss {loss} exceeds bound {}", plan.loss_bound);
            if let Some(prev) = &last_loss {
                assert!(loss <= *prev, "loss must not increase with the period");
            }
            last_loss = Some(loss);
        }
        // A multiple of the exact period loses nothing.
        let exact = Ratio::from(solution.period());
        let plan = approximate_scatter_for_period(&problem, &paths, &exact).unwrap();
        assert_eq!(plan.throughput, *solution.throughput());
    }

    #[test]
    fn scatter_fixed_period_schedule_is_feasible() {
        use crate::paths::extract_paths;
        use crate::scatter::ScatterProblem;
        use steady_platform::generators::figure2;

        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let paths = extract_paths(&problem, &solution).unwrap();
        let (plan, schedule) =
            build_fixed_period_scatter_schedule(&problem, &paths, &rat(20, 1)).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), plan.throughput);
        assert!(matches!(
            approximate_scatter_for_period(&problem, &paths, &Ratio::zero()),
            Err(CoreError::InvalidPeriod)
        ));
    }

    #[test]
    fn verify_loss_bound_rejects_bogus_plans() {
        let (_p, solution, trees) = solved_figure6();
        let mut plan = approximate_for_period(&trees, &rat(3, 1)).unwrap();
        plan.throughput = solution.throughput() + &rat(1, 1);
        assert!(verify_loss_bound(&plan, solution.throughput()).is_err());
        let mut plan2 = approximate_for_period(&trees, &rat(3, 1)).unwrap();
        plan2.throughput = Ratio::zero();
        plan2.loss_bound = rat(1, 1000);
        assert!(verify_loss_bound(&plan2, solution.throughput()).is_err());
    }
}
