//! Bottleneck analysis of steady-state solutions.
//!
//! The optimal throughput of every steady-state LP is pinned by a handful of
//! saturated resources: an outgoing or incoming port whose occupation reaches
//! 1, or (for reduce) a processor whose compute occupation reaches 1.  This
//! module recomputes the per-resource occupations of a solution and reports
//! which resources are tight, which is how the experiment tables of
//! EXPERIMENTS.md explain *why* a platform achieves a given TP (e.g. "the
//! target's incoming port is the bottleneck" on Figure 6, or "the source's
//! outgoing port" on Figure 2).

use std::collections::BTreeMap;

use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;

use crate::gather::{GatherProblem, GatherSolution};
use crate::reduce::{ReduceProblem, ReduceSolution};
use crate::scatter::{ScatterProblem, ScatterSolution};

/// The kind of resource a steady-state occupation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resource {
    /// The outgoing (emission) port of a node.
    OutPort(NodeId),
    /// The incoming (reception) port of a node.
    InPort(NodeId),
    /// The compute unit of a node.
    Compute(NodeId),
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::OutPort(n) => write!(f, "out-port of {n}"),
            Resource::InPort(n) => write!(f, "in-port of {n}"),
            Resource::Compute(n) => write!(f, "compute unit of {n}"),
        }
    }
}

/// Per-resource occupations of a steady-state solution, all in `[0, 1]`.
#[derive(Debug, Clone, Default)]
pub struct OccupationReport {
    occupations: BTreeMap<Resource, Ratio>,
}

impl OccupationReport {
    /// Occupation of one resource (zero if the resource is unused).
    pub fn occupation(&self, resource: Resource) -> Ratio {
        self.occupations.get(&resource).cloned().unwrap_or_else(Ratio::zero)
    }

    /// All non-zero occupations.
    pub fn occupations(&self) -> &BTreeMap<Resource, Ratio> {
        &self.occupations
    }

    /// Resources whose occupation equals 1 exactly — these pin the throughput.
    pub fn saturated(&self) -> Vec<Resource> {
        self.occupations.iter().filter(|(_, occ)| **occ == Ratio::one()).map(|(r, _)| *r).collect()
    }

    /// The most loaded resource and its occupation, if any traffic exists.
    pub fn busiest(&self) -> Option<(Resource, Ratio)> {
        self.occupations
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(r, occ)| (*r, occ.clone()))
    }

    /// Human-readable table, one resource per line, sorted by occupation.
    pub fn render(&self, platform: &Platform) -> String {
        let mut rows: Vec<(&Resource, &Ratio)> = self.occupations.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let mut out = String::new();
        for (resource, occ) in rows {
            let name = match resource {
                Resource::OutPort(n) | Resource::InPort(n) | Resource::Compute(n) => {
                    platform.node(*n).name.clone()
                }
            };
            let saturated = if *occ == Ratio::one() { "  <- saturated" } else { "" };
            out.push_str(&format!("{resource} ({name}): {occ}{saturated}\n"));
        }
        out
    }

    fn insert_if_positive(&mut self, resource: Resource, occupation: Ratio) {
        if occupation.is_positive() {
            self.occupations.insert(resource, occupation);
        }
    }
}

/// Occupation report of a scatter solution.
pub fn analyze_scatter(problem: &ScatterProblem, solution: &ScatterSolution) -> OccupationReport {
    let platform = problem.platform();
    let mut report = OccupationReport::default();
    for node in platform.node_ids() {
        let out: Ratio =
            platform.out_edges(node).iter().map(|&e| solution.edge_occupation(problem, e)).sum();
        report.insert_if_positive(Resource::OutPort(node), out);
        let inc: Ratio =
            platform.in_edges(node).iter().map(|&e| solution.edge_occupation(problem, e)).sum();
        report.insert_if_positive(Resource::InPort(node), inc);
    }
    report
}

/// Occupation report of a gather solution.
pub fn analyze_gather(problem: &GatherProblem, solution: &GatherSolution) -> OccupationReport {
    let platform = problem.platform();
    let mut report = OccupationReport::default();
    for node in platform.node_ids() {
        let out: Ratio =
            platform.out_edges(node).iter().map(|&e| solution.edge_occupation(problem, e)).sum();
        report.insert_if_positive(Resource::OutPort(node), out);
        let inc: Ratio =
            platform.in_edges(node).iter().map(|&e| solution.edge_occupation(problem, e)).sum();
        report.insert_if_positive(Resource::InPort(node), inc);
    }
    report
}

/// Occupation report of a reduce solution (ports and compute units).
pub fn analyze_reduce(problem: &ReduceProblem, solution: &ReduceSolution) -> OccupationReport {
    let platform = problem.platform();
    let mut report = OccupationReport::default();
    for node in platform.node_ids() {
        report.insert_if_positive(Resource::OutPort(node), solution.send_occupation(problem, node));
        report.insert_if_positive(Resource::InPort(node), solution.recv_occupation(problem, node));
        report.insert_if_positive(
            Resource::Compute(node),
            solution.compute_occupation(problem, node),
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::{self, figure2, figure6};
    use steady_rational::rat;

    #[test]
    fn figure2_bottleneck_is_the_source_out_port() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let report = analyze_scatter(&problem, &solution);
        let saturated = report.saturated();
        assert!(
            saturated.contains(&Resource::OutPort(problem.source())),
            "source out-port should be saturated, got {saturated:?}"
        );
        let (busiest, occ) = report.busiest().unwrap();
        assert_eq!(occ, rat(1, 1));
        assert!(matches!(busiest, Resource::OutPort(_) | Resource::InPort(_)));
        let rendered = report.render(problem.platform());
        assert!(rendered.contains("saturated"));
        assert!(rendered.contains("Ps"));
    }

    #[test]
    fn star_gather_bottleneck_is_the_sink_in_port() {
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = GatherProblem::new(p, leaves, center).unwrap();
        let solution = problem.solve().unwrap();
        let report = analyze_gather(&problem, &solution);
        assert!(report.saturated().contains(&Resource::InPort(center)));
        // Every leaf only emits 1/3 of the time.
        for &leaf in problem.sources() {
            assert_eq!(report.occupation(Resource::OutPort(leaf)), rat(1, 3));
        }
    }

    #[test]
    fn figure6_reduce_reports_compute_and_port_occupations() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let solution = problem.solve().unwrap();
        let report = analyze_reduce(&problem, &solution);
        // At TP = 1 at least one resource is saturated.
        assert!(!report.saturated().is_empty());
        // All occupations are within [0, 1].
        for occ in report.occupations().values() {
            assert!(*occ <= rat(1, 1));
            assert!(occ.is_positive());
        }
        // The target computes the final combine, so its compute unit is busy.
        assert!(report.occupation(Resource::Compute(problem.target())).is_positive());
    }

    #[test]
    fn unused_resources_read_as_zero() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let solution = problem.solve().unwrap();
        let report = analyze_scatter(&problem, &solution);
        // The targets never emit anything.
        for &t in problem.targets() {
            assert_eq!(report.occupation(Resource::OutPort(t)), rat(0, 1));
        }
        assert_eq!(report.occupation(Resource::Compute(problem.source())), rat(0, 1));
    }

    #[test]
    fn resource_display_names() {
        assert_eq!(Resource::OutPort(NodeId(1)).to_string(), "out-port of P1");
        assert_eq!(Resource::InPort(NodeId(2)).to_string(), "in-port of P2");
        assert_eq!(Resource::Compute(NodeId(3)).to_string(), "compute unit of P3");
    }
}
