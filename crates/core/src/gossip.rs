//! Series of Gossips — personalized all-to-all (§3.5): LP `SSPA2A(G)`.
//!
//! A gossip (personalized all-to-all) involves a set of source processors
//! `{P_s, s ∈ S}` and a set of target processors `{P_t, t ∈ T}`: every source
//! holds a distinct message for every target.  Messages are typed by the pair
//! `(source, destination)`, the constraints are the one-port inequalities and
//! the per-commodity conservation law, and the common throughput `TP` must be
//! achieved for every `(source, destination)` pair.
//!
//! The machinery is the same as for the scatter (which is the special case
//! `|S| = 1`): solve the LP exactly, scale by the LCM of the denominators,
//! decompose the per-link load into matchings.

use std::collections::BTreeMap;

use steady_lp::{LinearExpr, LpProblem, Sense, VarId};
use steady_platform::{EdgeId, GossipInstance, NodeId, Platform};
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

use crate::coloring::{decompose, BipartiteLoad};
use crate::error::CoreError;
use crate::schedule::{CommSlot, Payload, PayloadQueue, PeriodicSchedule, Transfer};

/// A pipelined personalized all-to-all problem.
#[derive(Debug, Clone)]
pub struct GossipProblem {
    platform: Platform,
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
    /// Commodities: (source index, target index) pairs with distinct endpoints.
    commodities: Vec<(usize, usize)>,
}

/// Mapping from LP variables back to gossip quantities.
#[derive(Debug, Clone)]
pub struct GossipVars {
    /// `send[(edge, commodity_index)]` variables.
    pub send: BTreeMap<(EdgeId, usize), VarId>,
    /// The throughput variable.
    pub throughput: VarId,
}

/// Exact steady-state solution of a gossip problem.
#[derive(Debug, Clone)]
pub struct GossipSolution {
    throughput: Ratio,
    flows: BTreeMap<(EdgeId, usize), Ratio>,
}

impl GossipProblem {
    /// Builds and validates a gossip problem.
    pub fn new(
        platform: Platform,
        sources: Vec<NodeId>,
        targets: Vec<NodeId>,
    ) -> Result<Self, CoreError> {
        platform.validate()?;
        if sources.is_empty() || targets.is_empty() {
            return Err(CoreError::EmptyProblem);
        }
        let mut seen = Vec::new();
        for &s in &sources {
            if seen.contains(&s) {
                return Err(CoreError::DuplicateParticipant { node: s });
            }
            seen.push(s);
        }
        let mut seen = Vec::new();
        for &t in &targets {
            if seen.contains(&t) {
                return Err(CoreError::DuplicateParticipant { node: t });
            }
            seen.push(t);
        }
        let mut commodities = Vec::new();
        for (si, &s) in sources.iter().enumerate() {
            for (ti, &t) in targets.iter().enumerate() {
                if s == t {
                    continue;
                }
                if !platform.is_reachable(s, t) {
                    return Err(CoreError::Unreachable { node: t });
                }
                commodities.push((si, ti));
            }
        }
        if commodities.is_empty() {
            return Err(CoreError::EmptyProblem);
        }
        Ok(GossipProblem { platform, sources, targets, commodities })
    }

    /// Builds a problem from a generated [`GossipInstance`].
    pub fn from_instance(instance: GossipInstance) -> Result<Self, CoreError> {
        GossipProblem::new(instance.platform, instance.sources, instance.targets)
    }

    /// The platform graph.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Source processors.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Target processors.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }

    /// Commodities as `(source node, target node)` pairs.
    pub fn commodities(&self) -> Vec<(NodeId, NodeId)> {
        self.commodities.iter().map(|&(si, ti)| (self.sources[si], self.targets[ti])).collect()
    }

    fn commodity_endpoints(&self, c: usize) -> (NodeId, NodeId) {
        let (si, ti) = self.commodities[c];
        (self.sources[si], self.targets[ti])
    }

    /// Builds the `SSPA2A(G)` linear program.
    pub fn build_lp(&self) -> (LpProblem, GossipVars) {
        let mut lp = LpProblem::maximize();
        let platform = &self.platform;

        let mut send = BTreeMap::new();
        for e in platform.edge_ids() {
            let edge = platform.edge(e);
            for c in 0..self.commodities.len() {
                let (s, t) = self.commodity_endpoints(c);
                let v = lp.add_var(format!("send[{}->{},m({s},{t})]", edge.from, edge.to));
                send.insert((e, c), v);
            }
        }
        let throughput = lp.add_var("TP");
        lp.set_objective(throughput, Ratio::one());

        // One-port constraints.
        for n in platform.node_ids() {
            let mut out_expr = LinearExpr::new();
            for &e in platform.out_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for c in 0..self.commodities.len() {
                    out_expr.add_term(send[&(e, c)], cost.clone());
                }
            }
            if !out_expr.is_empty() {
                lp.add_constraint(format!("one-port-out[{n}]"), out_expr, Sense::Le, Ratio::one());
            }
            let mut in_expr = LinearExpr::new();
            for &e in platform.in_edges(n) {
                let cost = platform.edge(e).cost.clone();
                for c in 0..self.commodities.len() {
                    in_expr.add_term(send[&(e, c)], cost.clone());
                }
            }
            if !in_expr.is_empty() {
                lp.add_constraint(format!("one-port-in[{n}]"), in_expr, Sense::Le, Ratio::one());
            }
        }

        // Conservation at every node that is neither the emitter nor the
        // destination of the commodity.
        for n in platform.node_ids() {
            for c in 0..self.commodities.len() {
                let (s, t) = self.commodity_endpoints(c);
                if n == s || n == t {
                    continue;
                }
                let mut expr = LinearExpr::new();
                for &e in platform.in_edges(n) {
                    expr.add_term(send[&(e, c)], Ratio::one());
                }
                for &e in platform.out_edges(n) {
                    expr.add_term(send[&(e, c)], -Ratio::one());
                }
                if !expr.is_empty() {
                    lp.add_constraint(
                        format!("conservation[{n},m({s},{t})]"),
                        expr,
                        Sense::Eq,
                        Ratio::zero(),
                    );
                }
            }
        }

        // Destinations never re-emit their own messages (see the scatter module
        // for why this WLOG restriction is needed).
        for c in 0..self.commodities.len() {
            let (_, t) = self.commodity_endpoints(c);
            for &e in platform.out_edges(t) {
                lp.add_constraint(
                    format!("no-reemit[{t}]"),
                    LinearExpr::var(send[&(e, c)]),
                    Sense::Eq,
                    Ratio::zero(),
                );
            }
        }

        // Throughput: every commodity is delivered at rate TP.
        for c in 0..self.commodities.len() {
            let (s, t) = self.commodity_endpoints(c);
            let mut expr = LinearExpr::new();
            for &e in platform.in_edges(t) {
                expr.add_term(send[&(e, c)], Ratio::one());
            }
            expr.add_term(throughput, -Ratio::one());
            lp.add_constraint(format!("throughput[m({s},{t})]"), expr, Sense::Eq, Ratio::zero());
        }

        (lp, GossipVars { send, throughput })
    }

    /// Solves `SSPA2A(G)` exactly.
    pub fn solve(&self) -> Result<GossipSolution, CoreError> {
        crate::problem::solve_steady(self)
    }
}

impl crate::problem::SteadyProblem for GossipProblem {
    type Vars = GossipVars;
    type Solution = GossipSolution;
    const KIND: &'static str = "gossip";

    fn formulate(&self) -> (LpProblem, GossipVars) {
        self.build_lp()
    }

    fn interpret(&self, vars: &GossipVars, values: &[Ratio]) -> GossipSolution {
        GossipSolution {
            throughput: values[vars.throughput.index()].clone(),
            flows: crate::problem::positive_values(&vars.send, values),
        }
    }
}

impl GossipSolution {
    /// Optimal steady-state throughput (gossip operations per time-unit).
    pub fn throughput(&self) -> &Ratio {
        &self.throughput
    }

    /// Messages of commodity `c` crossing `edge` per time-unit.
    pub fn flow(&self, edge: EdgeId, commodity: usize) -> Ratio {
        self.flows.get(&(edge, commodity)).cloned().unwrap_or_else(Ratio::zero)
    }

    /// All non-zero flows.
    pub fn flows(&self) -> &BTreeMap<(EdgeId, usize), Ratio> {
        &self.flows
    }

    /// The minimal integer period.
    pub fn period(&self) -> BigInt {
        let mut values: Vec<Ratio> = self.flows.values().cloned().collect();
        values.push(self.throughput.clone());
        lcm_of_denominators(&values)
    }

    /// Exhaustively re-checks every constraint of `SSPA2A(G)`.
    pub fn verify(&self, problem: &GossipProblem) -> Result<(), String> {
        let platform = problem.platform();
        let commodities = problem.commodities();
        // One-port.
        for n in platform.node_ids() {
            let mut out = Ratio::zero();
            for &e in platform.out_edges(n) {
                let cost = &platform.edge(e).cost;
                for c in 0..commodities.len() {
                    out += self.flow(e, c) * cost;
                }
            }
            if out > Ratio::one() {
                return Err(format!("{n} emits for {out} > 1 per time-unit"));
            }
            let mut inc = Ratio::zero();
            for &e in platform.in_edges(n) {
                let cost = &platform.edge(e).cost;
                for c in 0..commodities.len() {
                    inc += self.flow(e, c) * cost;
                }
            }
            if inc > Ratio::one() {
                return Err(format!("{n} receives for {inc} > 1 per time-unit"));
            }
        }
        // Conservation and throughput.
        for (c, &(s, t)) in commodities.iter().enumerate() {
            for n in platform.node_ids() {
                if n == s || n == t {
                    continue;
                }
                let inflow: Ratio = platform.in_edges(n).iter().map(|&e| self.flow(e, c)).sum();
                let outflow: Ratio = platform.out_edges(n).iter().map(|&e| self.flow(e, c)).sum();
                if inflow != outflow {
                    return Err(format!("conservation violated at {n} for commodity ({s},{t})"));
                }
            }
            let received: Ratio = platform.in_edges(t).iter().map(|&e| self.flow(e, c)).sum();
            if received != self.throughput {
                return Err(format!(
                    "commodity ({s},{t}) delivered at {received} instead of TP = {}",
                    self.throughput
                ));
            }
        }
        Ok(())
    }

    /// Builds the explicit periodic schedule achieving this solution's throughput.
    pub fn build_schedule(&self, problem: &GossipProblem) -> Result<PeriodicSchedule, CoreError> {
        let platform = problem.platform();
        let commodities = problem.commodities();
        let period = Ratio::from(self.period());

        let mut load = BipartiteLoad::new();
        let mut queues: BTreeMap<(usize, usize), PayloadQueue> = BTreeMap::new();
        for ((e, c), flow) in &self.flows {
            let edge = platform.edge(*e);
            let count = flow * &period;
            let duration = &count * &edge.cost;
            if !duration.is_positive() {
                continue;
            }
            let (s, t) = commodities[*c];
            let key = (edge.from.index(), edge.to.index());
            load.add(key.0, key.1, duration.clone());
            queues.entry(key).or_default().push((
                Payload::Gossip { source: s, destination: t },
                count,
                duration,
            ));
        }

        let steps = decompose(&load)?;
        let mut slots = Vec::with_capacity(steps.len());
        for step in &steps {
            let mut transfers = Vec::new();
            for &edge_idx in &step.edges {
                let le = &load.edges[edge_idx];
                let key = (le.sender, le.receiver);
                let queue = queues.get_mut(&key).expect("load edge without queue");
                let mut remaining = step.duration.clone();
                while remaining.is_positive() {
                    let Some((payload, count, duration)) = queue.first_mut() else {
                        break;
                    };
                    let from = NodeId(key.0);
                    let to = NodeId(key.1);
                    if *duration <= remaining {
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: count.clone(),
                            duration: duration.clone(),
                        });
                        remaining = &remaining - &*duration;
                        queue.remove(0);
                    } else {
                        let fraction = &remaining / &*duration;
                        let part_count = count.clone() * fraction;
                        transfers.push(Transfer {
                            from,
                            to,
                            payload: payload.clone(),
                            count: part_count.clone(),
                            duration: remaining.clone(),
                        });
                        *count = &*count - &part_count;
                        *duration = &*duration - &remaining;
                        remaining = Ratio::zero();
                    }
                }
            }
            slots.push(CommSlot { duration: step.duration.clone(), transfers });
        }

        Ok(PeriodicSchedule {
            period: period.clone(),
            operations_per_period: &self.throughput * &period,
            slots,
            computations: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators;
    use steady_rational::rat;

    #[test]
    fn two_node_exchange() {
        // Two nodes exchanging messages over symmetric unit links: each sends
        // one message per operation, TP = 1.
        let (p, nodes) = generators::chain(2, rat(1, 1));
        let problem =
            GossipProblem::new(p, vec![nodes[0], nodes[1]], vec![nodes[0], nodes[1]]).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 1));
        sol.verify(&problem).unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
        assert_eq!(schedule.throughput(), rat(1, 1));
    }

    #[test]
    fn clique_all_to_all() {
        // Complete graph on 3 nodes, all-to-all with unit costs: each node must
        // emit 2 messages per operation over its single outgoing port, TP = 1/2.
        let (p, nodes) = generators::clique(3, rat(1, 1));
        let problem = GossipProblem::new(p, nodes.clone(), nodes.clone()).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(1, 2));
        sol.verify(&problem).unwrap();
        let schedule = sol.build_schedule(&problem).unwrap();
        schedule.validate(problem.platform()).unwrap();
    }

    #[test]
    fn scatter_is_a_special_case_of_gossip() {
        // With a single source the gossip LP reduces to the scatter LP.
        let inst = generators::figure2();
        let gossip =
            GossipProblem::new(inst.platform.clone(), vec![inst.source], inst.targets.clone())
                .unwrap();
        let gsol = gossip.solve().unwrap();
        let scatter = crate::scatter::ScatterProblem::from_instance(inst).unwrap();
        let ssol = scatter.solve().unwrap();
        assert_eq!(gsol.throughput(), ssol.throughput());
    }

    #[test]
    fn star_gossip_bounded_by_center_ports() {
        // All leaves talk to all leaves through the center: the center's
        // incoming and outgoing ports each carry k*(k-1) messages per
        // operation (cost c), so TP = 1 / (k (k-1) c).
        let k = 3i64;
        let (p, _center, leaves) = generators::star(k as usize, rat(1, 2));
        let problem = GossipProblem::new(p, leaves.clone(), leaves.clone()).unwrap();
        let sol = problem.solve().unwrap();
        assert_eq!(*sol.throughput(), rat(2, k * (k - 1)));
        sol.verify(&problem).unwrap();
    }

    #[test]
    fn invalid_problems_rejected() {
        let (p, nodes) = generators::chain(2, rat(1, 1));
        assert!(matches!(
            GossipProblem::new(p.clone(), vec![], vec![nodes[0]]),
            Err(CoreError::EmptyProblem)
        ));
        assert!(matches!(
            GossipProblem::new(p.clone(), vec![nodes[0], nodes[0]], vec![nodes[1]]),
            Err(CoreError::DuplicateParticipant { .. })
        ));
        // Single node as both unique source and unique target -> no commodity.
        assert!(matches!(
            GossipProblem::new(p.clone(), vec![nodes[0]], vec![nodes[0]]),
            Err(CoreError::EmptyProblem)
        ));
        // Unreachable pair.
        let mut disconnected = Platform::new();
        let a = disconnected.add_node("a", rat(1, 1));
        let b = disconnected.add_node("b", rat(1, 1));
        assert!(matches!(
            GossipProblem::new(disconnected, vec![a], vec![b]),
            Err(CoreError::Unreachable { .. })
        ));
    }

    #[test]
    fn commodity_enumeration_skips_self_pairs() {
        let (p, nodes) = generators::clique(3, rat(1, 1));
        let problem = GossipProblem::new(p, nodes.clone(), nodes.clone()).unwrap();
        assert_eq!(problem.commodities().len(), 6);
        assert!(problem.commodities().iter().all(|(s, t)| s != t));
        assert_eq!(problem.sources().len(), 3);
        assert_eq!(problem.targets().len(), 3);
    }
}
