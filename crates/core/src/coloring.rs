//! Weighted edge-coloring of bipartite communication loads.
//!
//! Once the steady-state LP has been solved and scaled to a period `T`, every
//! platform edge carries an aggregate communication time per period.  To turn
//! those aggregate loads into an explicit schedule respecting the one-port
//! model, the paper (§3.3, following Schrijver vol. A ch. 20 and the companion
//! report \[4\]) builds a bipartite graph with one *sender* and one *receiver*
//! vertex per processor and decomposes it into weighted **matchings**: a
//! matching is a set of transfers that can run simultaneously because no two
//! of them share a sender or a receiver.
//!
//! [`decompose`] implements the constructive decomposition: repeatedly find a
//! matching saturating every vertex of maximum weighted degree, peel off the
//! largest weight that keeps the invariant, and continue.  The total duration
//! of the produced matchings equals the initial maximum weighted degree (which
//! the one-port constraints bound by `T`), and the number of matchings is at
//! most `|E| + |V|`.

use std::collections::BTreeMap;

use steady_rational::Ratio;

/// One aggregated transfer in the bipartite load: `sender` is busy emitting
/// and `receiver` busy receiving for `weight` time-units per period.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadEdge {
    /// Index of the sending processor (caller-defined numbering).
    pub sender: usize,
    /// Index of the receiving processor.
    pub receiver: usize,
    /// Total busy time of this transfer within one period.
    pub weight: Ratio,
}

/// A bipartite communication load to be decomposed into matchings.
#[derive(Debug, Clone, Default)]
pub struct BipartiteLoad {
    /// The aggregated transfers.
    pub edges: Vec<LoadEdge>,
}

impl BipartiteLoad {
    /// Creates an empty load.
    pub fn new() -> Self {
        BipartiteLoad { edges: Vec::new() }
    }

    /// Adds a transfer, merging it with an existing transfer between the same
    /// endpoints (two transfers with the same sender and receiver can always
    /// be serialized inside the same matching slot).
    pub fn add(&mut self, sender: usize, receiver: usize, weight: Ratio) {
        if !weight.is_positive() {
            return;
        }
        if let Some(e) =
            self.edges.iter_mut().find(|e| e.sender == sender && e.receiver == receiver)
        {
            e.weight = &e.weight + &weight;
        } else {
            self.edges.push(LoadEdge { sender, receiver, weight });
        }
    }

    /// Maximum weighted degree over all senders and receivers: the minimum
    /// feasible duration of any one-port schedule of this load.
    pub fn max_weighted_degree(&self) -> Ratio {
        let mut send: BTreeMap<usize, Ratio> = BTreeMap::new();
        let mut recv: BTreeMap<usize, Ratio> = BTreeMap::new();
        for e in &self.edges {
            *send.entry(e.sender).or_insert_with(Ratio::zero) += &e.weight;
            *recv.entry(e.receiver).or_insert_with(Ratio::zero) += &e.weight;
        }
        send.values().chain(recv.values()).cloned().max().unwrap_or_else(Ratio::zero)
    }
}

/// One step of the decomposition: the transfers in `edges` (indices into the
/// input load) run simultaneously for `duration` time-units.
#[derive(Debug, Clone)]
pub struct MatchingStep {
    /// How long this set of simultaneous transfers runs.
    pub duration: Ratio,
    /// Indices of the input edges active during this step.
    pub edges: Vec<usize>,
}

/// Errors from the decomposition (all indicate an internal invariant
/// violation; a well-formed load never triggers them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColoringError {
    /// The constructive saturating-matching step failed, which contradicts the
    /// König/Hall argument and indicates a bug or a malformed load.
    SaturationFailed,
    /// Too many iterations (defensive backstop).
    IterationLimit,
}

impl std::fmt::Display for ColoringError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColoringError::SaturationFailed => {
                write!(f, "failed to find a matching saturating all critical vertices")
            }
            ColoringError::IterationLimit => write!(f, "edge-coloring iteration limit exceeded"),
        }
    }
}

impl std::error::Error for ColoringError {}

/// Vertex key in the bipartite graph: senders and receivers live in disjoint
/// name spaces even when they refer to the same processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Vertex {
    Send(usize),
    Recv(usize),
}

/// Decomposes a bipartite load into weighted matchings.
///
/// Guarantees (checked by the tests and property tests):
/// * every input edge's weight is exactly covered by the steps it appears in;
/// * within a step, no two edges share a sender or a receiver;
/// * the total duration of all steps equals the maximum weighted degree of
///   the input load.
pub fn decompose(load: &BipartiteLoad) -> Result<Vec<MatchingStep>, ColoringError> {
    let mut remaining: Vec<Ratio> = load.edges.iter().map(|e| e.weight.clone()).collect();
    let mut steps = Vec::new();
    // Each iteration either zeroes an edge or promotes a vertex to critical;
    // 4 * (|E| + |V|) is a generous cap.
    let cap = 4 * (load.edges.len() + 2 * load.edges.len() + 4) + 64;

    for _round in 0..cap {
        // Active edges.
        let active: Vec<usize> =
            (0..load.edges.len()).filter(|&i| remaining[i].is_positive()).collect();
        if active.is_empty() {
            return Ok(steps);
        }

        // Weighted degrees.
        let mut degree: BTreeMap<Vertex, Ratio> = BTreeMap::new();
        for &i in &active {
            let e = &load.edges[i];
            *degree.entry(Vertex::Send(e.sender)).or_insert_with(Ratio::zero) += &remaining[i];
            *degree.entry(Vertex::Recv(e.receiver)).or_insert_with(Ratio::zero) += &remaining[i];
        }
        let delta = degree.values().cloned().max().expect("non-empty degree map");
        let critical: Vec<Vertex> =
            degree.iter().filter(|(_, d)| **d == delta).map(|(v, _)| *v).collect();

        // Matching saturating all critical senders, and one saturating all
        // critical receivers, then combine them.
        let critical_senders: Vec<usize> = critical
            .iter()
            .filter_map(|v| if let Vertex::Send(s) = v { Some(*s) } else { None })
            .collect();
        let critical_receivers: Vec<usize> = critical
            .iter()
            .filter_map(|v| if let Vertex::Recv(r) = v { Some(*r) } else { None })
            .collect();

        let m_a = saturating_matching(load, &active, &critical_senders, true);
        let m_b = saturating_matching(load, &active, &critical_receivers, false);
        let matching = combine_matchings(load, &active, &m_a, &m_b, &critical)?;

        // Saturation check (König/Hall guarantees success on valid input).
        {
            let mut covered: Vec<Vertex> = Vec::new();
            for &i in &matching {
                covered.push(Vertex::Send(load.edges[i].sender));
                covered.push(Vertex::Recv(load.edges[i].receiver));
            }
            if critical.iter().any(|v| !covered.contains(v)) {
                return Err(ColoringError::SaturationFailed);
            }
        }

        // Step weight: cannot exceed any matched edge's remaining weight, and
        // must not let an unsaturated vertex's degree exceed the new maximum.
        let mut w =
            matching.iter().map(|&i| remaining[i].clone()).min().expect("matching is non-empty");
        let mut saturated: Vec<Vertex> = Vec::new();
        for &i in &matching {
            saturated.push(Vertex::Send(load.edges[i].sender));
            saturated.push(Vertex::Recv(load.edges[i].receiver));
        }
        let max_unsaturated =
            degree.iter().filter(|(v, _)| !saturated.contains(v)).map(|(_, d)| d.clone()).max();
        if let Some(md) = max_unsaturated {
            let slack = &delta - &md;
            debug_assert!(slack.is_positive(), "critical vertex left unsaturated");
            w = w.min(slack);
        }

        for &i in &matching {
            remaining[i] = &remaining[i] - &w;
        }
        steps.push(MatchingStep { duration: w, edges: matching });
    }
    Err(ColoringError::IterationLimit)
}

/// Kuhn's augmenting-path matching that saturates the given critical vertices
/// (senders when `from_senders`, receivers otherwise).  Returns, for each
/// active edge index, whether it is part of the matching.
fn saturating_matching(
    load: &BipartiteLoad,
    active: &[usize],
    critical: &[usize],
    from_senders: bool,
) -> Vec<usize> {
    // Adjacency: for each critical vertex, the active edges incident to it
    // from its own side.
    let mut match_of_other: BTreeMap<usize, usize> = BTreeMap::new(); // other-side vertex -> edge idx
    let mut match_of_own: BTreeMap<usize, usize> = BTreeMap::new(); // own-side vertex -> edge idx

    fn try_augment(
        own: usize,
        load: &BipartiteLoad,
        active: &[usize],
        from_senders: bool,
        visited: &mut Vec<usize>,
        match_of_other: &mut BTreeMap<usize, usize>,
        match_of_own: &mut BTreeMap<usize, usize>,
    ) -> bool {
        for &i in active {
            let e = &load.edges[i];
            let (this, other) =
                if from_senders { (e.sender, e.receiver) } else { (e.receiver, e.sender) };
            if this != own || visited.contains(&other) {
                continue;
            }
            visited.push(other);
            let free = !match_of_other.contains_key(&other);
            if free || {
                let owner_edge = match_of_other[&other];
                let owner = if from_senders {
                    load.edges[owner_edge].sender
                } else {
                    load.edges[owner_edge].receiver
                };
                try_augment(
                    owner,
                    load,
                    active,
                    from_senders,
                    visited,
                    match_of_other,
                    match_of_own,
                )
            } {
                match_of_other.insert(other, i);
                match_of_own.insert(own, i);
                return true;
            }
        }
        false
    }

    for &c in critical {
        if match_of_own.contains_key(&c) {
            continue;
        }
        let mut visited = Vec::new();
        try_augment(
            c,
            load,
            active,
            from_senders,
            &mut visited,
            &mut match_of_other,
            &mut match_of_own,
        );
    }
    match_of_own.values().copied().collect()
}

/// Combines a matching saturating the critical senders with one saturating the
/// critical receivers into a single matching saturating both (standard
/// alternating path/cycle argument).
fn combine_matchings(
    load: &BipartiteLoad,
    active: &[usize],
    m_a: &[usize],
    m_b: &[usize],
    critical: &[Vertex],
) -> Result<Vec<usize>, ColoringError> {
    let _ = active;
    // Union graph: vertex -> incident edges from M_A and M_B.
    let mut incident: BTreeMap<Vertex, Vec<(usize, bool)>> = BTreeMap::new(); // (edge, is_a)
    for &i in m_a {
        let e = &load.edges[i];
        incident.entry(Vertex::Send(e.sender)).or_default().push((i, true));
        incident.entry(Vertex::Recv(e.receiver)).or_default().push((i, true));
    }
    for &i in m_b {
        if m_a.contains(&i) {
            continue; // shared edge, already recorded as A
        }
        let e = &load.edges[i];
        incident.entry(Vertex::Send(e.sender)).or_default().push((i, false));
        incident.entry(Vertex::Recv(e.receiver)).or_default().push((i, false));
    }

    // Explore connected components of the union; within each component pick
    // either the A-edges or the B-edges, whichever covers the component's
    // critical vertices.
    let mut result: Vec<usize> = Vec::new();
    let mut visited_edges: Vec<usize> = Vec::new();
    let all_edges: Vec<usize> = incident.values().flatten().map(|(i, _)| *i).collect();

    for &start in &all_edges {
        if visited_edges.contains(&start) {
            continue;
        }
        // BFS over the component.
        let mut comp_edges: Vec<(usize, bool)> = Vec::new();
        let mut comp_vertices: Vec<Vertex> = Vec::new();
        let mut stack = vec![start];
        while let Some(ei) = stack.pop() {
            if visited_edges.contains(&ei) {
                continue;
            }
            visited_edges.push(ei);
            let is_a = m_a.contains(&ei);
            comp_edges.push((ei, is_a));
            let e = &load.edges[ei];
            for v in [Vertex::Send(e.sender), Vertex::Recv(e.receiver)] {
                if !comp_vertices.contains(&v) {
                    comp_vertices.push(v);
                }
                if let Some(neighbors) = incident.get(&v) {
                    for &(ni, _) in neighbors {
                        if !visited_edges.contains(&ni) {
                            stack.push(ni);
                        }
                    }
                }
            }
        }

        let comp_critical: Vec<Vertex> =
            comp_vertices.iter().copied().filter(|v| critical.contains(v)).collect();
        let a_edges: Vec<usize> =
            comp_edges.iter().filter(|(_, is_a)| *is_a).map(|(i, _)| *i).collect();
        let b_edges: Vec<usize> =
            comp_edges.iter().filter(|(_, is_a)| !*is_a).map(|(i, _)| *i).collect();

        let covers = |edges: &[usize]| {
            comp_critical.iter().all(|v| {
                edges.iter().any(|&i| {
                    let e = &load.edges[i];
                    *v == Vertex::Send(e.sender) || *v == Vertex::Recv(e.receiver)
                })
            })
        };

        if covers(&a_edges) {
            result.extend(a_edges);
        } else if covers(&b_edges) {
            result.extend(b_edges);
        } else {
            return Err(ColoringError::SaturationFailed);
        }
    }

    // Defensive: assert result is a matching.
    let mut seen: Vec<Vertex> = Vec::new();
    for &i in &result {
        let e = &load.edges[i];
        for v in [Vertex::Send(e.sender), Vertex::Recv(e.receiver)] {
            if seen.contains(&v) {
                return Err(ColoringError::SaturationFailed);
            }
            seen.push(v);
        }
    }
    Ok(result)
}

/// Checks that a decomposition is a valid schedule of the load: exact
/// coverage, matching property in each step, and total duration equal to the
/// maximum weighted degree.
pub fn verify_decomposition(load: &BipartiteLoad, steps: &[MatchingStep]) -> Result<(), String> {
    let mut covered = vec![Ratio::zero(); load.edges.len()];
    for (si, step) in steps.iter().enumerate() {
        if !step.duration.is_positive() {
            return Err(format!("step {si} has non-positive duration"));
        }
        let mut senders = Vec::new();
        let mut receivers = Vec::new();
        for &i in &step.edges {
            let e = &load.edges[i];
            if senders.contains(&e.sender) {
                return Err(format!("step {si}: sender {} used twice", e.sender));
            }
            if receivers.contains(&e.receiver) {
                return Err(format!("step {si}: receiver {} used twice", e.receiver));
            }
            senders.push(e.sender);
            receivers.push(e.receiver);
            covered[i] += &step.duration;
        }
    }
    for (i, e) in load.edges.iter().enumerate() {
        if covered[i] != e.weight {
            return Err(format!(
                "edge {i} ({} -> {}) covered {} but has weight {}",
                e.sender, e.receiver, covered[i], e.weight
            ));
        }
    }
    let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
    let delta = load.max_weighted_degree();
    if total != delta {
        return Err(format!("total duration {total} differs from max weighted degree {delta}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn empty_load() {
        let load = BipartiteLoad::new();
        let steps = decompose(&load).unwrap();
        assert!(steps.is_empty());
        assert_eq!(load.max_weighted_degree(), Ratio::zero());
        assert!(verify_decomposition(&load, &steps).is_ok());
    }

    #[test]
    fn single_edge() {
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(3, 2));
        let steps = decompose(&load).unwrap();
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].duration, rat(3, 2));
        assert!(verify_decomposition(&load, &steps).is_ok());
    }

    #[test]
    fn merging_parallel_edges() {
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(1, 2));
        load.add(0, 1, rat(1, 3));
        assert_eq!(load.edges.len(), 1);
        assert_eq!(load.edges[0].weight, rat(5, 6));
        load.add(0, 1, rat(0, 1)); // ignored
        assert_eq!(load.edges.len(), 1);
    }

    #[test]
    fn two_disjoint_edges_run_together() {
        let mut load = BipartiteLoad::new();
        load.add(0, 2, rat(1, 1));
        load.add(1, 3, rat(1, 1));
        let steps = decompose(&load).unwrap();
        assert!(verify_decomposition(&load, &steps).is_ok());
        // They do not conflict: a single step of duration 1 suffices.
        assert_eq!(steps.len(), 1);
        assert_eq!(steps[0].edges.len(), 2);
    }

    #[test]
    fn conflicting_edges_serialize() {
        // Same sender twice: must be sequential.
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(1, 1));
        load.add(0, 2, rat(2, 1));
        let steps = decompose(&load).unwrap();
        assert!(verify_decomposition(&load, &steps).is_ok());
        let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
        assert_eq!(total, rat(3, 1));
    }

    #[test]
    fn figure3_toy_scatter_load() {
        // The Figure 2/3 example: period 12.
        // Ps -> Pa : 3 time-units, Ps -> Pb : 9, Pa -> P0 : 2, Pb -> P0 : 4, Pb -> P1 : 8.
        // Senders: Ps=0, Pa=1, Pb=2; receivers: Pa=1, Pb=2, P0=3, P1=4.
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(3, 1));
        load.add(0, 2, rat(9, 1));
        load.add(1, 3, rat(2, 1));
        load.add(2, 3, rat(4, 1));
        load.add(2, 4, rat(8, 1));
        assert_eq!(load.max_weighted_degree(), rat(12, 1));
        let steps = decompose(&load).unwrap();
        verify_decomposition(&load, &steps).unwrap();
        // Fits exactly within the period of 12, as in Figure 4(a).
        let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
        assert_eq!(total, rat(12, 1));
        // The paper's construction needs 4 matchings; ours must stay polynomial
        // and small (the bound is |E| + |V|).
        assert!(steps.len() <= 5 + 5, "too many matchings: {}", steps.len());
    }

    #[test]
    fn rational_weights() {
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(1, 3));
        load.add(0, 2, rat(1, 6));
        load.add(3, 1, rat(1, 2));
        load.add(3, 2, rat(2, 3));
        let steps = decompose(&load).unwrap();
        verify_decomposition(&load, &steps).unwrap();
    }

    #[test]
    fn complete_bipartite_uniform() {
        // K_{3,3} with unit weights: max degree 3, needs exactly 3 matchings of 3 edges.
        let mut load = BipartiteLoad::new();
        for s in 0..3 {
            for r in 10..13 {
                load.add(s, r, rat(1, 1));
            }
        }
        let steps = decompose(&load).unwrap();
        verify_decomposition(&load, &steps).unwrap();
        let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
        assert_eq!(total, rat(3, 1));
        for s in &steps {
            assert_eq!(s.edges.len(), 3, "each step of a regular load is a perfect matching");
        }
    }

    #[test]
    fn skewed_degrees() {
        // One heavy sender plus light background traffic.
        let mut load = BipartiteLoad::new();
        load.add(0, 10, rat(5, 1));
        load.add(0, 11, rat(5, 1));
        load.add(1, 10, rat(1, 7));
        load.add(2, 12, rat(9, 1));
        load.add(3, 11, rat(1, 3));
        let steps = decompose(&load).unwrap();
        verify_decomposition(&load, &steps).unwrap();
    }

    #[test]
    fn sender_also_receiver() {
        // The same processor appears on both sides (forwards traffic); the
        // one-port model allows simultaneous send + receive.
        let mut load = BipartiteLoad::new();
        load.add(0, 1, rat(2, 1));
        load.add(1, 2, rat(2, 1));
        let steps = decompose(&load).unwrap();
        verify_decomposition(&load, &steps).unwrap();
        // Both can run simultaneously: total time 2, one matching.
        let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
        assert_eq!(total, rat(2, 1));
    }
}
