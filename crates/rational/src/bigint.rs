//! Sign-magnitude arbitrary-precision integers.
//!
//! The steady-state scheduling pipeline needs *exact* rational arithmetic:
//! the period of the periodic schedule is the least common multiple of the
//! denominators of the linear-program solution, and the correctness proofs of
//! the paper (conservation laws, one-port feasibility) only hold if no
//! rounding occurs.  [`BigInt`] is a small, dependency-free implementation of
//! the integer layer: little-endian `u64` limbs plus a sign.
//!
//! The implementation favours clarity over asymptotic sophistication
//! (schoolbook multiplication and division); the integers manipulated by the
//! scheduler stay small (tens of digits), so this is more than fast enough.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// Opposite sign (`Zero` stays `Zero`).
    pub fn flip(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }

    /// Sign of a product of values with these signs.
    pub fn product(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }
}

/// Arbitrary-precision signed integer (sign + magnitude, little-endian `u64`
/// limbs, no leading zero limb).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: bool,
    /// `true` means negative. Zero always has `sign == false`.
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigInt`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer: {}", self.reason)
    }
}

impl std::error::Error for ParseBigIntError {}

impl BigInt {
    /// The integer 0.
    pub fn zero() -> Self {
        BigInt { sign: false, limbs: Vec::new() }
    }

    /// The integer 1.
    pub fn one() -> Self {
        BigInt { sign: false, limbs: vec![1] }
    }

    /// Builds a big integer from raw limbs (little-endian) and a sign flag.
    fn from_limbs(sign: bool, mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, limbs }
        }
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` iff the value is 1.
    pub fn is_one(&self) -> bool {
        !self.sign && self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        !self.sign && !self.is_zero()
    }

    /// Returns the sign of the value.
    pub fn sign(&self) -> Sign {
        if self.is_zero() {
            Sign::Zero
        } else if self.sign {
            Sign::Negative
        } else {
            Sign::Positive
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt { sign: false, limbs: self.limbs.clone() }
    }

    /// Number of bits of the magnitude (0 for zero).
    pub fn bits(&self) -> u64 {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() as u64 - 1) * 64 + (64 - top.leading_zeros() as u64),
        }
    }

    /// Magnitude comparison (ignores sign).
    fn cmp_abs(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            if a[i] != b[i] {
                return a[i].cmp(&b[i]);
            }
        }
        Ordering::Equal
    }

    fn add_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i] as u128;
            let y = if i < short.len() { short[i] as u128 } else { 0 };
            let s = x + y + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Computes `a - b`, assuming `a >= b` in magnitude.
    fn sub_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_abs(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let x = a[i] as i128;
            let y = if i < b.len() { b[i] as i128 } else { 0 };
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_abs(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &y) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + (x as u128) * (y as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Divides magnitude `a` by the single limb `b`, returning (quotient, remainder).
    fn div_rem_abs_small(a: &[u64], b: u64) -> (Vec<u64>, u64) {
        assert!(b != 0, "division by zero");
        let mut out = vec![0u64; a.len()];
        let mut rem: u128 = 0;
        for i in (0..a.len()).rev() {
            let cur = (rem << 64) | a[i] as u128;
            out[i] = (cur / b as u128) as u64;
            rem = cur % b as u128;
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        (out, rem as u64)
    }

    /// Knuth algorithm D long division of magnitudes. Returns (quotient, remainder).
    fn div_rem_abs(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_abs(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            let (q, r) = Self::div_rem_abs_small(a, b[0]);
            return (q, if r == 0 { Vec::new() } else { vec![r] });
        }

        // Normalize so that the top limb of the divisor has its high bit set.
        let shift = b.last().unwrap().leading_zeros();
        let bn = Self::shl_limbs(b, shift);
        let mut an = Self::shl_limbs(a, shift);
        an.push(0); // extra limb for the algorithm

        let n = bn.len();
        let m = an.len() - n - 1;
        let mut q = vec![0u64; m + 1];
        let btop = bn[n - 1] as u128;
        let bsecond = if n >= 2 { bn[n - 2] as u128 } else { 0 };

        for j in (0..=m).rev() {
            let num = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
            let mut qhat = num / btop;
            let mut rhat = num % btop;
            if qhat > u64::MAX as u128 {
                qhat = u64::MAX as u128;
                rhat = num - qhat * btop;
            }
            while rhat <= u64::MAX as u128
                && qhat * bsecond > ((rhat << 64) | an[j + n - 2] as u128)
            {
                qhat -= 1;
                rhat += btop;
            }
            // Multiply and subtract.
            let mut borrow: i128 = 0;
            let mut carry: u128 = 0;
            for i in 0..n {
                let p = qhat * bn[i] as u128 + carry;
                carry = p >> 64;
                let sub = (p as u64) as i128;
                let mut d = an[j + i] as i128 - sub - borrow;
                if d < 0 {
                    d += 1i128 << 64;
                    borrow = 1;
                } else {
                    borrow = 0;
                }
                an[j + i] = d as u64;
            }
            let mut d = an[j + n] as i128 - carry as i128 - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            an[j + n] = d as u64;

            if borrow != 0 {
                // qhat was one too large: add the divisor back.
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let s = an[j + i] as u128 + bn[i] as u128 + carry;
                    an[j + i] = s as u64;
                    carry = s >> 64;
                }
                an[j + n] = (an[j + n] as u128 + carry) as u64;
            }
            q[j] = qhat as u64;
        }

        while q.last() == Some(&0) {
            q.pop();
        }
        let mut r = Self::shr_limbs(&an[..n], shift);
        while r.last() == Some(&0) {
            r.pop();
        }
        (q, r)
    }

    fn shl_limbs(a: &[u64], shift: u32) -> Vec<u64> {
        if shift == 0 {
            return a.to_vec();
        }
        let mut out = Vec::with_capacity(a.len() + 1);
        let mut carry = 0u64;
        for &x in a {
            out.push((x << shift) | carry);
            carry = x >> (64 - shift);
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    fn shr_limbs(a: &[u64], shift: u32) -> Vec<u64> {
        if shift == 0 {
            return a.to_vec();
        }
        let mut out = vec![0u64; a.len()];
        for i in 0..a.len() {
            out[i] = a[i] >> shift;
            if i + 1 < a.len() {
                out[i] |= a[i + 1] << (64 - shift);
            }
        }
        out
    }

    /// Simultaneous quotient and remainder; the remainder has the sign of `self`
    /// (truncated division, like Rust's `%` on primitive integers).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (q, r) = Self::div_rem_abs(&self.limbs, &other.limbs);
        let q_sign = self.sign != other.sign && !q.is_empty();
        let r_sign = self.sign && !r.is_empty();
        (BigInt::from_limbs(q_sign, q), BigInt::from_limbs(r_sign, r))
    }

    /// Greatest common divisor of the magnitudes (always non-negative).
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            a = b;
            b = r.abs();
        }
        a
    }

    /// Least common multiple of the magnitudes (0 if either operand is 0).
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let g = self.gcd(other);
        let (q, _) = self.abs().div_rem(&g);
        &q * &other.abs()
    }

    /// Raises the value to the power `exp`.
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }

    /// Lossy conversion to `f64` (magnitude clamped to `f64::INFINITY` on overflow).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            v = v * 1.8446744073709552e19 + limb as f64;
        }
        if self.sign {
            -v
        } else {
            v
        }
    }

    /// Conversion to `i64` if the value fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => {
                let m = self.limbs[0];
                if self.sign {
                    if m <= 1u64 << 63 {
                        Some((m as i128).wrapping_neg() as i64)
                    } else {
                        None
                    }
                } else if m <= i64::MAX as u64 {
                    Some(m as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Conversion to `u64` if the value fits and is non-negative.
    pub fn to_u64(&self) -> Option<u64> {
        if self.sign {
            return None;
        }
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Conversion to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        let mag: u128 = match self.limbs.len() {
            0 => 0,
            1 => self.limbs[0] as u128,
            2 => (self.limbs[1] as u128) << 64 | self.limbs[0] as u128,
            _ => return None,
        };
        if self.sign {
            if mag <= 1u128 << 127 {
                Some(mag.wrapping_neg() as i128)
            } else {
                None
            }
        } else if mag <= i128::MAX as u128 {
            Some(mag as i128)
        } else {
            None
        }
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_limbs(false, vec![v])
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u32> for BigInt {
    fn from(v: u32) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<usize> for BigInt {
    fn from(v: usize) -> Self {
        BigInt::from(v as u64)
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        let sign = v < 0;
        let mag = v.unsigned_abs();
        BigInt::from_limbs(sign, vec![mag as u64, (mag >> 64) as u64])
    }
}

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        BigInt::from_limbs(false, vec![v as u64, (v >> 64) as u64])
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (false, true) => {
                if self.is_zero() && other.is_zero() {
                    Ordering::Equal
                } else {
                    Ordering::Greater
                }
            }
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_abs(&self.limbs, &other.limbs),
            (true, true) => Self::cmp_abs(&other.limbs, &self.limbs),
        }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            BigInt::zero()
        } else {
            BigInt { sign: !self.sign, limbs: self.limbs.clone() }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -&self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if self.sign == other.sign {
            BigInt::from_limbs(self.sign, BigInt::add_abs(&self.limbs, &other.limbs))
        } else {
            match BigInt::cmp_abs(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, BigInt::sub_abs(&self.limbs, &other.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(other.sign, BigInt::sub_abs(&other.limbs, &self.limbs))
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        BigInt::from_limbs(self.sign != other.sign, BigInt::mul_abs(&self.limbs, &other.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                (&self).$method(&other)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, other: &BigInt) -> BigInt {
                (&self).$method(other)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, other: BigInt) -> BigInt {
                self.$method(&other)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);
forward_owned_binop!(Div, div);
forward_owned_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = Vec::new();
        let mut cur = self.limbs.clone();
        while !cur.is_empty() {
            let (q, r) = BigInt::div_rem_abs_small(&cur, 10_000_000_000_000_000_000);
            digits.push(r);
            cur = q;
        }
        let mut s = String::new();
        if self.sign {
            s.push('-');
        }
        s.push_str(&digits.last().unwrap().to_string());
        for d in digits.iter().rev().skip(1) {
            s.push_str(&format!("{:019}", d));
        }
        write!(f, "{}", s)
    }
}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (sign, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError { reason: "empty string".into() });
        }
        let mut acc = BigInt::zero();
        let ten = BigInt::from(10u64);
        for ch in digits.chars() {
            let d = ch
                .to_digit(10)
                .ok_or_else(|| ParseBigIntError { reason: format!("invalid digit {ch:?}") })?;
            acc = &acc * &ten + BigInt::from(d as u64);
        }
        if sign && !acc.is_zero() {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn zero_and_one() {
        assert!(BigInt::zero().is_zero());
        assert!(BigInt::one().is_one());
        assert_eq!(BigInt::zero(), b(0));
        assert_eq!(BigInt::one(), b(1));
        assert_eq!(BigInt::zero().sign(), Sign::Zero);
        assert_eq!(b(5).sign(), Sign::Positive);
        assert_eq!(b(-5).sign(), Sign::Negative);
    }

    #[test]
    fn small_addition() {
        assert_eq!(b(2) + b(3), b(5));
        assert_eq!(b(-2) + b(3), b(1));
        assert_eq!(b(2) + b(-3), b(-1));
        assert_eq!(b(-2) + b(-3), b(-5));
        assert_eq!(b(7) + b(-7), b(0));
    }

    #[test]
    fn small_subtraction() {
        assert_eq!(b(2) - b(3), b(-1));
        assert_eq!(b(10) - b(-4), b(14));
        assert_eq!(b(-10) - b(-4), b(-6));
    }

    #[test]
    fn small_multiplication() {
        assert_eq!(b(6) * b(7), b(42));
        assert_eq!(b(-6) * b(7), b(-42));
        assert_eq!(b(-6) * b(-7), b(42));
        assert_eq!(b(0) * b(123456), b(0));
    }

    #[test]
    fn carry_propagation() {
        let big = BigInt::from(u64::MAX);
        assert_eq!(&big + &BigInt::one(), BigInt::from(u64::MAX as u128 + 1));
        let sq = &big * &big;
        assert_eq!(sq, BigInt::from((u64::MAX as u128) * (u64::MAX as u128)));
    }

    #[test]
    fn division_small() {
        assert_eq!(b(42).div_rem(&b(5)), (b(8), b(2)));
        assert_eq!(b(-42).div_rem(&b(5)), (b(-8), b(-2)));
        assert_eq!(b(42).div_rem(&b(-5)), (b(-8), b(2)));
        assert_eq!(b(-42).div_rem(&b(-5)), (b(8), b(-2)));
        assert_eq!(b(3).div_rem(&b(7)), (b(0), b(3)));
    }

    #[test]
    fn division_multi_limb() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let d: BigInt = "9876543210987654321".parse().unwrap();
        let (q, r) = a.div_rem(&d);
        assert_eq!(&q * &d + &r, a);
        assert!(r < d);
        assert!(!r.is_negative());
    }

    #[test]
    fn division_reconstruction_randomized() {
        // Deterministic pseudo-random reconstruction check without pulling in rand.
        let mut x: u128 = 0x1234_5678_9abc_def0;
        let next = |x: &mut u128| {
            *x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *x
        };
        for _ in 0..200 {
            let a = BigInt::from(next(&mut x)) * BigInt::from(next(&mut x));
            let mut d = BigInt::from(next(&mut x) >> 64);
            if d.is_zero() {
                d = BigInt::one();
            }
            let (q, r) = a.div_rem(&d);
            assert_eq!(&q * &d + &r, a);
            assert!(BigInt::cmp_abs(&r.limbs, &d.limbs) == Ordering::Less);
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(1).div_rem(&b(0));
    }

    #[test]
    fn gcd_lcm() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(5).gcd(&b(0)), b(5));
        assert_eq!(b(12).lcm(&b(18)), b(36));
        assert_eq!(b(0).lcm(&b(18)), b(0));
        assert_eq!(b(7).lcm(&b(13)), b(91));
    }

    #[test]
    fn pow() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(10).pow(30), "1000000000000000000000000000000".parse().unwrap());
    }

    #[test]
    fn ordering() {
        assert!(b(-5) < b(3));
        assert!(b(3) < b(5));
        assert!(b(-3) > b(-5));
        assert!(b(0) > b(-1));
        let big: BigInt = "99999999999999999999999999".parse().unwrap();
        assert!(big > BigInt::from(u64::MAX));
        assert!(big < b(i128::MAX));
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in ["0", "1", "-1", "123456789", "-98765432109876543210987654321"] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("12a".parse::<BigInt>().is_err());
        assert!("".parse::<BigInt>().is_err());
        assert_eq!("+42".parse::<BigInt>().unwrap(), b(42));
        assert_eq!("-0".parse::<BigInt>().unwrap(), b(0));
    }

    #[test]
    fn conversions() {
        assert_eq!(b(42).to_i64(), Some(42));
        assert_eq!(b(-42).to_i64(), Some(-42));
        assert_eq!(BigInt::from(u64::MAX).to_i64(), None);
        assert_eq!(BigInt::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(b(-1).to_u64(), None);
        assert_eq!(b(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!((b(i128::MAX) + b(1)).to_i128(), None);
        assert!((b(1_000_000).to_f64() - 1e6).abs() < 1e-9);
        assert!((b(-1_000_000).to_f64() + 1e6).abs() < 1e-9);
    }

    #[test]
    fn bits() {
        assert_eq!(b(0).bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(b(256).bits(), 9);
        assert_eq!(BigInt::from(u128::MAX).bits(), 128);
    }
}
