//! Exact rational numbers built on [`BigInt`].
//!
//! [`Ratio`] is always kept in canonical form: the denominator is strictly
//! positive and `gcd(|num|, den) = 1`.  All the scheduling algorithms of the
//! workspace (LP solving, period computation, matching decomposition,
//! reduction-tree extraction) manipulate `Ratio` values so that the schedules
//! they produce are provably feasible, not feasible-up-to-rounding.

use crate::bigint::{BigInt, ParseBigIntError};
use std::cmp::Ordering;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt,
}

/// Error returned when parsing a [`Ratio`] fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational: {}", self.reason)
    }
}

impl std::error::Error for ParseRatioError {}

impl From<ParseBigIntError> for ParseRatioError {
    fn from(e: ParseBigIntError) -> Self {
        ParseRatioError { reason: e.reason }
    }
}

impl Ratio {
    /// The rational 0.
    pub fn zero() -> Self {
        Ratio { num: BigInt::zero(), den: BigInt::one() }
    }

    /// The rational 1.
    pub fn one() -> Self {
        Ratio { num: BigInt::one(), den: BigInt::one() }
    }

    /// Builds `num / den`, normalizing sign and common factors.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let mut num = num;
        let mut den = den;
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        if num.is_zero() {
            return Ratio::zero();
        }
        let g = num.gcd(&den);
        if !g.is_one() {
            num = &num / &g;
            den = &den / &g;
        }
        Ratio { num, den }
    }

    /// Builds the rational `n / d` from machine integers.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn from_frac(n: i64, d: i64) -> Self {
        Ratio::new(BigInt::from(n), BigInt::from(d))
    }

    /// Builds the integer rational `n`.
    pub fn from_int(n: i64) -> Self {
        Ratio { num: BigInt::from(n), den: BigInt::one() }
    }

    /// Numerator (sign-carrying part).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always strictly positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is an integer (denominator 1).
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Absolute value.
    pub fn abs(&self) -> Ratio {
        Ratio { num: self.num.abs(), den: self.den.clone() }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        Ratio::new(self.den.clone(), self.num.clone())
    }

    /// Largest integer `<= self`.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    /// Lossy conversion to `f64`.
    pub fn to_f64(&self) -> f64 {
        // Scale so that both operands fit comfortably in f64 range when they
        // are huge: shift both by the same power of two.
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        if nb < 900 && db < 900 {
            return self.num.to_f64() / self.den.to_f64();
        }
        // Rare path for extremely large operands: compute via quotient+remainder.
        let scale = BigInt::from(2u64).pow(64);
        let scaled = (&self.num * &scale).div_rem(&self.den).0;
        scaled.to_f64() / 1.8446744073709552e19
    }

    /// Minimum of two rationals.
    pub fn min(self, other: Ratio) -> Ratio {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two rationals.
    pub fn max(self, other: Ratio) -> Ratio {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Best rational approximation of an `f64` with denominator bounded by
    /// `max_den`, computed with the Stern–Brocot / continued-fraction method.
    ///
    /// Used by the fixed-period approximation path when an LP is solved in
    /// floating point first (§4.6 of the paper): the resulting rates are
    /// rationalized before being scaled to an integer period.
    ///
    /// Returns `None` for non-finite inputs.
    pub fn approximate_f64(value: f64, max_den: u64) -> Option<Ratio> {
        if !value.is_finite() {
            return None;
        }
        let max_den = max_den.max(1);
        let negative = value < 0.0;
        let mut x = value.abs();
        // Continued-fraction convergents p_k / q_k.
        let (mut p0, mut q0, mut p1, mut q1) = (0u128, 1u128, 1u128, 0u128);
        for _ in 0..64 {
            let a = x.floor();
            if a > u64::MAX as f64 {
                break;
            }
            let a_int = a as u128;
            let p2 = a_int.saturating_mul(p1).saturating_add(p0);
            let q2 = a_int.saturating_mul(q1).saturating_add(q0);
            if q2 > max_den as u128 {
                break;
            }
            p0 = p1;
            q0 = q1;
            p1 = p2;
            q1 = q2;
            let frac = x - a;
            if frac < 1e-15 {
                break;
            }
            x = 1.0 / frac;
        }
        if q1 == 0 {
            return Some(Ratio::zero());
        }
        let mut r = Ratio::new(BigInt::from(p1), BigInt::from(q1));
        if negative {
            r = -r;
        }
        Some(r)
    }

    /// `self * n / d` using machine integers, convenient in tests.
    pub fn scale(&self, n: i64, d: i64) -> Ratio {
        self * &Ratio::from_frac(n, d)
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Ratio::zero()
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Self {
        Ratio::from_int(v)
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Self {
        Ratio { num: BigInt::from(v), den: BigInt::one() }
    }
}

impl From<i32> for Ratio {
    fn from(v: i32) -> Self {
        Ratio::from_int(v as i64)
    }
}

impl From<usize> for Ratio {
    fn from(v: usize) -> Self {
        Ratio { num: BigInt::from(v), den: BigInt::one() }
    }
}

impl From<BigInt> for Ratio {
    fn from(v: BigInt) -> Self {
        Ratio { num: v, den: BigInt::one() }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b vs c/d (b, d > 0)  <=>  a*d vs c*b
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio { num: -&self.num, den: self.den.clone() }
    }
}

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        -&self
    }
}

impl Add for &Ratio {
    type Output = Ratio;
    fn add(self, other: &Ratio) -> Ratio {
        Ratio::new(&self.num * &other.den + &other.num * &self.den, &self.den * &other.den)
    }
}

impl Sub for &Ratio {
    type Output = Ratio;
    fn sub(self, other: &Ratio) -> Ratio {
        Ratio::new(&self.num * &other.den - &other.num * &self.den, &self.den * &other.den)
    }
}

impl Mul for &Ratio {
    type Output = Ratio;
    fn mul(self, other: &Ratio) -> Ratio {
        Ratio::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Ratio {
    type Output = Ratio;
    fn div(self, other: &Ratio) -> Ratio {
        assert!(!other.is_zero(), "division by zero rational");
        Ratio::new(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident, $assign_trait:ident, $assign_method:ident) => {
        impl $trait for Ratio {
            type Output = Ratio;
            fn $method(self, other: Ratio) -> Ratio {
                (&self).$method(&other)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, other: &Ratio) -> Ratio {
                (&self).$method(other)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, other: Ratio) -> Ratio {
                self.$method(&other)
            }
        }
        impl $assign_trait<&Ratio> for Ratio {
            fn $assign_method(&mut self, other: &Ratio) {
                *self = (&*self).$method(other);
            }
        }
        impl $assign_trait<Ratio> for Ratio {
            fn $assign_method(&mut self, other: Ratio) {
                *self = (&*self).$method(&other);
            }
        }
    };
}

forward_ratio_binop!(Add, add, AddAssign, add_assign);
forward_ratio_binop!(Sub, sub, SubAssign, sub_assign);
forward_ratio_binop!(Mul, mul, MulAssign, mul_assign);
forward_ratio_binop!(Div, div, DivAssign, div_assign);

impl Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

impl<'a> Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| acc + x)
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        match s.split_once('/') {
            None => Ok(Ratio::from(s.parse::<BigInt>()?)),
            Some((n, d)) => {
                let num: BigInt = n.trim().parse()?;
                let den: BigInt = d.trim().parse()?;
                if den.is_zero() {
                    return Err(ParseRatioError { reason: "zero denominator".into() });
                }
                Ok(Ratio::new(num, den))
            }
        }
    }
}

/// Least common multiple of the denominators of a collection of rationals.
///
/// This is the period `T` of the paper's periodic schedules: multiplying every
/// LP variable by `lcm_of_denominators` yields integer message counts.
pub fn lcm_of_denominators<'a, I>(values: I) -> BigInt
where
    I: IntoIterator<Item = &'a Ratio>,
{
    let mut acc = BigInt::one();
    for v in values {
        acc = acc.lcm(v.denom());
        if acc.is_zero() {
            acc = BigInt::one();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::from_frac(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, 4), r(1, -2));
        assert_eq!(r(0, 17), Ratio::zero());
        assert_eq!(r(6, -4), r(-3, 2));
        assert!(r(1, 2).denom().is_positive());
        assert!(r(-1, 2).denom().is_positive());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 9), r(3, 2));
        assert_eq!(-r(2, 3), r(-2, 3));
        assert_eq!(r(1, 3) + r(2, 3), Ratio::one());
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 3);
        assert_eq!(x, r(5, 6));
        x -= r(1, 6);
        assert_eq!(x, r(2, 3));
        x *= r(3, 2);
        assert_eq!(x, Ratio::one());
        x /= r(1, 4);
        assert_eq!(x, r(4, 1));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 7) == Ratio::one());
        assert!(r(-5, 3) < Ratio::zero());
        assert_eq!(r(1, 2).max(r(2, 3)), r(2, 3));
        assert_eq!(r(1, 2).min(r(2, 3)), r(1, 2));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(4, 2).floor(), BigInt::from(2i64));
        assert_eq!(r(4, 2).ceil(), BigInt::from(2i64));
        assert_eq!(Ratio::zero().floor(), BigInt::zero());
    }

    #[test]
    fn recip() {
        assert_eq!(r(3, 4).recip(), r(4, 3));
        assert_eq!(r(-3, 4).recip(), r(-4, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Ratio::zero().recip();
    }

    #[test]
    fn to_f64() {
        assert!((r(1, 2).to_f64() - 0.5).abs() < 1e-12);
        assert!((r(-22, 7).to_f64() + 22.0 / 7.0).abs() < 1e-12);
        assert_eq!(Ratio::zero().to_f64(), 0.0);
    }

    #[test]
    fn display_parse_roundtrip() {
        for s in ["0", "5", "-5", "1/2", "-7/3", "22/7"] {
            let v: Ratio = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert_eq!(" 4 / 6 ".parse::<Ratio>().unwrap(), r(2, 3));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("x/2".parse::<Ratio>().is_err());
    }

    #[test]
    fn sum_iterator() {
        let parts = vec![r(1, 6); 6];
        let total: Ratio = parts.iter().sum();
        assert_eq!(total, Ratio::one());
        let total_owned: Ratio = parts.into_iter().sum();
        assert_eq!(total_owned, Ratio::one());
    }

    #[test]
    fn lcm_of_denominators_matches_paper_examples() {
        // Figure 2: throughput 1/2 and per-edge rates with denominators 2, 3, 4
        // lead to the period 12 used in the paper.
        let values = vec![r(1, 2), r(1, 3), r(1, 4), r(3, 4)];
        assert_eq!(lcm_of_denominators(&values), BigInt::from(12i64));
        // Figure 6: all denominators are 3 -> period 3.
        let values = vec![r(2, 3), r(1, 3), Ratio::one()];
        assert_eq!(lcm_of_denominators(&values), BigInt::from(3i64));
        // Empty input -> period 1.
        assert_eq!(lcm_of_denominators(&[]), BigInt::one());
    }

    #[test]
    fn approximate_f64() {
        assert_eq!(Ratio::approximate_f64(0.5, 100).unwrap(), r(1, 2));
        assert_eq!(Ratio::approximate_f64(-0.25, 100).unwrap(), r(-1, 4));
        assert_eq!(Ratio::approximate_f64(2.0 / 9.0, 1000).unwrap(), r(2, 9));
        assert_eq!(Ratio::approximate_f64(0.0, 100).unwrap(), Ratio::zero());
        let third = Ratio::approximate_f64(1.0 / 3.0, 10).unwrap();
        assert_eq!(third, r(1, 3));
        assert!(Ratio::approximate_f64(f64::NAN, 10).is_none());
        assert!(Ratio::approximate_f64(f64::INFINITY, 10).is_none());
        // Golden ratio with a small denominator bound: best convergent 8/5 or 13/8.
        let phi = Ratio::approximate_f64(1.618033988749895, 8).unwrap();
        assert_eq!(phi, r(13, 8));
    }

    #[test]
    fn scale_helper() {
        assert_eq!(r(1, 3).scale(3, 2), r(1, 2));
    }
}
