//! Exact arithmetic foundations for the steady-state collective scheduler.
//!
//! The algorithms of Legrand, Marchal and Robert ("Optimizing the steady-state
//! throughput of scatter and reduce operations on heterogeneous platforms",
//! IPDPS 2004) are stated over the rationals: the optimal throughput `TP` is
//! the value of a linear program solved in rational numbers, the period of the
//! periodic schedule is the least common multiple of the denominators of the
//! solution, and both the weighted-matching decomposition and the
//! reduction-tree extraction rely on exact comparisons.
//!
//! This crate provides the two numeric types everything else builds on:
//!
//! * [`BigInt`] — arbitrary-precision signed integers (sign + `u64` limbs);
//! * [`Ratio`] — normalized exact rationals with the usual field operations,
//!   ordering, floor/ceil, conversions and continued-fraction approximation of
//!   `f64` values.
//!
//! # Example
//!
//! ```
//! use steady_rational::{Ratio, lcm_of_denominators};
//!
//! // The toy scatter platform of Figure 2 achieves a throughput of 1/2 and
//! // the per-edge rates have denominators 2, 3 and 4: the schedule period is
//! // their least common multiple, 12.
//! let rates = vec![Ratio::from_frac(1, 2), Ratio::from_frac(1, 3), Ratio::from_frac(3, 4)];
//! let period = lcm_of_denominators(&rates);
//! assert_eq!(period.to_string(), "12");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bigint;
pub mod ratio;

pub use bigint::{BigInt, ParseBigIntError, Sign};
pub use ratio::{lcm_of_denominators, ParseRatioError, Ratio};

/// Convenience constructor for `n / d` used pervasively in tests and examples.
///
/// # Panics
/// Panics if `d == 0`.
pub fn rat(n: i64, d: i64) -> Ratio {
    Ratio::from_frac(n, d)
}

/// Convenience constructor for the integer rational `n`.
pub fn int(n: i64) -> Ratio {
    Ratio::from_int(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(int(3), rat(3, 1));
    }
}
