//! Property-based tests for the exact arithmetic layer.
//!
//! These check the ring/field/order axioms that the rest of the workspace
//! silently relies on (e.g. the matching decomposition subtracts rationals and
//! expects exact cancellation to zero).

use proptest::prelude::*;
use steady_rational::{lcm_of_denominators, BigInt, Ratio};

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    // Mix of small values and products of large values to exercise multi-limb paths.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<i128>(), any::<i64>()).prop_map(|(a, b)| BigInt::from(a) * BigInt::from(b)),
    ]
}

fn ratio_strategy() -> impl Strategy<Value = Ratio> {
    (any::<i64>(), 1i64..=1_000_000i64).prop_map(|(n, d)| Ratio::from_frac(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bigint_add_commutative(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bigint_add_associative(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
    }

    #[test]
    fn bigint_mul_commutative(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn bigint_mul_distributes(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_sub_inverse(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assert_eq!((&a + &b) - &b, a);
    }

    #[test]
    fn bigint_div_rem_reconstructs(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Truncated division: remainder has the sign of the dividend (or is zero).
        prop_assert!(r.is_zero() || (r.is_negative() == a.is_negative()));
    }

    #[test]
    fn bigint_gcd_divides_both(a in bigint_strategy(), b in bigint_strategy()) {
        let g = a.gcd(&b);
        if g.is_zero() {
            prop_assert!(a.is_zero() && b.is_zero());
        } else {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
            prop_assert!(!g.is_negative());
        }
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in bigint_strategy()) {
        let s = a.to_string();
        let parsed: BigInt = s.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn bigint_cmp_consistent_with_sub(a in bigint_strategy(), b in bigint_strategy()) {
        let diff = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.is_positive()),
        }
    }

    #[test]
    fn ratio_field_axioms(a in ratio_strategy(), b in ratio_strategy(), c in ratio_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!(&a * (&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + &Ratio::zero(), a.clone());
        prop_assert_eq!(&a * &Ratio::one(), a.clone());
    }

    #[test]
    fn ratio_sub_div_inverse(a in ratio_strategy(), b in ratio_strategy()) {
        prop_assert_eq!((&a + &b) - &b, a.clone());
        if !b.is_zero() {
            prop_assert_eq!((&a * &b) / &b, a);
        }
    }

    #[test]
    fn ratio_normalized(a in ratio_strategy()) {
        prop_assert!(a.denom().is_positive());
        prop_assert!(a.numer().gcd(a.denom()).is_one() || a.is_zero());
    }

    #[test]
    fn ratio_ordering_total(a in ratio_strategy(), b in ratio_strategy()) {
        // Exactly one of <, ==, > holds, and it matches the sign of the difference.
        let diff = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.is_negative()),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.is_positive()),
        }
    }

    #[test]
    fn ratio_floor_ceil_bracket(a in ratio_strategy()) {
        let fl = Ratio::from(a.floor());
        let ce = Ratio::from(a.ceil());
        prop_assert!(fl <= a && a <= ce);
        prop_assert!(&ce - &fl <= Ratio::one());
        if a.is_integer() {
            prop_assert_eq!(fl, ce);
        }
    }

    #[test]
    fn ratio_to_f64_close(n in -1_000_000i64..1_000_000, d in 1i64..1_000_000) {
        let r = Ratio::from_frac(n, d);
        let expected = n as f64 / d as f64;
        prop_assert!((r.to_f64() - expected).abs() <= 1e-9 * expected.abs().max(1.0));
    }

    #[test]
    fn ratio_display_parse_roundtrip(a in ratio_strategy()) {
        let s = a.to_string();
        let parsed: Ratio = s.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn lcm_denominators_clears_all(values in proptest::collection::vec(ratio_strategy(), 0..12)) {
        let lcm = lcm_of_denominators(&values);
        prop_assert!(lcm.is_positive());
        for v in &values {
            let scaled = v * &Ratio::from(lcm.clone());
            prop_assert!(scaled.is_integer());
        }
    }

    #[test]
    fn approximate_f64_recovers_simple_fractions(n in -500i64..500, d in 1i64..500) {
        let r = Ratio::from_frac(n, d);
        let approx = Ratio::approximate_f64(r.to_f64(), 100_000).unwrap();
        prop_assert_eq!(approx, r);
    }
}
