//! Drift-aware incremental re-optimization for steady-state collectives.
//!
//! The optimal steady-state throughput of a collective is the value of an LP
//! over per-link costs, so when a platform's costs *drift* — congestion,
//! adaptive wireless reconfiguration, duty-cycled links — every observation
//! is a slightly different LP.  Solving each one from scratch wastes the
//! central fact about drift: small perturbations usually leave the old
//! optimal **basis** intact, or repairable in a handful of dual-simplex
//! pivots.  This crate turns that fact into a pipeline:
//!
//! * [`model`] — [`DriftModel`], a time-correlated cost model: bounded lazy
//!   random walks per edge over a fixed topology, with exact rational costs
//!   whose denominators stay bounded along the walk;
//! * [`triage`] — [`solve_steady_triaged`], the reuse ladder: try the cached
//!   basis as-is (**in-range**: zero pivots, re-price only), repair it with
//!   the **dual simplex** when the perturbation broke primal feasibility,
//!   fall back to a warm or cold **resolve** otherwise — with [`Triage`]
//!   naming the rung that answered and [`DriftStats`] counting outcomes.
//!
//! Every rung returns the bit-identical exact optimum of a cold solve; the
//! triage only changes the pivot bill.  The serving layer
//! (`steady-service`) builds its TTL/revalidation flow on this crate:
//! expired cache entries and drifted queries route through
//! [`solve_steady_triaged`] seeded with their structural class's last basis.
//!
//! # Example
//!
//! ```
//! use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel, Triage};
//! use steady_core::scatter::ScatterProblem;
//! use steady_platform::generators::heterogeneous_star;
//! use steady_platform::NodeId;
//! use steady_rational::rat;
//!
//! let (platform, center, leaves) = heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4)]);
//! let mut model = DriftModel::new(platform, DriftConfig::default(), 42);
//!
//! // First contact: a cold solve, remember the basis.
//! let problem = ScatterProblem::new(model.current(), center, leaves.clone()).unwrap();
//! let (_, report) = solve_steady_triaged(&problem, None).unwrap();
//! let mut basis = report.basis;
//!
//! // Drifted steps reuse it: in-range or repaired, never re-derived cold
//! // unless the drift was too violent.
//! for _ in 0..3 {
//!     let drifted = ScatterProblem::new(model.step(), center, leaves.clone()).unwrap();
//!     let (solution, report) = solve_steady_triaged(&drifted, basis.as_ref()).unwrap();
//!     assert!(solution.throughput().is_positive());
//!     basis = report.basis;
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod model;
pub mod triage;

pub use model::{DriftConfig, DriftModel};
pub use triage::{
    solve_steady_triaged, solve_steady_triaged_observed, DriftStats, Triage, TriageReport,
};
