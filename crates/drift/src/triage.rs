//! Basis-reuse triage: classify a drifted solve by how much of the cached
//! optimum survived.
//!
//! When a platform's link costs drift, the steady-state LP changes its
//! numeric data but not its shape, and the previously optimal simplex basis
//! usually survives in one of three progressively weaker senses.  The triage
//! driver tries them cheapest-first and reports which one held:
//!
//! | outcome | meaning | cost |
//! |---|---|---|
//! | [`Triage::InRange`] | the old basis is still optimal | re-price only, **zero pivots** |
//! | [`Triage::DualRepair`] | primal infeasible, dual feasible | a few dual pivots |
//! | [`Triage::ResolveWarm`] | primal feasible, optimum moved | primal pivots from the old vertex |
//! | [`Triage::ResolveCold`] | basis unusable (or none cached) | ordinary two-phase solve |
//!
//! Every outcome returns the **same exact rational optimum** as a cold
//! solve — triage only changes how many pivots were spent, never the answer
//! — so callers are free to cache bases aggressively.

use steady_core::error::CoreError;
use steady_core::problem::{SolvedBasis, SteadyProblem};
use steady_lp::{
    solve_exact_auto_observed, solve_exact_dual_auto_observed, Chain, DualOutcome, HealthObserver,
    NoopObserver, SolveHealth, SolveObserver,
};

/// How a drifted solve resolved (see the module docs for the ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Triage {
    /// The cached basis was still optimal: the answer was re-priced with
    /// zero simplex pivots.
    InRange,
    /// The cached basis was repaired in place by the dual simplex.
    DualRepair {
        /// Dual pivots spent restoring primal feasibility.
        pivots: usize,
    },
    /// The cached basis seeded an ordinary primal re-optimization.
    ResolveWarm {
        /// Primal pivots spent reaching the new optimum.
        pivots: usize,
    },
    /// No usable basis: a from-scratch two-phase solve answered.
    ResolveCold,
}

impl Triage {
    /// `true` when the cached basis was reused without a from-scratch solve
    /// (the `InRange` / `DualRepair` fast paths of the drift pipeline).
    pub fn reused_basis(&self) -> bool {
        matches!(self, Triage::InRange | Triage::DualRepair { .. })
    }

    /// Short lowercase label for logs and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Triage::InRange => "in-range",
            Triage::DualRepair { .. } => "dual-repair",
            Triage::ResolveWarm { .. } => "resolve-warm",
            Triage::ResolveCold => "resolve-cold",
        }
    }
}

/// What a triaged solve cost and produced, besides the domain solution.
#[derive(Debug, Clone)]
pub struct TriageReport {
    /// Which rung of the reuse ladder answered.
    pub triage: Triage,
    /// Total simplex pivots performed (all phases and fallbacks).
    pub iterations: usize,
    /// Pivots spent in phase 1 (feasibility search); the rest is phase 2.
    pub phase1_iterations: usize,
    /// `true` when a prior basis was supplied, i.e. the solve was a triage
    /// candidate rather than a first contact with its structural class.
    pub had_prior: bool,
    /// Final basis, reusable to triage the next drift step.
    pub basis: Option<SolvedBasis>,
    /// Numeric-health aggregate folded from the solver's event stream
    /// (degenerate pivots, Bland switches, eta fill, fallback cause).
    pub health: SolveHealth,
}

impl TriageReport {
    /// Per-phase pivot accounting, in the shape the observability layer
    /// records ([`steady_lp::SolveTrace`]).
    pub fn trace(&self) -> steady_lp::SolveTrace {
        steady_lp::SolveTrace {
            phase1_pivots: self.phase1_iterations,
            phase2_pivots: self.iterations - self.phase1_iterations,
            warm_started: self.triage.reused_basis(),
        }
    }
}

/// Counters over a stream of triaged solves.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriftStats {
    /// Solves answered by re-pricing the cached basis (zero pivots).
    pub in_range: u64,
    /// Solves answered by dual-simplex repair.
    pub dual_repair: u64,
    /// Solves answered by a warm primal re-optimization.
    pub resolve_warm: u64,
    /// Solves answered from scratch.
    pub resolve_cold: u64,
    /// Total pivots across all recorded solves.
    pub pivots: u64,
}

impl DriftStats {
    /// Folds one outcome into the counters.
    pub fn record(&mut self, report: &TriageReport) {
        match report.triage {
            Triage::InRange => self.in_range += 1,
            Triage::DualRepair { .. } => self.dual_repair += 1,
            Triage::ResolveWarm { .. } => self.resolve_warm += 1,
            Triage::ResolveCold => self.resolve_cold += 1,
        }
        self.pivots += report.iterations as u64;
    }

    /// Total solves recorded.
    pub fn total(&self) -> u64 {
        self.in_range + self.dual_repair + self.resolve_warm + self.resolve_cold
    }

    /// Fraction of solves that reused the basis (`InRange` + `DualRepair`);
    /// 0 when nothing was recorded.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.in_range + self.dual_repair) as f64 / total as f64
        }
    }
}

/// Solves `problem` exactly, triaging against `prior` — the final basis of a
/// structurally identical solve (same topology and roles, drifted costs).
///
/// With no prior the solve is an ordinary cold one; with a prior the
/// dual-simplex driver ([`steady_lp::solve_exact_dual_auto`]) classifies the
/// reuse.  Either way the returned solution is the exact optimum.
pub fn solve_steady_triaged<P: SteadyProblem>(
    problem: &P,
    prior: Option<&SolvedBasis>,
) -> Result<(P::Solution, TriageReport), CoreError> {
    solve_steady_triaged_observed(problem, prior, &mut NoopObserver)
}

/// [`solve_steady_triaged`] with a [`SolveObserver`] tap on the underlying
/// solver runs.  The report's [`SolveHealth`] is aggregated regardless of the
/// caller's observer (events are fanned out to both).
pub fn solve_steady_triaged_observed<P: SteadyProblem, O: SolveObserver>(
    problem: &P,
    prior: Option<&SolvedBasis>,
    obs: &mut O,
) -> Result<(P::Solution, TriageReport), CoreError> {
    let (lp, vars) = problem.formulate();
    let mut health = HealthObserver::new();
    let (sol, triage, had_prior) = {
        let mut tap = Chain(&mut health, obs);
        match prior {
            None => {
                let sol = solve_exact_auto_observed(&lp, None, &mut tap)?;
                (sol, Triage::ResolveCold, false)
            }
            Some(basis) => {
                let (sol, outcome) = solve_exact_dual_auto_observed(&lp, basis, &mut tap)?;
                let triage = match outcome {
                    DualOutcome::StillOptimal => Triage::InRange,
                    DualOutcome::DualRepaired { pivots } => Triage::DualRepair { pivots },
                    DualOutcome::PrimalReoptimized { pivots } => Triage::ResolveWarm { pivots },
                    DualOutcome::FellBack => Triage::ResolveCold,
                };
                (sol, triage, true)
            }
        }
    };
    let report = TriageReport {
        triage,
        iterations: sol.iterations,
        phase1_iterations: sol.phase1_iterations,
        had_prior,
        basis: sol.basis,
        health: health.into_health(),
    };
    Ok((problem.interpret(&vars, &sol.values), report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DriftConfig, DriftModel};
    use steady_core::scatter::ScatterProblem;
    use steady_platform::generators::heterogeneous_star;
    use steady_platform::Platform;
    use steady_rational::rat;

    fn star_scatter(platform: Platform) -> ScatterProblem {
        let targets = platform.node_ids().skip(1).collect();
        ScatterProblem::new(platform, steady_platform::NodeId(0), targets).unwrap()
    }

    fn star() -> Platform {
        heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]).0
    }

    #[test]
    fn unchanged_problem_triages_in_range() {
        let problem = star_scatter(star());
        let (cold, cold_report) = solve_steady_triaged(&problem, None).unwrap();
        assert_eq!(cold_report.triage, Triage::ResolveCold);
        assert!(!cold_report.had_prior);
        let basis = cold_report.basis.expect("cold solve yields a basis");
        let (again, report) = solve_steady_triaged(&problem, Some(&basis)).unwrap();
        assert_eq!(report.triage, Triage::InRange);
        assert_eq!(report.iterations, 0);
        assert!(report.had_prior);
        assert_eq!(again.throughput(), cold.throughput());
    }

    #[test]
    fn every_walk_step_matches_a_cold_solve_exactly() {
        let mut model = DriftModel::new(star(), DriftConfig::default(), 99);
        let mut basis = None;
        let mut stats = DriftStats::default();
        for _ in 0..12 {
            let drifted = model.step();
            let problem = star_scatter(drifted);
            let (triaged, report) = solve_steady_triaged(&problem, basis.as_ref()).unwrap();
            let (cold, _) = solve_steady_triaged(&problem, None).unwrap();
            assert_eq!(
                triaged.throughput(),
                cold.throughput(),
                "triage path {} diverged from the cold solve",
                report.triage.kind_name()
            );
            stats.record(&report);
            basis = report.basis;
        }
        assert_eq!(stats.total(), 12);
        assert!(
            stats.in_range + stats.dual_repair > 0,
            "a bounded random walk should reuse the basis at least once: {stats:?}"
        );
    }

    #[test]
    fn stats_record_and_fraction() {
        let mut stats = DriftStats::default();
        assert_eq!(stats.reuse_fraction(), 0.0);
        let report = |triage| TriageReport {
            triage,
            iterations: 2,
            phase1_iterations: 1,
            had_prior: true,
            basis: None,
            health: SolveHealth::default(),
        };
        stats.record(&report(Triage::InRange));
        stats.record(&report(Triage::DualRepair { pivots: 2 }));
        stats.record(&report(Triage::ResolveWarm { pivots: 2 }));
        stats.record(&report(Triage::ResolveCold));
        assert_eq!(stats.total(), 4);
        assert_eq!(stats.pivots, 8);
        assert!((stats.reuse_fraction() - 0.5).abs() < 1e-12);
        assert!(Triage::InRange.reused_basis());
        assert!(!Triage::ResolveCold.reused_basis());
        assert_eq!(Triage::DualRepair { pivots: 1 }.kind_name(), "dual-repair");
    }
}
