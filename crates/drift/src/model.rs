//! Time-correlated cost drift: bounded random walks over a fixed topology.
//!
//! The serving workloads this crate targets are platforms whose *structure*
//! is stable while their *link costs* wander — congestion building and
//! clearing, adaptive wireless LANs renegotiating rates, duty-cycled links
//! alternating power states.  Consecutive observations of such a platform
//! are strongly correlated: each cost is close to its previous value, not a
//! fresh draw.  [`DriftModel`] reproduces exactly that trace so the triage
//! layer can be exercised (and benchmarked) on realistic drift rather than
//! on i.i.d. cost redraws.
//!
//! Costs stay exact rationals with **bounded denominators**: every edge
//! carries an integer walker `w` on the grid `[min_num, max_num]` and the
//! drifted cost is `base_cost * w / grid`.  A step moves each walker by at
//! most one grid cell (staying put with the configured probability), so the
//! trajectory is a lazy random walk, and denominators never grow with the
//! number of steps — unlike multiplicative perturbation chains, whose exact
//! rationals blow up linearly in walk length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_platform::Platform;
use steady_rational::{rat, Ratio};

/// Shape of the random walk applied to every edge cost.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Walk grid: a drifted cost is `base * walker / grid`.
    pub grid: i64,
    /// Lowest walker value (inclusive); `min_num / grid` is the deepest
    /// discount a cost can drift to.
    pub min_num: i64,
    /// Highest walker value (inclusive); `max_num / grid` is the worst
    /// slowdown a cost can drift to.
    pub max_num: i64,
    /// Probability that an edge's walker moves at all in one step (the walk
    /// is lazy: most real links are quiet most of the time).
    pub move_probability: f64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        // Costs wander between half and double their base value in steps of
        // 1/16, with ~2/3 of the edges moving each epoch.
        DriftConfig { grid: 16, min_num: 8, max_num: 32, move_probability: 0.67 }
    }
}

impl DriftConfig {
    fn validate(&self) {
        assert!(self.grid > 0, "drift grid must be positive");
        assert!(self.min_num > 0, "drifted costs must stay positive");
        assert!(
            self.min_num <= self.grid && self.grid <= self.max_num,
            "the walker bounds must bracket the grid (scale 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.move_probability),
            "move_probability must be a probability"
        );
    }
}

/// A platform whose edge costs follow per-edge lazy random walks.
///
/// The topology, node speeds and node roles are fixed; only edge costs move.
/// Every platform produced by [`DriftModel::step`] therefore belongs to the
/// same *structural class* (in the sense of the serving layer's cost-blind
/// fingerprint), which is precisely the precondition for reusing a solved
/// simplex basis across steps.
#[derive(Debug, Clone)]
pub struct DriftModel {
    base: Platform,
    config: DriftConfig,
    /// One walker per edge, in edge-id order; cost scale is `walker / grid`.
    walkers: Vec<i64>,
    rng: StdRng,
    steps: u64,
}

impl DriftModel {
    /// Creates a model over `base` whose first state is `base` itself
    /// (every walker starts at scale 1).
    ///
    /// # Panics
    ///
    /// Panics when `config` is malformed (non-positive grid, bounds that do
    /// not bracket scale 1, probability outside `[0, 1]`).
    pub fn new(base: Platform, config: DriftConfig, seed: u64) -> DriftModel {
        config.validate();
        let walkers = vec![config.grid; base.edge_ids().count()];
        DriftModel { base, config, walkers, rng: StdRng::seed_from_u64(seed), steps: 0 }
    }

    /// The undrifted platform the walk started from.
    pub fn base(&self) -> &Platform {
        &self.base
    }

    /// The walk's configuration (grid, walker bounds, laziness).
    pub fn config(&self) -> &DriftConfig {
        &self.config
    }

    /// Current walker position of each edge, in edge-id order.  Together
    /// with [`DriftModel::config`] this is the model's full state: the cost
    /// of edge `e` is `base_cost_e * walkers[e] / grid`.
    pub fn walkers(&self) -> &[i64] {
        &self.walkers
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Per-edge interval of walker positions reachable within `k` steps
    /// (inclusive bounds, clamped to the configured grid).  Because one step
    /// moves a walker by at most one cell, the `k`-step reachable set of
    /// the whole model is exactly the product of these intervals — the
    /// foundation of the forecaster's exact drift envelope.
    pub fn reachable_walkers(&self, k: u64) -> Vec<(i64, i64)> {
        let k = i64::try_from(k).unwrap_or(i64::MAX);
        self.walkers
            .iter()
            .map(|w| {
                (
                    w.saturating_sub(k).max(self.config.min_num),
                    w.saturating_add(k).min(self.config.max_num),
                )
            })
            .collect()
    }

    /// The platform the model would show with every walker at the given
    /// position (same topology as the base, each edge cost scaled by
    /// `walkers[e] / grid`).  Used by the forecaster to materialize
    /// candidate future platforms without touching the model's own state.
    ///
    /// # Panics
    ///
    /// Panics when `walkers` does not have one entry per edge.
    pub fn platform_at(&self, walkers: &[i64]) -> Platform {
        assert_eq!(walkers.len(), self.walkers.len(), "walker vector must have one entry per edge");
        let mut out = Platform::new();
        for id in self.base.node_ids() {
            let node = self.base.node(id);
            out.add_node(node.name.clone(), node.speed.clone());
        }
        for (edge_id, walker) in self.base.edge_ids().zip(walkers) {
            let e = self.base.edge(edge_id);
            let scale = rat(*walker, self.config.grid);
            out.add_edge(e.from, e.to, &e.cost * &scale);
        }
        out
    }

    /// Advances every walker by one (lazy) step and returns the drifted
    /// platform.
    pub fn step(&mut self) -> Platform {
        for w in self.walkers.iter_mut() {
            if !self.rng.gen_bool(self.config.move_probability) {
                continue;
            }
            let delta = if self.rng.gen_bool(0.5) { 1 } else { -1 };
            *w = (*w + delta).clamp(self.config.min_num, self.config.max_num);
        }
        self.steps += 1;
        self.current()
    }

    /// The platform at the walk's current position (same topology as the
    /// base, each edge cost scaled by its walker).
    pub fn current(&self) -> Platform {
        self.platform_at(&self.walkers)
    }

    /// Current cost scale of each edge, in edge-id order (reporting aid).
    pub fn scales(&self) -> Vec<Ratio> {
        self.walkers.iter().map(|w| rat(*w, self.config.grid)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_platform::generators::heterogeneous_star;

    fn star() -> Platform {
        heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4)]).0
    }

    #[test]
    fn initial_state_is_the_base_platform() {
        let model = DriftModel::new(star(), DriftConfig::default(), 7);
        let current = model.current();
        for (a, b) in model.base().edge_ids().zip(current.edge_ids()) {
            assert_eq!(model.base().edge(a).cost, current.edge(b).cost);
        }
    }

    #[test]
    fn walk_is_deterministic_bounded_and_time_correlated() {
        let config = DriftConfig::default();
        let mut a = DriftModel::new(star(), config.clone(), 42);
        let mut b = DriftModel::new(star(), config.clone(), 42);
        let mut moved = 0usize;
        for _ in 0..50 {
            let pa = a.step();
            let pb = b.step();
            for (ea, eb) in pa.edge_ids().zip(pb.edge_ids()) {
                assert_eq!(pa.edge(ea).cost, pb.edge(eb).cost, "same seed, same trace");
            }
            for (scale, edge) in a.scales().iter().zip(pa.edge_ids()) {
                // Bounded between min_num/grid and max_num/grid.
                assert!(*scale >= rat(config.min_num, config.grid));
                assert!(*scale <= rat(config.max_num, config.grid));
                assert!(pa.edge(edge).cost.is_positive());
            }
            moved += 1;
        }
        assert_eq!(a.steps(), moved as u64);
        // After 50 lazy steps at least one edge must have left scale 1.
        assert!(a.scales().iter().any(|s| *s != rat(1, 1)), "the walk never moved");
    }

    #[test]
    fn denominators_stay_bounded_along_the_walk() {
        let mut model = DriftModel::new(star(), DriftConfig::default(), 3);
        let mut worst = steady_rational::BigInt::from(0i64);
        for _ in 0..200 {
            let p = model.step();
            for e in p.edge_ids() {
                let denom = p.edge(e).cost.denom().clone();
                if denom > worst {
                    worst = denom;
                }
            }
        }
        // base denominators are <= 4, the grid is 16: the product bounds it.
        assert!(worst <= steady_rational::BigInt::from(64i64), "denominator blow-up: {worst}");
    }

    #[test]
    #[should_panic(expected = "bracket")]
    fn malformed_config_is_rejected() {
        let config = DriftConfig { min_num: 20, ..DriftConfig::default() };
        DriftModel::new(star(), config, 0);
    }

    #[test]
    fn reachable_intervals_bound_the_walk_and_platform_at_matches() {
        let mut model = DriftModel::new(star(), DriftConfig::default(), 11);
        for k in [1u64, 2, 3] {
            let reach = model.reachable_walkers(k);
            let mut probe = DriftModel::new(star(), DriftConfig::default(), 11);
            probe.walkers.clone_from(&model.walkers);
            for _ in 0..k {
                probe.step();
            }
            for ((lo, hi), w) in reach.iter().zip(probe.walkers()) {
                assert!(lo <= w && w <= hi, "walker {w} escaped its {k}-step envelope [{lo},{hi}]");
                assert!(*lo >= model.config().min_num && *hi <= model.config().max_num);
            }
            model.step();
        }
        // platform_at at the current walkers is exactly current().
        let here = model.platform_at(model.walkers());
        let current = model.current();
        for (a, b) in here.edge_ids().zip(current.edge_ids()) {
            assert_eq!(here.edge(a).cost, current.edge(b).cost);
        }
    }
}
