//! Property tests for drift triage.
//!
//! The triage contract: whatever rung of the reuse ladder answers — in-range
//! re-pricing, dual-simplex repair, warm or cold resolve — the throughput is
//! the bit-identical exact rational a from-scratch solve produces, and an
//! `InRange` verdict really does mean the old basis is still optimal (here
//! re-checked by an independent cold solve on every occurrence).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use steady_core::scatter::ScatterProblem;
use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel, DriftStats, Triage};
use steady_platform::generators::{random_connected, RandomConfig};
use steady_platform::{NodeId, Platform};

/// A random connected 5-node platform, deterministic in `seed`.
fn platform_for(seed: u64) -> Platform {
    let config = RandomConfig { nodes: 5, ..RandomConfig::default() };
    random_connected(&config, &mut StdRng::seed_from_u64(seed))
}

fn scatter_on(platform: Platform) -> ScatterProblem {
    ScatterProblem::new(platform, NodeId(0), vec![NodeId(1), NodeId(2)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_triage_rung_is_exact_along_a_random_walk(
        seed in 0u64..10_000,
        walk_seed in 0u64..10_000,
    ) {
        let mut model = DriftModel::new(platform_for(seed), DriftConfig::default(), walk_seed);
        let mut basis = None;
        let mut stats = DriftStats::default();
        for _ in 0..6 {
            let problem = scatter_on(model.step());
            let (triaged, report) = solve_steady_triaged(&problem, basis.as_ref()).unwrap();
            // Independent cold re-solve: exact equality on every rung, and
            // in particular every InRange verdict is re-verified optimal.
            let (cold, cold_report) = solve_steady_triaged(&problem, None).unwrap();
            prop_assert_eq!(cold_report.triage, Triage::ResolveCold);
            prop_assert_eq!(
                triaged.throughput(),
                cold.throughput(),
                "rung {} diverged from the cold solve",
                report.triage.kind_name()
            );
            if report.triage == Triage::InRange {
                prop_assert_eq!(report.iterations, 0, "InRange must spend zero pivots");
            }
            stats.record(&report);
            basis = report.basis;
        }
        prop_assert!(basis.is_some(), "every solve must hand the next one a basis");
        prop_assert_eq!(stats.total(), 6);
    }

    #[test]
    fn in_range_holds_for_the_unperturbed_problem(seed in 0u64..10_000) {
        // The degenerate walk (same platform twice) must always re-price.
        let problem = scatter_on(platform_for(seed));
        let (cold, report) = solve_steady_triaged(&problem, None).unwrap();
        let basis = report.basis.expect("cold solve yields a basis");
        let (again, report) = solve_steady_triaged(&problem, Some(&basis)).unwrap();
        prop_assert_eq!(report.triage, Triage::InRange);
        prop_assert!(report.had_prior);
        prop_assert_eq!(again.throughput(), cold.throughput());
    }
}
