//! Baseline collective algorithms for comparison with the steady-state schedules.
//!
//! The paper motivates steady-state scheduling by contrast with classical
//! single-collective algorithms that route everything along fixed trees or
//! direct paths.  This crate implements those baselines on the same platform
//! model so the benchmark harness can report "who wins and by how much":
//!
//! * [`direct_scatter`] — the source sends every message along a shortest
//!   path (store-and-forward), one operation after another; pipelining only
//!   happens implicitly through resource availability.
//! * [`flat_tree_reduce`] — every participant ships its value to the target
//!   along a shortest path and the target folds them left-to-right (the order
//!   matters: the reduction operator is not commutative).
//! * [`binomial_reduce`] — the classical binomial combining tree over the
//!   participant ranks, followed by a final transfer to the target; adjacent
//!   ranges are combined so associativity suffices.
//! * [`binomial_scatter`] — recursive halving of the target list: the source
//!   ships the second half's bundle to a pivot which redistributes it.
//! * [`direct_gather`] — every source ships its message straight to the sink.
//! * [`chain_reduce`] — the pipeline reduce along decreasing ranks, ending
//!   with a transfer from rank 0 to the target.
//! * [`direct_gossip`] — every (source, target) pair exchanges its message
//!   along a shortest path.
//!
//! Every baseline produces a [`Dag`] executed by `steady-sim`'s
//! resource-constrained engine; [`measure_pipelined_throughput`] runs `M`
//! back-to-back operations and reports `M / makespan`, the baseline's
//! sustained throughput, directly comparable with the LP optimum `TP(G)`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use steady_core::gather::GatherProblem;
use steady_core::gossip::GossipProblem;
use steady_core::reduce::ReduceProblem;
use steady_core::scatter::ScatterProblem;
use steady_platform::{NodeId, Platform};
use steady_rational::Ratio;
use steady_sim::{simulate, Dag, OpId, SimError};

/// Throughput measurement of a pipelined baseline run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Number of back-to-back collective operations executed.
    pub operations: usize,
    /// Time at which the last operation completed.
    pub makespan: Ratio,
    /// Sustained throughput estimate `operations / makespan`.
    pub throughput: Ratio,
}

/// Builds and runs a baseline DAG, reporting its sustained throughput.
pub fn measure_pipelined_throughput(
    platform: &Platform,
    dag: &Dag,
    operations: usize,
) -> Result<BaselineReport, SimError> {
    let result = simulate(platform, dag)?;
    let throughput = if result.makespan.is_positive() {
        &Ratio::from(operations) / &result.makespan
    } else {
        Ratio::zero()
    };
    Ok(BaselineReport { operations, makespan: result.makespan, throughput })
}

/// Appends the store-and-forward relay of one message along the shortest path
/// `from -> to`, returning the final op of the chain.
fn relay_message(
    platform: &Platform,
    dag: &mut Dag,
    from: NodeId,
    to: NodeId,
    size: &Ratio,
    deps: Vec<OpId>,
) -> OpId {
    if from == to {
        return dag.milestone(deps);
    }
    let path =
        platform.shortest_path(from, to).unwrap_or_else(|| panic!("no path from {from} to {to}"));
    let mut last_deps = deps;
    let mut last = None;
    for e in path {
        let edge = platform.edge(e);
        let duration = size * &edge.cost;
        let op = dag.transfer(edge.from, edge.to, duration, last_deps.clone());
        last_deps = vec![op];
        last = Some(op);
    }
    last.expect("path is non-empty")
}

/// Direct (shortest-path) scatter baseline: `operations` consecutive scatter
/// operations, each sending one unit-size message from the source to every
/// target along a shortest path, in target order.
pub fn direct_scatter(problem: &ScatterProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;
    for _ in 0..operations {
        let mut deliveries = Vec::new();
        for &t in problem.targets() {
            // Each operation's emissions start after the previous operation's
            // emissions were issued (classical non-pipelined usage would even
            // wait for completion; resource constraints already serialize the
            // source port, so this is the friendlier variant).
            let deps = previous_op_end.iter().copied().collect();
            let delivered =
                relay_message(platform, &mut dag, problem.source(), t, &Ratio::one(), deps);
            deliveries.push(delivered);
        }
        previous_op_end = Some(dag.milestone(deliveries));
    }
    dag
}

/// Flat-tree reduce baseline: every participant ships its value to the target,
/// which folds the values left-to-right (`((v0 ⊕ v1) ⊕ v2) ⊕ ...`).
pub fn flat_tree_reduce(problem: &ReduceProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let target = problem.target();
    let task_time =
        problem.task_time(target).expect("flat-tree baseline requires a computing target");
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;
    let n = problem.last_index();

    for _ in 0..operations {
        let start_deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        // Ship every value to the target.
        let mut arrival = Vec::new();
        for (i, &p) in problem.participants().iter().enumerate() {
            let size = problem.size((i, i));
            let op = relay_message(platform, &mut dag, p, target, &size, start_deps.clone());
            arrival.push(op);
        }
        // Left-to-right fold on the target.
        let mut prev = arrival[0];
        for &op in &arrival[1..=n] {
            let deps = vec![prev, op];
            prev = dag.compute(target, task_time.clone(), deps);
        }
        previous_op_end = Some(dag.milestone(vec![prev]));
    }
    dag
}

/// Binomial-tree reduce baseline: `⌈log2⌉` rounds of pairwise combining of
/// adjacent index ranges (rank `j` receives from rank `j + 2^r` when
/// `j mod 2^{r+1} == 0`), then the final value moves from rank 0 to the target.
pub fn binomial_reduce(problem: &ReduceProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let participants = problem.participants();
    let n_participants = participants.len();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;

    for _ in 0..operations {
        let start_deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        // ready[i] = op after which participant i's current partial value is
        // available; range[i] = (lo, hi) indices covered by that value.
        let mut ready: Vec<OpId> =
            (0..n_participants).map(|_| dag.milestone(start_deps.clone())).collect();
        let mut range: Vec<(usize, usize)> = (0..n_participants).map(|i| (i, i)).collect();

        let mut step = 1usize;
        while step < n_participants {
            for j in (0..n_participants).step_by(2 * step) {
                let partner = j + step;
                if partner >= n_participants {
                    continue;
                }
                // partner ships its current partial value to j, then j combines.
                let interval = range[partner];
                let size = problem.size(interval);
                let arrive = relay_message(
                    platform,
                    &mut dag,
                    participants[partner],
                    participants[j],
                    &size,
                    vec![ready[partner]],
                );
                let task_time =
                    problem.task_time(participants[j]).expect("participants can compute");
                let combine = dag.compute(participants[j], task_time, vec![ready[j], arrive]);
                ready[j] = combine;
                range[j] = (range[j].0, range[partner].1);
            }
            step *= 2;
        }
        // Ship the complete result from rank 0 to the target.
        let final_interval = range[0];
        let size = problem.size(final_interval);
        let done = relay_message(
            platform,
            &mut dag,
            participants[0],
            problem.target(),
            &size,
            vec![ready[0]],
        );
        previous_op_end = Some(dag.milestone(vec![done]));
    }
    dag
}

/// Binomial (recursive-halving) scatter baseline: the source hands the
/// messages of the second half of the target list to the first target of that
/// half, which recursively redistributes them; the first half is handled the
/// same way by the source.  Message hops relay along shortest paths.
pub fn binomial_scatter(problem: &ScatterProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;

    // Recursively scatter the messages of `targets` currently held by `holder`.
    fn scatter_range(
        platform: &Platform,
        dag: &mut Dag,
        holder: NodeId,
        targets: &[NodeId],
        ready: OpId,
        deliveries: &mut Vec<OpId>,
    ) {
        match targets {
            [] => {}
            [only] => {
                let done = if *only == holder {
                    dag.milestone(vec![ready])
                } else {
                    relay_range_message(platform, dag, holder, *only, targets.len(), vec![ready])
                };
                deliveries.push(done);
            }
            _ => {
                let mid = targets.len() / 2;
                let (first, second) = targets.split_at(mid);
                // Ship the whole bundle for `second` to its first member.
                let pivot = second[0];
                let bundle_arrival =
                    relay_range_message(platform, dag, holder, pivot, second.len(), vec![ready]);
                scatter_range(platform, dag, pivot, second, bundle_arrival, deliveries);
                scatter_range(platform, dag, holder, first, ready, deliveries);
            }
        }
    }

    for _ in 0..operations {
        let deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        let start = dag.milestone(deps);
        let mut deliveries = Vec::new();
        scatter_range(
            platform,
            &mut dag,
            problem.source(),
            problem.targets(),
            start,
            &mut deliveries,
        );
        previous_op_end = Some(dag.milestone(deliveries));
    }
    dag
}

/// Relays a bundle of `count` unit-size messages from `from` to `to` along a
/// shortest path (the bundle travels as one block of size `count`).
fn relay_range_message(
    platform: &Platform,
    dag: &mut Dag,
    from: NodeId,
    to: NodeId,
    count: usize,
    deps: Vec<OpId>,
) -> OpId {
    let size = Ratio::from(count);
    relay_message(platform, dag, from, to, &size, deps)
}

/// Direct gather baseline: every source ships its message to the sink along a
/// shortest path, operation after operation.
pub fn direct_gather(problem: &GatherProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;
    for _ in 0..operations {
        let deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        let mut deliveries = Vec::new();
        for &s in problem.sources() {
            let done =
                relay_message(platform, &mut dag, s, problem.sink(), &Ratio::one(), deps.clone());
            deliveries.push(done);
        }
        previous_op_end = Some(dag.milestone(deliveries));
    }
    dag
}

/// Chain (pipeline) reduce baseline: the last rank ships its value to the
/// previous rank, which combines and forwards the growing prefix towards rank
/// 0; rank 0 finally ships the complete result to the target.  Respects the
/// non-commutative reduction order.
pub fn chain_reduce(problem: &ReduceProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let participants = problem.participants();
    let n = problem.last_index();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;

    for _ in 0..operations {
        let deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        let start = dag.milestone(deps);
        // ready = op after which the partial value v[i, N] is available on rank i.
        let mut ready = start;
        for i in (0..n).rev() {
            // Rank i+1 ships v[i+1, N] to rank i, which combines with v[i, i].
            let size = problem.size((i + 1, n));
            let arrive = relay_message(
                platform,
                &mut dag,
                participants[i + 1],
                participants[i],
                &size,
                vec![ready],
            );
            let task_time = problem.task_time(participants[i]).expect("participants can compute");
            ready = dag.compute(participants[i], task_time, vec![arrive]);
        }
        // Ship v[0, N] from rank 0 to the target.
        let size = problem.size((0, n));
        let done = relay_message(
            platform,
            &mut dag,
            participants[0],
            problem.target(),
            &size,
            vec![ready],
        );
        previous_op_end = Some(dag.milestone(vec![done]));
    }
    dag
}

/// Direct gossip baseline: every (source, target) pair exchanges its message
/// along a shortest path, operation after operation.
pub fn direct_gossip(problem: &GossipProblem, operations: usize) -> Dag {
    let platform = problem.platform();
    let mut dag = Dag::new();
    let mut previous_op_end: Option<OpId> = None;
    for _ in 0..operations {
        let deps: Vec<OpId> = previous_op_end.iter().copied().collect();
        let mut deliveries = Vec::new();
        for &s in problem.sources() {
            for &t in problem.targets() {
                if s == t {
                    continue;
                }
                let done = relay_message(platform, &mut dag, s, t, &Ratio::one(), deps.clone());
                deliveries.push(done);
            }
        }
        previous_op_end = Some(dag.milestone(deliveries));
    }
    dag
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_core::gather::GatherProblem;
    use steady_core::gossip::GossipProblem;
    use steady_platform::generators::{self, figure2, figure6};
    use steady_rational::rat;

    #[test]
    fn direct_scatter_on_figure2_is_slower_than_optimal() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let optimal = problem.solve().unwrap();
        let dag = direct_scatter(&problem, 20);
        let report = measure_pipelined_throughput(problem.platform(), &dag, 20).unwrap();
        assert!(report.throughput.is_positive());
        assert!(
            report.throughput <= *optimal.throughput(),
            "baseline {} beats the LP optimum {}",
            report.throughput,
            optimal.throughput()
        );
    }

    #[test]
    fn direct_scatter_star_matches_theory() {
        // On a star the direct scatter is actually optimal: the source port is
        // the only bottleneck either way.
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = ScatterProblem::new(p, center, leaves).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 30;
        let dag = direct_scatter(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        // Throughput approaches 1/3 as the number of operations grows.
        let gap = optimal.throughput() - &report.throughput;
        assert!(gap >= Ratio::zero());
        assert!(gap < rat(1, 20), "gap {gap} too large");
    }

    #[test]
    fn flat_tree_reduce_feasible_and_dominated() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 20;
        let dag = flat_tree_reduce(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn binomial_reduce_feasible_and_dominated() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 20;
        let dag = binomial_reduce(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn binomial_reduce_on_chain_platform() {
        let (p, nodes) = generators::chain(4, rat(1, 1));
        let problem = ReduceProblem::new(
            p,
            vec![nodes[0], nodes[1], nodes[2], nodes[3]],
            nodes[0],
            rat(1, 1),
            rat(1, 1),
        )
        .unwrap();
        let dag = binomial_reduce(&problem, 5);
        let report = measure_pipelined_throughput(problem.platform(), &dag, 5).unwrap();
        assert!(report.throughput.is_positive());
        let optimal = problem.solve().unwrap();
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn throughput_improves_with_more_operations() {
        // Pipelining amortizes the start-up latency: throughput is
        // non-decreasing in the number of back-to-back operations.
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let few = measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, 2), 2)
            .unwrap();
        let many =
            measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, 40), 40)
                .unwrap();
        assert!(many.throughput >= few.throughput);
    }

    #[test]
    fn single_operation_reports_finite_makespan() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let dag = flat_tree_reduce(&problem, 1);
        let report = measure_pipelined_throughput(problem.platform(), &dag, 1).unwrap();
        assert!(report.makespan.is_positive());
        assert_eq!(report.operations, 1);
    }

    #[test]
    fn binomial_scatter_feasible_and_dominated() {
        let problem = ScatterProblem::from_instance(figure2()).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 20;
        let dag = binomial_scatter(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn binomial_scatter_on_chain_uses_relaying() {
        // On a chain the binomial scatter forwards the far targets' bundle to
        // the middle node, exactly the behaviour the recursion is meant to show.
        let (p, nodes) = generators::chain(5, rat(1, 1));
        let problem = ScatterProblem::new(p, nodes[0], nodes[1..].to_vec()).unwrap();
        let ops = 10;
        let dag = binomial_scatter(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        let optimal = problem.solve().unwrap();
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn direct_gather_star_matches_theory() {
        // Gathering k messages over a star serializes the center's in-port:
        // the sustained throughput tends to 1 / (k * c) = the LP optimum.
        let (p, center, leaves) = generators::star(3, rat(1, 1));
        let problem = GatherProblem::new(p, leaves, center).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 30;
        let dag = direct_gather(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
        let gap = optimal.throughput() - &report.throughput;
        assert!(gap < rat(1, 20), "gap {gap} too large");
    }

    #[test]
    fn chain_reduce_feasible_and_dominated() {
        let problem = ReduceProblem::from_instance(figure6()).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 20;
        let dag = chain_reduce(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn chain_reduce_on_chain_platform_is_latency_bound() {
        // On a 4-node chain the pipeline reduce crosses every link once per
        // operation and serializes the combines; its throughput stays positive
        // but clearly below the steady-state optimum.
        let (p, nodes) = generators::chain(4, rat(1, 1));
        let problem = ReduceProblem::new(
            p,
            vec![nodes[0], nodes[1], nodes[2], nodes[3]],
            nodes[0],
            rat(1, 1),
            rat(1, 1),
        )
        .unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 15;
        let dag = chain_reduce(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }

    #[test]
    fn direct_gossip_feasible_and_dominated() {
        let (p, nodes) = generators::clique(3, rat(1, 1));
        let problem = GossipProblem::new(p, nodes.clone(), nodes).unwrap();
        let optimal = problem.solve().unwrap();
        let ops = 15;
        let dag = direct_gossip(&problem, ops);
        let report = measure_pipelined_throughput(problem.platform(), &dag, ops).unwrap();
        assert!(report.throughput.is_positive());
        assert!(report.throughput <= *optimal.throughput());
    }
}
