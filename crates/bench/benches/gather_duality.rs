//! Experiment E1 (extension) — Series of Gathers: steady-state throughput,
//! gather/scatter transpose duality, and comparison with the direct baseline.
//!
//! The paper treats gather/reduce as one family (§1); the pure gather (no
//! combining) is the transpose dual of the scatter LP, so this bench both
//! reports the gather optimum on representative platforms and checks the
//! duality identity `TP_gather(G) = TP_scatter(Gᵀ)` on each of them.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_baselines::{direct_gather, measure_pipelined_throughput};
use steady_bench::{fmt_ratio, print_header};
use steady_core::gather::GatherProblem;
use steady_platform::generators;
use steady_platform::topologies::dumbbell_gather_instance;
use steady_rational::rat;

fn instances() -> Vec<(String, GatherProblem)> {
    let mut out = Vec::new();

    let (star, center, leaves) = generators::star(4, rat(1, 2));
    out.push((
        "star-4 (cost 1/2)".to_string(),
        GatherProblem::new(star, leaves, center).expect("valid"),
    ));

    let costs = [rat(1, 4), rat(1, 2), rat(1, 1)];
    let (hstar, hcenter, hleaves) = generators::heterogeneous_star(&costs);
    out.push((
        "heterogeneous star (3 workers)".to_string(),
        GatherProblem::new(hstar, hleaves, hcenter).expect("valid"),
    ));

    let inst = generators::figure2();
    out.push((
        "figure-2 reversed".to_string(),
        GatherProblem::new(inst.platform.transpose(), inst.targets, inst.source).expect("valid"),
    ));

    out.push((
        "dumbbell 3+3 (bridge cost 1)".to_string(),
        GatherProblem::from_instance(dumbbell_gather_instance(3, rat(1, 4), rat(1, 1)))
            .expect("valid"),
    ));

    out
}

fn reproduce() {
    print_header("Extension E1 — Series of Gathers (dual of §3) ");
    println!(
        "{:<34} {:>16} {:>16} {:>16}",
        "platform", "TP gather", "TP dual scatter", "direct baseline"
    );
    for (name, problem) in instances() {
        let sol = problem.solve().expect("gather LP solves");
        sol.verify(&problem).expect("solution verifies");
        let dual = problem.dual_scatter().expect("dual problem");
        let dual_tp = dual.solve().expect("dual LP solves").throughput().clone();
        assert_eq!(&dual_tp, sol.throughput(), "duality violated on {name}");
        let ops = 20;
        let baseline =
            measure_pipelined_throughput(problem.platform(), &direct_gather(&problem, ops), ops)
                .expect("baseline simulates");
        assert!(baseline.throughput <= *sol.throughput());
        println!(
            "{:<34} {:>16} {:>16} {:>16}",
            name,
            fmt_ratio(sol.throughput()),
            fmt_ratio(&dual_tp),
            fmt_ratio(&baseline.throughput)
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let (_, problem) = instances().into_iter().next().expect("star instance");
    let mut group = c.benchmark_group("gather");
    group.sample_size(10);
    group.bench_function("solve_gather_star4", |b| b.iter(|| problem.solve().expect("solves")));
    group.bench_function("gather_schedule_star4", |b| {
        let sol = problem.solve().expect("solves");
        b.iter(|| sol.build_schedule(&problem).expect("schedule"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
