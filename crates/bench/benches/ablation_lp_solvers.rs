//! Ablation A3 — LP solving strategies: pure exact rational simplex vs the
//! f64-then-certify pipeline, on scatter LPs of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steady_bench::{print_header, star_scatter};
use steady_lp::{solve_certified, solve_exact, solve_f64};

fn reproduce() {
    print_header("Ablation A3 — exact simplex vs f64 + exact certification");
    println!(
        "{:<24} {:>8} {:>8} {:>14} {:>14}",
        "instance", "vars", "rows", "exact TP", "certified TP"
    );
    for leaves in [2usize, 4, 8, 12] {
        let problem = star_scatter(leaves);
        let (lp, _) = problem.build_lp();
        let exact = solve_exact(&lp).expect("exact solves");
        let certified = solve_certified(&lp).expect("certified solves");
        assert_eq!(exact.objective, certified.objective);
        println!(
            "{:<24} {:>8} {:>8} {:>14} {:>14}",
            format!("star-{leaves} scatter"),
            lp.num_vars(),
            lp.num_constraints(),
            exact.objective.to_string(),
            certified.objective.to_string()
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("lp_solvers");
    group.sample_size(10);
    for leaves in [4usize, 8, 12] {
        let problem = star_scatter(leaves);
        let (lp, _) = problem.build_lp();
        group.bench_with_input(BenchmarkId::new("exact_simplex", leaves), &lp, |b, lp| {
            b.iter(|| solve_exact(lp).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("f64_simplex", leaves), &lp, |b, lp| {
            b.iter(|| solve_f64(lp).expect("solves"))
        });
        group.bench_with_input(BenchmarkId::new("f64_plus_certify", leaves), &lp, |b, lp| {
            b.iter(|| solve_certified(lp).expect("solves"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
