//! Micro-benchmarks for the revised simplex kernels: sparse LU
//! factorization, FTRAN/BTRAN triangular solves and eta-file updates at
//! several basis sizes.
//!
//! These are the three operations every revised-simplex pivot is made of,
//! so their scaling with basis dimension is the scaling of the whole sparse
//! route (the end-to-end picture is `steady scaling-sweep`).  The benched
//! bases are strictly diagonally dominant sparse matrices — guaranteed
//! nonsingular, with the few-nonzeros-per-column shape of the steady-state
//! collective LPs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_bench::print_header;
use steady_lp::{CscMatrix, Eta, SparseLu};

/// A sparse strictly column-diagonally-dominant `m x m` matrix: diagonal
/// 4.0 plus up to three off-diagonal entries per column in `(0, 1]`.
fn dominant_basis(m: usize, rng: &mut StdRng) -> CscMatrix<f64> {
    let columns = (0..m)
        .map(|j| {
            let mut col = vec![(j, 4.0f64)];
            for _ in 0..3 {
                let i = rng.gen_range(0..m);
                if i != j && !col.iter().any(|&(r, _)| r == i) {
                    col.push((i, 0.1 + 0.9 * rng.gen::<f64>()));
                }
            }
            col
        })
        .collect();
    CscMatrix::from_columns(m, columns)
}

/// A right-hand side with a handful of nonzeros, like an entering column.
fn sparse_rhs(m: usize, rng: &mut StdRng) -> Vec<f64> {
    let mut b = vec![0.0; m];
    for _ in 0..8 {
        b[rng.gen_range(0..m)] = rng.gen::<f64>() - 0.5;
    }
    b
}

fn reproduce() {
    print_header("Revised simplex kernels — LU / FTRAN / BTRAN / eta costs");
    println!("{:<10} {:>10} {:>12}", "basis m", "A nnz", "LU nnz");
    let mut rng = StdRng::seed_from_u64(7);
    for m in [200usize, 500, 1000] {
        let a = dominant_basis(m, &mut rng);
        let cols: Vec<usize> = (0..m).collect();
        let lu = SparseLu::factorize(&a, &cols).expect("dominant basis factorizes");
        println!("{m:<10} {:>10} {:>12}", a.nnz(), lu.nnz());
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("revised_kernels");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    for m in [200usize, 500, 1000] {
        let a = dominant_basis(m, &mut rng);
        let cols: Vec<usize> = (0..m).collect();
        let lu = SparseLu::factorize(&a, &cols).expect("dominant basis factorizes");
        let rhs = sparse_rhs(m, &mut rng);

        group.bench_with_input(BenchmarkId::new("factorize", m), &(), |b, ()| {
            b.iter(|| SparseLu::factorize(&a, &cols).expect("dominant basis factorizes"))
        });
        group.bench_with_input(BenchmarkId::new("ftran", m), &(), |b, ()| {
            b.iter(|| lu.ftran(rhs.clone()))
        });
        group.bench_with_input(BenchmarkId::new("btran", m), &(), |b, ()| {
            b.iter(|| lu.btran(rhs.clone()))
        });

        // Eta-file costs: build one eta from a solved column, then apply a
        // 64-deep eta file (one refactorization interval) in both
        // directions.
        let w = lu.ftran(sparse_rhs(m, &mut rng));
        let pos = w
            .iter()
            .enumerate()
            .max_by(|(_, x), (_, y)| x.abs().total_cmp(&y.abs()))
            .map(|(i, _)| i)
            .expect("basis dimension is positive");
        group.bench_with_input(BenchmarkId::new("eta_build", m), &(), |b, ()| {
            b.iter(|| Eta::from_dense(pos, &w))
        });
        let etas: Vec<Eta<f64>> = (0..64).map(|_| Eta::from_dense(pos, &w)).collect();
        group.bench_with_input(BenchmarkId::new("eta_file_ftran_64", m), &(), |b, ()| {
            b.iter(|| {
                let mut x = rhs.clone();
                for eta in &etas {
                    eta.apply_ftran(&mut x);
                }
                x
            })
        });
        group.bench_with_input(BenchmarkId::new("eta_file_btran_64", m), &(), |b, ()| {
            b.iter(|| {
                let mut z = rhs.clone();
                for eta in etas.iter().rev() {
                    eta.apply_btran(&mut z);
                }
                z
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
