//! Experiments F5/F6/F7 — Figures 5–7: the toy Series-of-Reduces instance,
//! its LP solution and its decomposition into reduction trees.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure6_problem, fmt_ratio, print_header};
use steady_core::trees::verify_tree_set;
use steady_rational::{rat, Ratio};

fn reproduce() {
    let problem = figure6_problem();
    let solution = problem.solve().expect("figure6 LP solves");
    print_header("Figure 6 — Series of Reduces on the 3-processor platform");
    println!("paper:    TP = 1 (three reductions every three time-units, period 3)");
    println!("measured: TP = {}", fmt_ratio(solution.throughput()));
    println!("minimal period = {}", solution.period());

    println!("\nLP solution scaled to a period of 3 (paper Figure 6(b)):");
    for ((edge, interval), rate) in solution.sends() {
        let e = problem.platform().edge(*edge);
        println!(
            "  send({} -> {}, v[{},{}]) = {}",
            problem.platform().node(e.from).name,
            problem.platform().node(e.to).name,
            interval.0,
            interval.1,
            fmt_ratio(&(rate * &rat(3, 1)))
        );
    }
    for ((node, task), rate) in solution.tasks() {
        println!(
            "  cons({}, T[{},{},{}]) = {}",
            problem.platform().node(*node).name,
            task.0,
            task.1,
            task.2,
            fmt_ratio(&(rate * &rat(3, 1)))
        );
    }

    print_header("Figure 7 — reduction trees of the Figure-6 solution");
    let trees = solution.extract_trees(&problem).expect("trees extract");
    verify_tree_set(&problem, &solution, &trees).expect("tree set is valid");
    println!("paper:    2 trees with throughputs 1/3 and 2/3");
    println!("measured: {} tree(s)", trees.len());
    for (i, wt) in trees.iter().enumerate() {
        println!(
            "  tree {i}: weight {}, {} transfers, {} tasks",
            fmt_ratio(&wt.weight),
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        );
    }
    let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
    println!("  total weight = {} (equals TP)", fmt_ratio(&total));
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = figure6_problem();
    let solution = problem.solve().expect("solves");
    let mut group = c.benchmark_group("fig6_fig7");
    group.sample_size(20);
    group.bench_function("solve_reduce_lp_exact", |b| b.iter(|| problem.solve().expect("solves")));
    group.bench_function("extract_reduction_trees", |b| {
        b.iter(|| solution.extract_trees(&problem).expect("trees"))
    });
    group.bench_function("build_reduce_schedule", |b| {
        b.iter(|| solution.build_schedule(&problem).expect("schedule"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
