//! Experiment P2 — Section 3.5 / Proposition 2: steady-state throughput of
//! Series-of-Gossips (personalized all-to-all) on representative platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{fmt_ratio, print_header};
use steady_core::gossip::GossipProblem;
use steady_platform::generators;
use steady_rational::rat;

fn reproduce() {
    print_header("Section 3.5 — Series of Gossips (personalized all-to-all)");
    println!("{:<34} {:>16} {:>10}", "platform", "TP (ops/unit)", "period");
    for (name, problem) in instances() {
        let sol = problem.solve().expect("gossip LP solves");
        sol.verify(&problem).expect("solution verifies");
        println!("{:<34} {:>16} {:>10}", name, fmt_ratio(sol.throughput()), sol.period());
    }
}

fn instances() -> Vec<(String, GossipProblem)> {
    let mut out = Vec::new();
    let (clique, nodes) = generators::clique(3, rat(1, 1));
    out.push((
        "clique-3 (unit links)".to_string(),
        GossipProblem::new(clique, nodes.clone(), nodes).expect("valid"),
    ));
    let (clique4, nodes4) = generators::clique(4, rat(1, 2));
    out.push((
        "clique-4 (cost 1/2)".to_string(),
        GossipProblem::new(clique4, nodes4.clone(), nodes4).expect("valid"),
    ));
    let costs = [rat(1, 4), rat(1, 2), rat(1, 2), rat(1, 1)];
    let (star, _center, leaves) = generators::heterogeneous_star(&costs);
    out.push((
        "heterogeneous star (4 workers)".to_string(),
        GossipProblem::new(star, leaves.clone(), leaves).expect("valid"),
    ));
    let inst = generators::figure2();
    out.push((
        "figure-2 platform (single source)".to_string(),
        GossipProblem::new(inst.platform, vec![inst.source], inst.targets).expect("valid"),
    ));
    out
}

fn bench(c: &mut Criterion) {
    reproduce();
    let (_, problem) = instances().into_iter().nth(2).expect("star instance");
    let mut group = c.benchmark_group("gossip");
    group.sample_size(10);
    group.bench_function("solve_gossip_star4", |b| b.iter(|| problem.solve().expect("solves")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
