//! Ablation A4 — scaling of the LP-based machinery with platform size.
//!
//! The paper argues the whole pipeline (LP, tree extraction, matching
//! decomposition) is polynomial; this bench sweeps growing platforms and
//! prints, for each size, the number of LP variables/constraints, the optimal
//! throughput and the wall-clock time of the exact solve, so the polynomial
//! growth (and the practical limits of the exact rational simplex) are visible
//! in one table.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{fmt_ratio, grid_scatter, print_header, small_tiers_reduce, star_scatter};

fn reproduce() {
    print_header("Ablation A4 — scaling with platform size (scatter)");
    println!(
        "{:<26} {:>8} {:>12} {:>14} {:>12}",
        "platform", "vars", "constraints", "TP", "solve (ms)"
    );
    let mut scatter_cases = Vec::new();
    for leaves in [2usize, 4, 8, 12, 16] {
        scatter_cases.push((format!("star-{leaves}"), star_scatter(leaves)));
    }
    for (rows, cols) in [(2usize, 2usize), (2, 3), (3, 3)] {
        scatter_cases.push((format!("grid-{rows}x{cols}"), grid_scatter(rows, cols)));
    }
    for (name, problem) in &scatter_cases {
        let (lp, _) = problem.build_lp();
        let start = Instant::now();
        let sol = problem.solve().expect("scatter LP solves");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<26} {:>8} {:>12} {:>14} {:>12.1}",
            name,
            lp.num_vars(),
            lp.num_constraints(),
            fmt_ratio(sol.throughput()),
            elapsed
        );
    }

    print_header("Ablation A4 — scaling with participant count (reduce, Tiers platform)");
    println!(
        "{:<26} {:>8} {:>12} {:>14} {:>12}",
        "instance", "vars", "constraints", "TP", "solve (ms)"
    );
    for participants in [2usize, 3, 4, 5] {
        let problem = small_tiers_reduce(participants, 11);
        let (lp, _) = problem.build_lp();
        let start = Instant::now();
        let sol = problem.solve().expect("reduce LP solves");
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:<26} {:>8} {:>12} {:>14} {:>12.1}",
            format!("tiers reduce, N={participants}"),
            lp.num_vars(),
            lp.num_constraints(),
            fmt_ratio(sol.throughput()),
            elapsed
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for leaves in [4usize, 8, 16] {
        let problem = star_scatter(leaves);
        group.bench_function(format!("scatter_star_{leaves}"), |b| {
            b.iter(|| problem.solve().expect("solves"))
        });
    }
    let reduce = small_tiers_reduce(4, 11);
    group.bench_function("reduce_tiers_4", |b| b.iter(|| reduce.solve().expect("solves")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
