//! Ablation A1/A2 — steady-state optimum vs classical baselines (direct
//! scatter, flat-tree reduce, binomial reduce) on toy, grid and Tiers
//! platforms: who wins and by what factor.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_baselines::{
    binomial_reduce, direct_scatter, flat_tree_reduce, measure_pipelined_throughput,
};
use steady_bench::{figure2_problem, figure6_problem, grid_scatter, print_header, tiers_scatter};

fn reproduce() {
    let ops = 25;
    print_header("Ablation A1 — scatter: steady-state optimum vs direct shortest-path scatter");
    println!("{:<28} {:>12} {:>12} {:>8}", "platform", "steady TP", "direct", "ratio");
    let scatters = vec![
        ("figure-2 toy".to_string(), figure2_problem()),
        ("grid 3x3".to_string(), grid_scatter(3, 3)),
        ("tiers (seed 5)".to_string(), tiers_scatter(5)),
    ];
    for (name, problem) in scatters {
        let optimal = problem.solve().expect("solves");
        let base =
            measure_pipelined_throughput(problem.platform(), &direct_scatter(&problem, ops), ops)
                .expect("baseline");
        let s = optimal.throughput().to_f64();
        let b = base.throughput.to_f64();
        println!("{:<28} {:>12.4} {:>12.4} {:>7.2}x", name, s, b, s / b.max(1e-12));
    }

    print_header("Ablation A2 — reduce: steady-state optimum vs tree baselines");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>8} {:>8}",
        "platform", "steady TP", "flat tree", "binomial", "vs flat", "vs bino"
    );
    let reduces = vec![
        ("figure-6 toy".to_string(), figure6_problem()),
        ("figure-9 tiers (6 part.)".to_string(), {
            // The full 8-participant LP is too slow for a default bench run;
            // see EXPERIMENTS.md.
            let mut inst = steady_platform::generators::figure9();
            inst.participants.truncate(6);
            steady_core::reduce::ReduceProblem::from_instance(inst).expect("valid")
        }),
    ];
    for (name, problem) in reduces {
        let optimal = problem.solve().expect("solves");
        let flat =
            measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, ops), ops)
                .expect("flat baseline");
        let bino =
            measure_pipelined_throughput(problem.platform(), &binomial_reduce(&problem, ops), ops)
                .expect("binomial baseline");
        let s = optimal.throughput().to_f64();
        let f = flat.throughput.to_f64();
        let b = bino.throughput.to_f64();
        println!(
            "{:<28} {:>12.4} {:>12.4} {:>12.4} {:>7.2}x {:>7.2}x",
            name,
            s,
            f,
            b,
            s / f.max(1e-12),
            s / b.max(1e-12)
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = figure6_problem();
    let mut group = c.benchmark_group("ablation_baselines");
    group.sample_size(10);
    group.bench_function("simulate_flat_tree_reduce_25ops", |b| {
        b.iter(|| {
            measure_pipelined_throughput(problem.platform(), &flat_tree_reduce(&problem, 25), 25)
                .expect("baseline")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
