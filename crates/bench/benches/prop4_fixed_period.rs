//! Experiment P4 — Proposition 4: throughput of the fixed-period
//! approximation as a function of T_fixed, with the card(Trees)/T_fixed bound.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure6_problem, fmt_ratio, print_header};
use steady_core::approx::approximate_for_period;
use steady_rational::rat;

fn reproduce() {
    let problem = figure6_problem();
    let solution = problem.solve().expect("solves");
    let trees = solution.extract_trees(&problem).expect("trees");
    print_header("Proposition 4 — fixed-period approximation (Figure 6 instance)");
    println!(
        "optimal TP = {}, {} reduction tree(s)",
        fmt_ratio(solution.throughput()),
        trees.len()
    );
    println!("{:>10} {:>16} {:>16} {:>16}", "T_fixed", "throughput", "loss", "bound #trees/T");
    for t in [1i64, 2, 3, 5, 10, 30, 100, 300, 1000] {
        let plan = approximate_for_period(&trees, &rat(t, 1)).expect("plan");
        let loss = solution.throughput() - &plan.throughput;
        println!(
            "{:>10} {:>16} {:>16} {:>16}",
            t,
            fmt_ratio(&plan.throughput),
            fmt_ratio(&loss),
            fmt_ratio(&plan.loss_bound)
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = figure6_problem();
    let solution = problem.solve().expect("solves");
    let trees = solution.extract_trees(&problem).expect("trees");
    let mut group = c.benchmark_group("prop4_fixed_period");
    group.sample_size(20);
    group.bench_function("approximate_for_period_1000", |b| {
        b.iter(|| approximate_for_period(&trees, &rat(1000, 1)).expect("plan"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
