//! Experiment SVC — the serving subsystem's own performance.
//!
//! This is the first bench target tracking a subsystem of the reproduction
//! rather than a figure of the paper: it measures the three layers a served
//! query crosses — canonical fingerprinting, a cache hit, and the cold LP
//! solve the cache amortizes away — plus a full repetition-heavy load run
//! (the number it prints is what CI snapshots into `BENCH_service.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use steady_bench::print_header;
use steady_core::problem::solve_steady_warm;
use steady_core::scatter::ScatterProblem;
use steady_platform::generators::{figure2, heterogeneous_star};
use steady_rational::rat;
use steady_service::{
    fingerprint, run_load, solve_query, structural_fingerprint, Collective, LoadConfig, Query,
    Service, ServiceConfig,
};

fn figure2_query() -> Query {
    let instance = figure2();
    Query {
        platform: instance.platform,
        collective: Collective::Scatter { source: instance.source, targets: instance.targets },
    }
}

fn reproduce() {
    print_header("Service — sustained load over a repetition-heavy query mix");
    let service = Service::start(ServiceConfig { workers: 4, ..ServiceConfig::default() });
    let report =
        run_load(&service, &LoadConfig { queries: 2000, clients: 4, distinct: 24, seed: 42 })
            .expect("load run succeeds");
    print!("{}", report.render());
}

fn bench(c: &mut Criterion) {
    reproduce();
    let query = figure2_query();
    let mut group = c.benchmark_group("service");
    group.bench_function("fingerprint_figure2", |b| b.iter(|| fingerprint(black_box(&query))));
    group.bench_function("structural_fingerprint_figure2", |b| {
        b.iter(|| structural_fingerprint(black_box(&query)))
    });
    group.bench_function("cold_solve_figure2", |b| {
        b.iter(|| solve_query(black_box(&query), false).expect("solves"))
    });
    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    service.query(query.clone()).expect("warm the cache");
    group.bench_function("cached_query_figure2", |b| {
        b.iter(|| service.query(black_box(query.clone())).expect("cached"))
    });

    // Warm vs cold exact solve of a cost-drifted star scatter: the basis of
    // the base platform seeds the drifted one (same structural class).
    let star = |costs: &[steady_rational::Ratio]| {
        let (platform, center, leaves) = heterogeneous_star(costs);
        ScatterProblem::new(platform, center, leaves).expect("valid star scatter")
    };
    let base = star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)]);
    let (_, base_report) = solve_steady_warm(&base, None).expect("base solve");
    let basis = base_report.basis.expect("base solve yields a basis");
    let drifted = star(&[rat(1, 3), rat(2, 5), rat(1, 6), rat(3, 7)]);
    group.bench_function("drifted_star_cold", |b| {
        b.iter(|| solve_steady_warm(black_box(&drifted), None).expect("cold solve"))
    });
    group.bench_function("drifted_star_warm", |b| {
        b.iter(|| solve_steady_warm(black_box(&drifted), Some(&basis)).expect("warm solve"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
