//! Experiment SVC — the serving subsystem's own performance.
//!
//! This is the first bench target tracking a subsystem of the reproduction
//! rather than a figure of the paper: it measures the three layers a served
//! query crosses — canonical fingerprinting, a cache hit, and the cold LP
//! solve the cache amortizes away — plus a full repetition-heavy load run
//! (the number it prints is what CI snapshots into `BENCH_service.json`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use steady_bench::print_header;
use steady_platform::generators::figure2;
use steady_service::{
    fingerprint, run_load, solve_query, Collective, LoadConfig, Query, Service, ServiceConfig,
};

fn figure2_query() -> Query {
    let instance = figure2();
    Query {
        platform: instance.platform,
        collective: Collective::Scatter { source: instance.source, targets: instance.targets },
    }
}

fn reproduce() {
    print_header("Service — sustained load over a repetition-heavy query mix");
    let service = Service::start(ServiceConfig { workers: 4, ..ServiceConfig::default() });
    let report =
        run_load(&service, &LoadConfig { queries: 2000, clients: 4, distinct: 24, seed: 42 })
            .expect("load run succeeds");
    print!("{}", report.render());
}

fn bench(c: &mut Criterion) {
    reproduce();
    let query = figure2_query();
    let mut group = c.benchmark_group("service");
    group.bench_function("fingerprint_figure2", |b| b.iter(|| fingerprint(black_box(&query))));
    group.bench_function("cold_solve_figure2", |b| {
        b.iter(|| solve_query(black_box(&query), false).expect("solves"))
    });
    let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
    service.query(query.clone()).expect("warm the cache");
    group.bench_function("cached_query_figure2", |b| {
        b.iter(|| service.query(black_box(query.clone())).expect("cached"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
