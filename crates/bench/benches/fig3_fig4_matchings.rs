//! Experiments F3/F4 — Figures 3 and 4: decomposition of the Figure-2 load
//! into matchings and the resulting periodic schedule.
//!
//! Prints the matchings (count, durations) and the schedule slots, and
//! benchmarks the weighted edge-coloring and the schedule construction.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure2_problem, fmt_ratio, print_header};
use steady_core::coloring::{decompose, verify_decomposition, BipartiteLoad};
use steady_rational::{rat, Ratio};

fn figure3_load() -> BipartiteLoad {
    // The aggregated per-link busy times of Figure 3 (period 12):
    // Ps->Pa: 3, Ps->Pb: 9, Pa->P0: 2, Pb->P0: 4, Pb->P1: 8.
    let mut load = BipartiteLoad::new();
    load.add(0, 1, rat(3, 1));
    load.add(0, 2, rat(9, 1));
    load.add(1, 3, rat(2, 1));
    load.add(2, 3, rat(4, 1));
    load.add(2, 4, rat(8, 1));
    load
}

fn reproduce() {
    print_header("Figure 3 — matching decomposition of the Figure-2 bipartite load");
    let load = figure3_load();
    let steps = decompose(&load).expect("decomposition succeeds");
    verify_decomposition(&load, &steps).expect("decomposition is valid");
    println!("paper:    4 matchings, total duration 12");
    let total: Ratio = steps.iter().map(|s| s.duration.clone()).sum();
    println!("measured: {} matchings, total duration {}", steps.len(), fmt_ratio(&total));
    for (i, s) in steps.iter().enumerate() {
        let edges: Vec<String> = s
            .edges
            .iter()
            .map(|&e| format!("{}->{}", load.edges[e].sender, load.edges[e].receiver))
            .collect();
        println!(
            "  matching {i}: duration {}, transfers {}",
            fmt_ratio(&s.duration),
            edges.join(", ")
        );
    }

    print_header("Figure 4 — periodic schedule built from the LP solution");
    let problem = figure2_problem();
    let solution = problem.solve().expect("solves");
    let schedule = solution.build_schedule(&problem).expect("schedule");
    schedule.validate(problem.platform()).expect("one-port feasible");
    println!("paper:    period 12 with split messages (48 without splitting), throughput 1/2");
    println!(
        "measured: period {}, {} slots, throughput {}",
        fmt_ratio(&schedule.period),
        schedule.slots.len(),
        fmt_ratio(&schedule.throughput())
    );
    print!("{}", schedule.render(problem.platform()));
}

fn bench(c: &mut Criterion) {
    reproduce();
    let load = figure3_load();
    let problem = figure2_problem();
    let solution = problem.solve().expect("solves");
    let mut group = c.benchmark_group("fig3_fig4");
    group.sample_size(20);
    group.bench_function("edge_coloring_decompose", |b| {
        b.iter(|| decompose(&load).expect("decomposes"))
    });
    group.bench_function("build_schedule", |b| {
        b.iter(|| solution.build_schedule(&problem).expect("schedule"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
