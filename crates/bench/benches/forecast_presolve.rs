//! Experiment FORECAST — what speculative pre-solving costs and saves.
//!
//! The reproduce section walks a forecastable (lazy, fine-grained) cost
//! trajectory over a fixed star, forecasting each step before it happens:
//! it prints how often the next platform was in the presolve plan (the
//! offline analogue of the serving engine's prefetch hit rate) and the
//! `will-hold`/`may-exit`/`will-exit` classification split.  The criterion
//! group then prices the forecast machinery: the zero-pivot survival probe
//! a single envelope state costs, a full plan-sized forecast, and — for
//! scale — the demand solve a prefetch hit avoids.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use steady_bench::print_header;
use steady_core::problem::SteadyProblem;
use steady_core::scatter::ScatterProblem;
use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel};
use steady_forecast::{ForecastConfig, Forecaster};
use steady_lp::basis_still_optimal;
use steady_platform::generators::heterogeneous_star;
use steady_platform::{NodeId, Platform};
use steady_rational::rat;

fn star() -> (Platform, NodeId, Vec<NodeId>) {
    heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5)])
}

fn lazy_config() -> DriftConfig {
    DriftConfig { grid: 16, min_num: 12, max_num: 24, move_probability: 0.15 }
}

fn scatter_on(platform: Platform) -> ScatterProblem {
    let (_, center, leaves) = star();
    ScatterProblem::new(platform, center, leaves).expect("valid star scatter")
}

fn reproduce() {
    print_header("Speculative pre-solving — 40-step lazy walk on a 4-leaf star scatter");
    let (platform, center, leaves) = star();
    let mut model = DriftModel::new(platform, lazy_config(), 42);
    let forecaster =
        Forecaster::new(ForecastConfig { horizon: 1, max_candidates: 16, max_states: 17 });

    let problem = scatter_on(model.current());
    let (_, report) = solve_steady_triaged(&problem, None).expect("base solve");
    let mut basis = report.basis.expect("base solve yields a basis");

    let (mut planned_hits, mut unchanged, mut missed) = (0usize, 0usize, 0usize);
    let (mut will_hold, mut may_exit, mut will_exit) = (0usize, 0usize, 0usize);
    for _ in 0..40 {
        let plan = forecaster
            .forecast(&model, |p| ScatterProblem::new(p, center, leaves.clone()), &basis)
            .expect("forecast");
        match plan.fate {
            steady_forecast::ClassFate::WillHold => will_hold += 1,
            steady_forecast::ClassFate::MayExit => may_exit += 1,
            steady_forecast::ClassFate::WillExit => will_exit += 1,
        }
        let before = model.walkers().to_vec();
        model.step();
        let now = model.walkers();
        if now == before.as_slice() {
            unchanged += 1;
        } else if plan.candidates.iter().any(|c| c.walkers == now) {
            planned_hits += 1;
        } else {
            missed += 1;
        }
        let next = scatter_on(model.current());
        let (_, report) = solve_steady_triaged(&next, Some(&basis)).expect("step solve");
        if let Some(updated) = report.basis {
            basis = updated;
        }
    }
    println!(
        "steps 40: {planned_hits} planned, {unchanged} unchanged, {missed} missed \
         ({:.0}% of changed steps pre-solvable); forecasts {will_hold} will-hold, \
         {may_exit} may-exit, {will_exit} will-exit",
        100.0 * planned_hits as f64 / (planned_hits + missed).max(1) as f64,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();

    let (platform, center, leaves) = star();
    let model = DriftModel::new(platform, lazy_config(), 7);
    let base = scatter_on(model.current());
    let (_, report) = solve_steady_triaged(&base, None).expect("base solve");
    let basis = report.basis.expect("base solve yields a basis");
    let (lp, _) = base.formulate();
    let forecaster =
        Forecaster::new(ForecastConfig { horizon: 1, max_candidates: 16, max_states: 17 });

    // A drifted sibling: one walk step away from the base.
    let drifted = {
        let mut walk = DriftModel::new(model.base().clone(), lazy_config(), 9);
        scatter_on(walk.step())
    };

    let mut group = c.benchmark_group("forecast_presolve");
    group.bench_function("survival_probe", |b| {
        b.iter(|| basis_still_optimal(black_box(&lp), black_box(&basis)))
    });
    group.bench_function("forecast_plan_16", |b| {
        b.iter(|| {
            forecaster
                .forecast(
                    black_box(&model),
                    |p| ScatterProblem::new(p, center, leaves.clone()),
                    &basis,
                )
                .expect("forecast")
        })
    });
    group.bench_function("demand_solve_avoided", |b| {
        b.iter(|| solve_steady_triaged(black_box(&drifted), Some(&basis)).expect("triaged"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
