//! Ablation A5 — Theorem 1: the number of extracted reduction trees is
//! polynomial (at most one per non-zero LP operation, and far below the crude
//! `2 n^4` bound of the proof).
//!
//! The bench sweeps random Tiers-like reduce instances and reports, for each,
//! the number of non-zero operations in the LP solution, the number of trees
//! the greedy extraction produces, and the theoretical bound.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{fmt_ratio, print_header, small_tiers_reduce};
use steady_core::trees::verify_tree_set;
use steady_rational::Ratio;

fn reproduce() {
    print_header("Ablation A5 — reduction-tree count vs Theorem 1 bound");
    println!(
        "{:<26} {:>14} {:>12} {:>10} {:>12}",
        "instance", "TP", "non-zero ops", "trees", "2n^4 bound"
    );
    for (participants, seed) in [(3usize, 1u64), (3, 2), (4, 3), (4, 4), (5, 5)] {
        let problem = small_tiers_reduce(participants, seed);
        let n = problem.platform().num_nodes();
        let sol = problem.solve().expect("reduce LP solves");
        let nonzero = sol.sends().len() + sol.tasks().len();
        let trees = sol.extract_trees(&problem).expect("tree extraction");
        verify_tree_set(&problem, &sol, &trees).expect("tree set verifies");
        let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
        assert_eq!(&total, sol.throughput(), "tree weights must sum to TP");
        let bound = 2 * n.pow(4);
        assert!(trees.len() <= nonzero.max(1), "more trees than non-zero operations");
        assert!(trees.len() <= bound);
        println!(
            "{:<26} {:>14} {:>12} {:>10} {:>12}",
            format!("tiers N={participants}, seed {seed}"),
            fmt_ratio(sol.throughput()),
            nonzero,
            trees.len(),
            bound
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = small_tiers_reduce(4, 3);
    let sol = problem.solve().expect("solves");
    let mut group = c.benchmark_group("trees");
    group.sample_size(10);
    group.bench_function("extract_trees_tiers_4", |b| {
        b.iter(|| sol.extract_trees(&problem).expect("extraction"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
