//! Experiment E3 (validation) — threaded message-passing execution of the
//! optimal schedules.
//!
//! The analytical executor of `steady-sim` replays schedules against the
//! resource model; this bench goes one level lower and runs them with one
//! thread per node, real messages and the non-commutative concatenation
//! operator (`steady-runtime`), reporting how many operations complete and
//! whether every delivered payload is correct.  It is the closest analogue of
//! the MPI validation runs the paper's framework targets.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure2_problem, figure6_problem, print_header};
use steady_runtime::{run_reduce, run_scatter, RunConfig};

fn reproduce() {
    print_header("Validation E3 — threaded execution of the optimal schedules");
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>10}",
        "run", "periods", "injected", "completed", "errors"
    );

    let scatter = figure2_problem();
    let ssol = scatter.solve().expect("scatter LP solves");
    let sschedule = ssol.build_schedule(&scatter).expect("schedule");
    let config = RunConfig { production_periods: 30, drain_periods: 10 };
    let report = run_scatter(&scatter, &sschedule, config).expect("threaded scatter run");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>10}",
        "figure-2 scatter",
        report.periods,
        config.production_periods * report.operations_per_period,
        report.completed_operations,
        report.errors.len()
    );

    let reduce = figure6_problem();
    let rsol = reduce.solve().expect("reduce LP solves");
    let trees = rsol.extract_trees(&reduce).expect("trees");
    let config = RunConfig { production_periods: 25, drain_periods: 12 };
    let report = run_reduce(&reduce, &trees, config).expect("threaded reduce run");
    assert!(report.errors.is_empty(), "{:?}", report.errors);
    assert_eq!(report.correct_results, report.completed_operations);
    println!(
        "{:<30} {:>10} {:>12} {:>12} {:>10}",
        "figure-6 reduce",
        report.periods,
        config.production_periods * report.operations_per_period,
        report.completed_operations,
        report.errors.len()
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let reduce = figure6_problem();
    let rsol = reduce.solve().expect("solves");
    let trees = rsol.extract_trees(&reduce).expect("trees");
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.bench_function("threaded_reduce_figure6_10_periods", |b| {
        b.iter(|| {
            run_reduce(&reduce, &trees, RunConfig { production_periods: 10, drain_periods: 5 })
                .expect("run")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
