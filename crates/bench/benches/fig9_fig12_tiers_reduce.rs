//! Experiments F9–F12 — Figures 9–12: Series of Reduces on the Tiers
//! hierarchical platform (8 participants, message size 10, task cost 10).
//!
//! The exact link costs of the published Figure 9 are not recoverable, so the
//! instance uses the published hierarchy and node speeds with representative
//! link costs (documented substitution); the measured throughput and the
//! extracted reduction trees are the counterparts of the paper's TP = 2/9 and
//! of Figures 11–12.  Criterion timing is done on reduced-size Tiers
//! instances so that each sample stays affordable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use steady_bench::{figure9_problem, fmt_ratio, print_header, small_tiers_reduce};
use steady_core::trees::verify_tree_set;
use steady_rational::Ratio;

fn reproduce() {
    // The full 8-participant LP is large and heavily degenerate; solving it
    // exactly takes many minutes.  By default the reproduction uses the first
    // 6 participants (the target, logical index 4, is kept); set
    // STEADY_FULL_FIG9=1 to run the full 8-participant instance.
    let full = std::env::var("STEADY_FULL_FIG9").is_ok();
    let problem = if full {
        figure9_problem()
    } else {
        let mut inst = steady_platform::generators::figure9();
        inst.participants.truncate(6);
        steady_core::reduce::ReduceProblem::from_instance(inst)
            .expect("truncated figure9 instance is valid")
    };
    print_header("Figures 9/10 — Tiers platform reduce, LP solution");
    if !full {
        println!(
            "(default reproduction uses {} of the 8 participants for tractability; \
             set STEADY_FULL_FIG9=1 for the full instance)",
            problem.participants().len()
        );
    }
    println!(
        "platform: {} nodes, {} directed links, {} participants, target {}",
        problem.platform().num_nodes(),
        problem.platform().num_edges(),
        problem.participants().len(),
        problem.platform().node(problem.target()).name
    );
    let start = std::time::Instant::now();
    let solution = problem.solve().expect("figure9 LP solves");
    println!("LP solved in {:.2?}", start.elapsed());
    solution.verify(&problem).expect("solution verifies exactly");
    println!("paper:    TP = 2/9 on the original Figure-9 link costs");
    println!("measured: TP = {}", fmt_ratio(solution.throughput()));

    println!("\nper-participant occupations (fraction of a time-unit):");
    for &node in problem.participants() {
        println!(
            "  {:>7}: send {:>7.3}  recv {:>7.3}  compute {:>7.3}",
            problem.platform().node(node).name,
            solution.send_occupation(&problem, node).to_f64(),
            solution.recv_occupation(&problem, node).to_f64(),
            solution.compute_occupation(&problem, node).to_f64(),
        );
    }

    print_header("Figures 11/12 — extracted reduction trees");
    let start = std::time::Instant::now();
    let trees = solution.extract_trees(&problem).expect("trees extract");
    println!("extracted in {:.2?}", start.elapsed());
    verify_tree_set(&problem, &solution, &trees).expect("tree set is valid");
    println!("paper:    2 trees of throughput 1/9 each");
    println!("measured: {} tree(s)", trees.len());
    for (i, wt) in trees.iter().enumerate() {
        println!(
            "  tree {i}: weight {}, {} transfers, {} tasks",
            fmt_ratio(&wt.weight),
            wt.tree.num_transfers(),
            wt.tree.num_tasks()
        );
    }
    let total: Ratio = trees.iter().map(|t| t.weight.clone()).sum();
    println!("  total weight = {} (equals TP)", fmt_ratio(&total));
}

fn bench(c: &mut Criterion) {
    reproduce();
    let mut group = c.benchmark_group("fig9_tiers_reduce_scaling");
    group.sample_size(10);
    for participants in [3usize, 4, 5] {
        let problem = small_tiers_reduce(participants, 11);
        group.bench_with_input(
            BenchmarkId::new("solve_reduce_lp", participants),
            &problem,
            |b, p| b.iter(|| p.solve().expect("solves")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
