//! Experiment DRIFT — the cost of each rung of the drift-triage ladder.
//!
//! The reproduce section walks a bounded random-walk cost trajectory over a
//! fixed star and prints the triage split (how many steps re-priced the
//! cached basis in range, how many needed dual repair, how many resolved).
//! The criterion group then prices the three rungs individually against the
//! cold baseline: `in_range` re-pricing of the unchanged problem, dual
//! repair / warm resume of a drifted one, and the from-scratch solve the
//! ladder exists to avoid.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use steady_bench::print_header;
use steady_core::scatter::ScatterProblem;
use steady_drift::{solve_steady_triaged, DriftConfig, DriftModel, DriftStats};
use steady_platform::generators::heterogeneous_star;
use steady_platform::Platform;
use steady_rational::rat;

fn star() -> (Platform, steady_platform::NodeId, Vec<steady_platform::NodeId>) {
    heterogeneous_star(&[rat(1, 2), rat(1, 3), rat(1, 4), rat(1, 5), rat(1, 6)])
}

fn scatter_on(platform: Platform) -> ScatterProblem {
    let (_, center, leaves) = star();
    ScatterProblem::new(platform, center, leaves).expect("valid star scatter")
}

fn reproduce() {
    print_header("Drift triage — 60-step random walk on a 5-leaf star scatter");
    let (platform, _, _) = star();
    let mut model = DriftModel::new(platform, DriftConfig::default(), 42);
    let mut basis = None;
    let mut stats = DriftStats::default();
    for _ in 0..60 {
        let problem = scatter_on(model.step());
        let (_, report) = solve_steady_triaged(&problem, basis.as_ref()).expect("triaged solve");
        stats.record(&report);
        basis = report.basis;
    }
    println!(
        "steps {}: {} in-range, {} dual-repaired, {} resolved-warm, {} resolved-cold \
         ({:.1}% reused, {} total pivots)",
        stats.total(),
        stats.in_range,
        stats.dual_repair,
        stats.resolve_warm,
        stats.resolve_cold,
        stats.reuse_fraction() * 100.0,
        stats.pivots,
    );
}

fn bench(c: &mut Criterion) {
    reproduce();

    let (platform, _, _) = star();
    let base = scatter_on(platform.clone());
    let (_, report) = solve_steady_triaged(&base, None).expect("base solve");
    let basis = report.basis.expect("base solve yields a basis");

    // A drifted sibling: one walk step away from the base.
    let drifted = {
        let mut model = DriftModel::new(platform, DriftConfig::default(), 7);
        scatter_on(model.step())
    };

    let mut group = c.benchmark_group("drift_triage");
    group.bench_function("in_range_reprice", |b| {
        b.iter(|| solve_steady_triaged(black_box(&base), Some(&basis)).expect("in-range"))
    });
    group.bench_function("drifted_triage", |b| {
        b.iter(|| solve_steady_triaged(black_box(&drifted), Some(&basis)).expect("triaged"))
    });
    group.bench_function("drifted_cold", |b| {
        b.iter(|| solve_steady_triaged(black_box(&drifted), None).expect("cold"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
