//! Experiment F2 — Figure 2: the toy Series-of-Scatters instance.
//!
//! Prints the reproduced throughput and per-edge occupations (the paper's
//! Figure 2(b)/(c), scaled to a period of 12) and benchmarks the exact LP
//! solve for that instance.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure2_problem, fmt_ratio, print_header};
use steady_rational::{rat, Ratio};

fn reproduce() {
    let problem = figure2_problem();
    let solution = problem.solve().expect("figure2 LP solves");
    print_header("Figure 2 — Series of Scatters on the toy platform");
    println!("paper:    TP = 1/2 (6 messages every 12 time-units), period 12");
    println!("measured: TP = {}", fmt_ratio(solution.throughput()));
    println!("minimal period = {}", solution.period());

    println!("\nper-edge occupation s(Pi -> Pj), scaled to a period of 12 (paper Figure 2(c)):");
    let platform = problem.platform();
    for e in platform.edge_ids() {
        let edge = platform.edge(e);
        let occupation = solution.edge_occupation(&problem, e) * rat(12, 1);
        if occupation.is_positive() {
            println!(
                "  {} -> {} : {}",
                platform.node(edge.from).name,
                platform.node(edge.to).name,
                fmt_ratio(&occupation)
            );
        }
    }
    let total_source: Ratio = platform
        .out_edges(problem.source())
        .iter()
        .map(|&e| solution.edge_occupation(&problem, e))
        .sum();
    println!(
        "source outgoing-port occupation: {} (saturated at the optimum)",
        fmt_ratio(&total_source)
    );
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = figure2_problem();
    let mut group = c.benchmark_group("fig2_toy_scatter");
    group.sample_size(20);
    group.bench_function("solve_scatter_lp_exact", |b| b.iter(|| problem.solve().expect("solves")));
    group.bench_function("build_lp_only", |b| b.iter(|| problem.build_lp()));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
