//! Experiment E2 (extension) — Series of parallel prefixes (§6 future work):
//! achieved throughput of the shared-capacity prefix LP, bracketed by the
//! single-rank reduce upper bound, on representative small platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{fmt_ratio, print_header};
use steady_core::prefix::PrefixProblem;
use steady_platform::generators;
use steady_platform::topologies::hypercube_prefix_instance;
use steady_rational::rat;

fn instances() -> Vec<(String, PrefixProblem)> {
    let mut out = Vec::new();

    let (chain, nodes) = generators::chain(3, rat(1, 1));
    out.push((
        "chain-3 (unit links)".to_string(),
        PrefixProblem::new(chain, nodes, rat(1, 1), rat(1, 1)).expect("valid"),
    ));

    let (clique, cnodes) = generators::clique(3, rat(1, 1));
    out.push((
        "clique-3 (unit links)".to_string(),
        PrefixProblem::new(clique, cnodes, rat(1, 1), rat(1, 1)).expect("valid"),
    ));

    let f6 = generators::figure6();
    out.push((
        "figure-6 platform".to_string(),
        PrefixProblem::new(f6.platform, f6.participants, f6.message_size, f6.task_cost)
            .expect("valid"),
    ));

    out.push((
        "hypercube d=2".to_string(),
        PrefixProblem::from_instance(hypercube_prefix_instance(2, rat(1, 1))).expect("valid"),
    ));

    out
}

fn reproduce() {
    print_header("Extension E2 — Series of parallel prefixes");
    println!("{:<28} {:>18} {:>18} {:>8}", "platform", "achieved TP", "upper bound", "gap");
    for (name, problem) in instances() {
        let sol = problem.solve().expect("prefix LP solves");
        sol.verify(&problem).expect("solution verifies");
        let upper = problem.upper_bound().expect("upper bound");
        assert!(*sol.throughput() <= upper);
        let schedule = sol.build_schedule(&problem).expect("schedule");
        schedule.validate(problem.platform()).expect("one-port feasible");
        let gap = if upper.is_positive() {
            format!("{:.3}", (sol.throughput() / &upper).to_f64())
        } else {
            "-".to_string()
        };
        println!(
            "{:<28} {:>18} {:>18} {:>8}",
            name,
            fmt_ratio(sol.throughput()),
            fmt_ratio(&upper),
            gap
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let (_, problem) = instances().into_iter().nth(1).expect("clique instance");
    let mut group = c.benchmark_group("prefix");
    group.sample_size(10);
    group.bench_function("solve_prefix_clique3", |b| b.iter(|| problem.solve().expect("solves")));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
