//! Experiment P1 — Proposition 1: asymptotic optimality of the steady-state
//! schedule.  Prints the series steady(G,K)/opt(G,K) for growing horizons K
//! (scatter on Figure 2, reduce on Figure 6) and benchmarks the executor.

use criterion::{criterion_group, criterion_main, Criterion};
use steady_bench::{figure2_problem, figure6_problem, print_header};
use steady_core::bounds::SteadyStateBounds;
use steady_rational::rat;
use steady_sim::{execute_reduce_schedule, execute_scatter_schedule};

fn reproduce() {
    print_header("Proposition 1 — steady(G,K) / opt(G,K) for growing K (scatter, Figure 2)");
    let problem = figure2_problem();
    let solution = problem.solve().expect("solves");
    let schedule = solution.build_schedule(&problem).expect("schedule");
    let bounds = SteadyStateBounds::new(
        solution.throughput().clone(),
        schedule.period.clone(),
        problem.platform().max_hop_diameter(),
    );
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>12}",
        "K", "simulated", "upper bound", "sim eff", "analytic lb"
    );
    for k in [48i64, 120, 480, 1200, 4800, 12000] {
        let report =
            execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(k, 1));
        println!(
            "{:>10} {:>14} {:>14} {:>12.4} {:>12.4}",
            k,
            report.completed_operations.to_f64(),
            report.upper_bound.to_f64(),
            report.efficiency().to_f64(),
            bounds.efficiency(&rat(k, 1)).to_f64(),
        );
    }

    print_header("Proposition 1 — steady(G,K) / opt(G,K) for growing K (reduce, Figure 6)");
    let problem = figure6_problem();
    let solution = problem.solve().expect("solves");
    let schedule = solution.build_schedule(&problem).expect("schedule");
    println!("{:>10} {:>14} {:>14} {:>12}", "K", "simulated", "upper bound", "sim eff");
    for k in [12i64, 60, 300, 1500, 6000] {
        let report =
            execute_reduce_schedule(&problem, &schedule, solution.throughput(), &rat(k, 1));
        println!(
            "{:>10} {:>14} {:>14} {:>12.4}",
            k,
            report.completed_operations.to_f64(),
            report.upper_bound.to_f64(),
            report.efficiency().to_f64(),
        );
    }
}

fn bench(c: &mut Criterion) {
    reproduce();
    let problem = figure2_problem();
    let solution = problem.solve().expect("solves");
    let schedule = solution.build_schedule(&problem).expect("schedule");
    let mut group = c.benchmark_group("prop1_executor");
    group.sample_size(10);
    group.bench_function("execute_scatter_1200_units", |b| {
        b.iter(|| {
            execute_scatter_schedule(&problem, &schedule, solution.throughput(), &rat(1200, 1))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
