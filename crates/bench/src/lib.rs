//! Shared helpers for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation has a dedicated Criterion
//! bench target under `benches/`; each target prints the reproduced rows or
//! series (so that `cargo bench` output documents the reproduction) and then
//! measures the relevant computational kernel.  The helpers here format exact
//! rationals for those tables and build the workload instances shared by
//! several benches.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use steady_core::reduce::ReduceProblem;
use steady_core::scatter::ScatterProblem;
use steady_platform::generators::{self, TiersConfig};
use steady_platform::NodeId;
use steady_rational::Ratio;

/// Formats an exact rational together with its decimal approximation.
pub fn fmt_ratio(r: &Ratio) -> String {
    if r.is_integer() {
        format!("{r}")
    } else {
        format!("{r} (~{:.4})", r.to_f64())
    }
}

/// Prints a table header followed by an underline of the same width.
pub fn print_header(title: &str) {
    println!("\n=== {title} ===");
}

/// The Figure 2 scatter problem.
pub fn figure2_problem() -> ScatterProblem {
    ScatterProblem::from_instance(generators::figure2()).expect("figure2 instance is valid")
}

/// The Figure 6 reduce problem.
pub fn figure6_problem() -> ReduceProblem {
    ReduceProblem::from_instance(generators::figure6()).expect("figure6 instance is valid")
}

/// The Figure 9-like Tiers reduce problem (full 8-participant instance).
pub fn figure9_problem() -> ReduceProblem {
    ReduceProblem::from_instance(generators::figure9()).expect("figure9 instance is valid")
}

/// A scaled-down Tiers reduce instance (for timing kernels inside Criterion
/// where the full Figure 9 LP would be too slow to sample repeatedly).
pub fn small_tiers_reduce(participants: usize, seed: u64) -> ReduceProblem {
    let config = TiersConfig {
        wan_routers: 2,
        man_per_wan: 1,
        lan_per_man: participants.div_ceil(2),
        ..TiersConfig::default()
    };
    let mut instance = generators::tiers_reduce_instance(&config, seed);
    instance.participants.truncate(participants.max(2));
    if !instance.participants.contains(&instance.target) {
        instance.target = instance.participants[0];
    }
    ReduceProblem::from_instance(instance).expect("generated instance is valid")
}

/// A scatter problem on a random Tiers platform with the given seed.
pub fn tiers_scatter(seed: u64) -> ScatterProblem {
    let instance = generators::tiers_scatter_instance(&TiersConfig::default(), seed);
    ScatterProblem::from_instance(instance).expect("generated instance is valid")
}

/// Scatter problems of growing size on star platforms (used by the LP-solver
/// ablation).
pub fn star_scatter(leaves: usize) -> ScatterProblem {
    let (platform, center, leaf_ids) = generators::star(leaves, steady_rational::rat(1, 2));
    ScatterProblem::new(platform, center, leaf_ids).expect("star scatter is valid")
}

/// Scatter problem on a 2-D grid, the head node in a corner.
pub fn grid_scatter(rows: usize, cols: usize) -> ScatterProblem {
    let (platform, ids) = generators::grid(rows, cols, steady_rational::rat(1, 1));
    let source = ids[0][0];
    let targets: Vec<NodeId> = platform.node_ids().filter(|&n| n != source).collect();
    ScatterProblem::new(platform, source, targets).expect("grid scatter is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use steady_rational::rat;

    #[test]
    fn helpers_build_valid_problems() {
        assert_eq!(figure2_problem().targets().len(), 2);
        assert_eq!(figure6_problem().participants().len(), 3);
        assert_eq!(figure9_problem().participants().len(), 8);
        assert!(small_tiers_reduce(4, 3).participants().len() >= 2);
        assert!(tiers_scatter(1).targets().len() >= 2);
        assert_eq!(star_scatter(5).targets().len(), 5);
        assert_eq!(grid_scatter(2, 3).targets().len(), 5);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(&rat(3, 1)), "3");
        assert!(fmt_ratio(&rat(1, 2)).starts_with("1/2 (~0.5000"));
    }
}
