//! Property tests for the canonical fingerprint.
//!
//! The cache key contract: applying any node permutation to a random
//! connected platform (and renaming the query's roles accordingly) must not
//! change the fingerprint — and the permuted query must be served from the
//! cache with the exact same throughput — while perturbing a single edge
//! cost must change the fingerprint.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_platform::generators::{random_connected, RandomConfig};
use steady_platform::{EdgeId, NodeId, Platform};
use steady_rational::{rat, Ratio};
use steady_service::{
    fingerprint, permuted_platform, Collective, Query, ServedVia, Service, ServiceConfig,
};

/// A random connected 6-node platform, deterministic in `seed`.
fn platform_for(seed: u64) -> Platform {
    let config = RandomConfig { nodes: 6, ..RandomConfig::default() };
    random_connected(&config, &mut StdRng::seed_from_u64(seed))
}

/// A random permutation of `0..n`, deterministic in `seed` (Fisher–Yates).
fn permutation_for(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

/// A scatter query on `platform` from node 0 to nodes 1 and 2.
fn scatter_query(platform: Platform) -> Query {
    Query {
        platform,
        collective: Collective::Scatter { source: NodeId(0), targets: vec![NodeId(1), NodeId(2)] },
    }
}

/// The same query with every node id mapped through `perm`.
fn permuted_query(query: &Query, perm: &[usize]) -> Query {
    let map = |id: &NodeId| NodeId(perm[id.index()]);
    let map_all = |ids: &[NodeId]| ids.iter().map(map).collect::<Vec<_>>();
    let collective = match &query.collective {
        Collective::Scatter { source, targets } => {
            Collective::Scatter { source: map(source), targets: map_all(targets) }
        }
        Collective::Gather { sources, sink } => {
            Collective::Gather { sources: map_all(sources), sink: map(sink) }
        }
        Collective::Gossip { sources, targets } => {
            Collective::Gossip { sources: map_all(sources), targets: map_all(targets) }
        }
        Collective::Reduce { participants, target, size, task_cost } => Collective::Reduce {
            participants: map_all(participants),
            target: map(target),
            size: size.clone(),
            task_cost: task_cost.clone(),
        },
        Collective::Prefix { participants, size, task_cost } => Collective::Prefix {
            participants: map_all(participants),
            size: size.clone(),
            task_cost: task_cost.clone(),
        },
    };
    Query { platform: permuted_platform(&query.platform, perm), collective }
}

/// Rebuilds `platform` with the cost of edge `edge` replaced by `cost`
/// (the platform's fields are private, so perturbation goes through a copy).
fn with_edge_cost(platform: &Platform, edge: EdgeId, cost: Ratio) -> Platform {
    let mut out = Platform::new();
    for id in platform.node_ids() {
        let node = platform.node(id);
        out.add_node(node.name.clone(), node.speed.clone());
    }
    for id in platform.edge_ids() {
        let e = platform.edge(id);
        let c = if id == edge { cost.clone() } else { e.cost.clone() };
        out.add_edge(e.from, e.to, c);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn permuting_nodes_preserves_fingerprint_and_cached_throughput(
        seed in 0u64..10_000,
        perm_seed in 0u64..10_000,
    ) {
        let query = scatter_query(platform_for(seed));
        let perm = permutation_for(query.platform.num_nodes(), perm_seed);
        let permuted = permuted_query(&query, &perm);
        prop_assert_eq!(fingerprint(&query), fingerprint(&permuted));

        // The isomorphic query must be answered from the cache, with the
        // exact same rational throughput the cold solve produced.
        let service = Service::start(ServiceConfig { workers: 2, ..ServiceConfig::default() });
        let cold = service.query(query).expect("cold solve succeeds");
        prop_assert_eq!(cold.via, ServedVia::Solve);
        let cached = service.query(permuted).expect("isomorphic query succeeds");
        prop_assert_eq!(cached.via, ServedVia::Cache);
        prop_assert_eq!(&cached.answer.throughput, &cold.answer.throughput);
        prop_assert_eq!(service.stats().solves, 1);
    }

    #[test]
    fn perturbing_one_edge_cost_changes_fingerprint(
        seed in 0u64..10_000,
        edge_index in 0usize..64,
    ) {
        let query = scatter_query(platform_for(seed));
        let edge = EdgeId(edge_index % query.platform.num_edges());
        let old_cost = query.platform.edge(edge).cost.clone();
        let perturbed = Query {
            platform: with_edge_cost(&query.platform, edge, old_cost + rat(1, 1)),
            collective: query.collective.clone(),
        };
        prop_assert_ne!(fingerprint(&query), fingerprint(&perturbed));
    }
}
