//! Deterministic concurrent stress test for the sharded LRU cache.
//!
//! Eight OS threads hammer a deliberately tiny cache (capacity 8 over 4
//! shards, so every shard holds at most two entries and eviction fires
//! constantly) with a seeded mix of inserts, TTL lookups and peeks.  The
//! interleaving is whatever the scheduler produces, but the *accounting*
//! must come out exact regardless of it:
//!
//! - `hits + misses` equals the number of counted lookups issued,
//! - `insertions - evictions` equals the number of entries left,
//! - every surviving entry still carries the value its key determines,
//! - the global capacity bound is never exceeded.
//!
//! This complements the loom suite (`tests/loom_models.rs`): loom proves
//! the small protocols exhaustively on modeled primitives; this test runs
//! the real parking_lot-backed cache under genuine parallelism.

use std::thread;

use steady_service::cache::{CacheConfig, Lookup, SolutionCache};

const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 4000;
const KEY_SPACE: u64 = 32;
const CAPACITY: usize = 8;
/// Value carried by key `k` — re-inserts always store the same value, so a
/// surviving entry can be checked against its key alone.
fn value_of(key: u64) -> u64 {
    key ^ 0xabcd_ef01
}

/// A tiny splitmix-style generator so each thread's op sequence is a pure
/// function of its seed — no global RNG state, no `rand` dependency.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn accounting_stays_exact_under_concurrent_stress() {
    let cache: SolutionCache<u64> =
        SolutionCache::new(&CacheConfig { capacity: CAPACITY, shards: 4 });
    cache.mark_class_seeded(1);

    // Per-thread count of lookups that touch the hit/miss counters
    // (`lookup` and `get` do; `peek`/`peek_fresh` must not).
    let counted: Vec<u64> = thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = &cache;
                scope.spawn(move || {
                    let mut state = 0x5eed ^ (t << 17);
                    let mut counted = 0u64;
                    for _ in 0..OPS_PER_THREAD {
                        let roll = next(&mut state);
                        let key = roll % KEY_SPACE;
                        let epoch = (roll >> 8) % 4;
                        match (roll >> 16) % 5 {
                            0 => {
                                // Half the keys belong to the seeded class 1,
                                // exercising the drift-aware victim choice.
                                let class = if key.is_multiple_of(2) { Some(1) } else { Some(2) };
                                cache.insert_at(key, value_of(key), epoch, class);
                            }
                            1 => {
                                counted += 1;
                                match cache.lookup(key, epoch, Some(1)) {
                                    Lookup::Hit(v) | Lookup::Stale(v) => {
                                        assert_eq!(v, value_of(key));
                                    }
                                    Lookup::Miss => {}
                                }
                            }
                            2 => {
                                counted += 1;
                                if let Some(v) = cache.get(key) {
                                    assert_eq!(v, value_of(key));
                                }
                            }
                            3 => {
                                if let Some(v) = cache.peek(key) {
                                    assert_eq!(v, value_of(key));
                                }
                            }
                            _ => {
                                if let Some(v) = cache.peek_fresh(key, epoch, Some(2)) {
                                    assert_eq!(v, value_of(key));
                                }
                            }
                        }
                        assert!(
                            cache.len() <= CAPACITY,
                            "capacity bound violated: {} > {CAPACITY}",
                            cache.len()
                        );
                    }
                    counted
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("stress thread panicked")).collect()
    });

    let stats = cache.stats();
    let lookups: u64 = counted.iter().sum();
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every counted lookup is exactly one hit or one miss"
    );
    assert!(stats.stale <= stats.misses, "stale lookups are a subset of misses");
    assert!(
        stats.preferred_evictions <= stats.evictions,
        "preferred evictions are a subset of evictions"
    );
    assert_eq!(
        stats.insertions - stats.evictions,
        cache.len() as u64,
        "insertion/eviction counters must reconcile exactly with the content"
    );
    assert!(cache.len() <= CAPACITY);
    assert!(stats.evictions > 0, "the tiny capacity must actually force evictions");

    // Content check: every survivor still carries its key's value.
    for (key, value) in cache.entries() {
        assert_eq!(value, value_of(key), "entry under key {key} was corrupted");
    }
}
