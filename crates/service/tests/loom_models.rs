//! Exhaustive interleaving checks for the serving core's seven riskiest
//! protocols, run under the deterministic model checker (`shims/loom`).
//!
//! Build and run with:
//!
//! ```text
//! RUSTFLAGS="--cfg steady_loom" cargo test -p steady-service --test loom_models
//! ```
//!
//! Under that cfg the `steady_service::sync` facade (and `steady_sched`'s
//! own `sync` facade, same switch) resolves every mutex, rwlock, atomic and
//! channel to the modeled primitives, and each test below
//! explores **every** thread interleaving reachable within the preemption
//! bound — not a sampled handful.  Each test prints how many schedules it
//! explored and asserts the count is large enough to be meaningful.
#![cfg(steady_loom)]

use std::sync::Arc;

use loom::thread;
use loom::Builder;

use steady_service::cache::{CacheConfig, Lookup, SolutionCache};
use steady_service::flight::{Flight, SingleFlight};
use steady_service::gate::{Admission, ColdGate};
use steady_service::ledger::PrefetchLedger;
use steady_service::obs::TraceRing;
use steady_service::recorder::{SolveFlightRecorder, SolveRecord};
use steady_service::sync::atomic::{AtomicU64, Ordering};
use steady_service::sync::channel;
use steady_service::sync::Mutex;
use steady_service::QueryTrace;

const KEY: u64 = 7;

/// Runs `f` under every schedule within `builder`'s bounds, prints the
/// exploration size, and asserts the model was big enough to mean something.
fn explore(name: &str, builder: Builder, f: impl Fn() + Send + Sync + 'static) {
    let report = builder.check(f);
    println!(
        "{name}: explored {} schedules (longest: {} decisions)",
        report.schedules, report.max_decisions
    );
    assert!(
        report.schedules > 100,
        "{name}: only {} schedules explored — the model is too small to be meaningful",
        report.schedules
    );
}

/// The serve-side single-flight protocol, as the engine runs it: a locked
/// re-check, then park-or-lead; the leader publishes to the "cache" *before*
/// releasing the flight and fans the answer out to every parked waiter.
fn serve_like(
    flight: &SingleFlight<channel::Sender<u64>>,
    cache: &Mutex<Option<u64>>,
    solves: &AtomicU64,
    reply: channel::Sender<u64>,
) {
    match flight.join_or_lead(KEY, reply, || *cache.lock(), |reply| reply) {
        Flight::Ready(answer, reply) => {
            let _ = reply.send(answer);
        }
        Flight::Parked => {}
        Flight::Leader(reply) => {
            // relaxed: test-only tally, asserted after every thread joined.
            solves.fetch_add(1, Ordering::Relaxed);
            *cache.lock() = Some(42);
            let waiters = flight.complete(KEY);
            let _ = reply.send(42);
            for waiter in waiters {
                let _ = waiter.send(42);
            }
        }
    }
}

/// Protocol 1 — single-flight leader/waiter races: across every
/// interleaving of three identical queries, exactly one solve runs and
/// every caller receives the answer.  No lost wakeup, no double-solve.
#[test]
fn single_flight_never_loses_a_waiter_or_solves_twice() {
    explore("single_flight", Builder::default(), || {
        let flight = Arc::new(SingleFlight::<channel::Sender<u64>>::new());
        let cache = Arc::new(Mutex::new(None::<u64>));
        let solves = Arc::new(AtomicU64::new(0));
        let mut replies = Vec::new();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (tx, rx) = channel::unbounded();
            replies.push(rx);
            let flight = Arc::clone(&flight);
            let cache = Arc::clone(&cache);
            let solves = Arc::clone(&solves);
            handles.push(thread::spawn(move || serve_like(&flight, &cache, &solves, tx)));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(solves.load(Ordering::Relaxed), 1, "double-solve (or none at all)");
        for reply in replies {
            assert_eq!(reply.try_recv().ok(), Some(42), "a caller lost its wakeup");
        }
        assert!(!flight.contains(KEY), "the flight was never completed");
    });
}

/// Protocol 2 — ColdGate admission: with one slot and a two-deep queue,
/// every one of three competing jobs is either executed (directly or by
/// slot takeover) or explicitly shed — never stranded in the queue — and
/// whenever a job is parked, some slot-holder exists to pick it up.
#[test]
fn cold_gate_strands_no_job() {
    explore("cold_gate", Builder::default(), || {
        let gate = Arc::new(ColdGate::<u64>::new(1, 2));
        let executed = Arc::new(AtomicU64::new(0));
        let shed = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let gate = Arc::clone(&gate);
                let executed = Arc::clone(&executed);
                let shed = Arc::clone(&shed);
                thread::spawn(move || match gate.admit(i) {
                    Admission::Admitted(_) => {
                        // relaxed: test-only tallies, asserted after join.
                        executed.fetch_add(1, Ordering::Relaxed);
                        while gate.release_or_takeover().is_some() {
                            executed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Admission::Queued => {
                        let (running, pending) = gate.load();
                        assert!(
                            pending == 0 || running > 0,
                            "stranded: {pending} pending with no slot-holder"
                        );
                    }
                    Admission::Shed(_) => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let done = executed.load(Ordering::Relaxed) + shed.load(Ordering::Relaxed);
        assert_eq!(done, 3, "a job was neither executed nor shed");
        assert_eq!(gate.load(), (0, 0), "the gate leaked a slot or a pending job");
    });
}

/// Protocol 3 — TTL epoch advance vs insert races: an entry the epoch
/// clock expires underneath a concurrent revalidation is *revalidated* or
/// *served stale*, but never observed as [`Lookup::Miss`] — TTL never makes
/// data vanish.
#[test]
fn ttl_expiry_never_loses_an_entry() {
    explore("ttl_epoch", Builder::default(), || {
        let cache = Arc::new(SolutionCache::<u64>::new(&CacheConfig { capacity: 4, shards: 1 }));
        let epoch = Arc::new(AtomicU64::new(0));
        let ttl = Some(1);
        cache.insert_at(KEY, 42, 0, None);

        let clock = {
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                // relaxed: mirrors `Service::advance_epoch` — the epoch is a
                // lag-tolerant stamp, the model asserts on values not order.
                epoch.fetch_add(1, Ordering::Relaxed);
                epoch.fetch_add(1, Ordering::Relaxed);
            })
        };
        let revalidator = {
            let cache = Arc::clone(&cache);
            let epoch = Arc::clone(&epoch);
            thread::spawn(move || {
                // relaxed: see above — any recent value of the clock is valid.
                let now = epoch.load(Ordering::Relaxed);
                match cache.lookup(KEY, now, ttl) {
                    Lookup::Hit(v) => assert_eq!(v, 42),
                    Lookup::Stale(v) => {
                        assert_eq!(v, 42);
                        cache.insert_at(KEY, 43, epoch.load(Ordering::Relaxed), None);
                    }
                    Lookup::Miss => panic!("the expiring entry vanished mid-revalidation"),
                }
            })
        };
        clock.join().unwrap();
        revalidator.join().unwrap();

        // relaxed: final read after both joins; fully ordered by then.
        let now = epoch.load(Ordering::Relaxed);
        match cache.lookup(KEY, now, ttl) {
            Lookup::Hit(v) | Lookup::Stale(v) => {
                assert!(v == 42 || v == 43, "unexpected value {v}")
            }
            Lookup::Miss => panic!("the entry vanished"),
        }
    });
}

/// Protocol 4 — prefetch-hit claiming: however a record races any number of
/// claimants, a recorded key is claimed **at most once**, and the ledger's
/// accounting (claims + outstanding) stays exact.
#[test]
fn prefetch_claim_is_at_most_once() {
    explore("prefetch_claim", Builder::default(), || {
        let ledger = Arc::new(PrefetchLedger::new());
        let claims = Arc::new(AtomicU64::new(0));
        let recorder = {
            let ledger = Arc::clone(&ledger);
            thread::spawn(move || {
                ledger.record(KEY);
            })
        };
        let claimants: Vec<_> = (0..2)
            .map(|_| {
                let ledger = Arc::clone(&ledger);
                let claims = Arc::clone(&claims);
                thread::spawn(move || {
                    if ledger.claim(KEY) {
                        // relaxed: test-only tally, asserted after join.
                        claims.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        recorder.join().unwrap();
        for claimant in claimants {
            claimant.join().unwrap();
        }
        let claimed = claims.load(Ordering::Relaxed);
        assert!(claimed <= 1, "the key was claimed {claimed} times");
        assert_eq!(
            claimed as usize + ledger.outstanding(),
            1,
            "claim accounting drifted from the recorded key"
        );
    });
}

/// Protocol 5 — the trace ring's lossy-but-accounted contract: across every
/// interleaving of two writers (4 pushes into a capacity-2 ring, forcing
/// wrap-around) racing a concurrent collector drain, **every** pushed trace
/// is either drained or counted dropped — `pushed == drained + buffered +
/// dropped` exactly — no trace is lost *and* uncounted, and nothing is
/// duplicated.
#[test]
fn trace_ring_loses_nothing_uncounted() {
    explore("trace_ring", Builder::default(), || {
        let ring = Arc::new(TraceRing::new(2));
        let drained = Arc::new(Mutex::new(Vec::new()));

        let writers: Vec<_> = (0..2u64)
            .map(|w| {
                let ring = Arc::clone(&ring);
                thread::spawn(move || {
                    for i in 0..2u64 {
                        ring.push(QueryTrace::begin(w * 2 + i, 0));
                    }
                })
            })
            .collect();
        let collector = {
            let ring = Arc::clone(&ring);
            let drained = Arc::clone(&drained);
            thread::spawn(move || {
                let batch = ring.drain();
                drained.lock().extend(batch);
            })
        };
        for writer in writers {
            writer.join().unwrap();
        }
        collector.join().unwrap();

        let mut got = drained.lock().clone();
        got.extend(ring.drain());
        let mut ids: Vec<u64> = got.iter().map(|t| t.id).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "a trace was duplicated: {ids:?}");
        assert!(ids.iter().all(|&id| id < 4), "unknown trace id in {ids:?}");
        assert_eq!(
            ids.len() as u64 + ring.dropped(),
            4,
            "a trace was lost without being counted dropped ({} drained, {} dropped)",
            ids.len(),
            ring.dropped()
        );
        assert!(ring.is_empty(), "the final drain left traces buffered");
    });
}

/// Protocol 6 — the solver flight recorder's lossy-but-accounted contract,
/// the same shape as protocol 5 but over [`SolveRecord`]s: two recording
/// solvers (4 pushes into a capacity-2 recorder, forcing eviction) race a
/// concurrent drainer.  Across every interleaving no record is duplicated
/// and `pushed == drained + buffered + dropped` exactly — the recorder's
/// rank-55 leaf lock never loses a record without counting it.
#[test]
fn solve_recorder_loses_nothing_uncounted() {
    explore("solve_recorder", Builder::default(), || {
        let recorder = Arc::new(SolveFlightRecorder::new(2, true));
        let drained = Arc::new(Mutex::new(Vec::new()));

        let record = |fingerprint: u64| SolveRecord {
            fingerprint,
            collective: "scatter",
            triage: "resolve-cold",
            reason: "slow",
            solve_nanos: 10,
            health: steady_lp::SolveHealth::default(),
            timeline: Vec::new(),
            truncated: 0,
        };
        let solvers: Vec<_> = (0..2u64)
            .map(|w| {
                let recorder = Arc::clone(&recorder);
                thread::spawn(move || {
                    for i in 0..2u64 {
                        recorder.push(record(w * 2 + i));
                    }
                })
            })
            .collect();
        let drainer = {
            let recorder = Arc::clone(&recorder);
            let drained = Arc::clone(&drained);
            thread::spawn(move || {
                let batch = recorder.drain();
                drained.lock().extend(batch);
            })
        };
        for solver in solvers {
            solver.join().unwrap();
        }
        drainer.join().unwrap();

        let mut got = drained.lock().clone();
        got.extend(recorder.drain());
        let mut fps: Vec<u64> = got.iter().map(|r| r.fingerprint).collect();
        fps.sort_unstable();
        let before = fps.len();
        fps.dedup();
        assert_eq!(fps.len(), before, "a record was duplicated: {fps:?}");
        assert!(fps.iter().all(|&fp| fp < 4), "unknown record in {fps:?}");
        assert_eq!(recorder.pushed(), 4, "every push must be tallied");
        assert_eq!(
            fps.len() as u64 + recorder.dropped(),
            recorder.pushed(),
            "a record was lost without being counted dropped ({} drained, {} dropped)",
            fps.len(),
            recorder.dropped()
        );
        assert!(recorder.is_empty(), "the final drain left records buffered");
    });
}

/// Protocol 7 — the scheduler's work-stealing deque + priority-lane pop
/// protocol (`steady_sched`): a worker that batch-pops the demand lane into
/// its private deque races a sibling stealing from that deque, both race
/// the shared injector, and a canceller races them all for the queued
/// prefetch task.  Across every interleaving each demand task runs exactly
/// once (popped, drained from the deque, or stolen — never duplicated,
/// never lost), the prefetch task either runs exactly once or is cancelled
/// without running (never both), and the background idle latch always
/// drains back to zero.
#[test]
fn lane_steal_runs_each_task_exactly_once() {
    use steady_sched::deque::WorkDeque;
    use steady_sched::lane::LaneQueues;
    use steady_sched::{Lane, LaneTask, Popped};

    explore("lane_steal", Builder::default(), || {
        let lanes: Arc<LaneQueues<u64>> = Arc::new(LaneQueues::new());
        let deque: Arc<WorkDeque<LaneTask<u64>>> = Arc::new(WorkDeque::new());
        let ran = Arc::new(Mutex::new(Vec::new()));

        // Retires a pop verdict the way both pools do: live tasks "run"
        // (recorded), terminal background verdicts retire the idle latch.
        fn retire(lanes: &LaneQueues<u64>, ran: &Mutex<Vec<u64>>, verdict: Popped<u64>) {
            match verdict {
                Popped::Task(task) => {
                    ran.lock().push(task.payload);
                    if task.lane.is_background() {
                        lanes.idle_latch().finish_one();
                    }
                }
                Popped::TimedOut(task) | Popped::Cancelled(task) => {
                    if task.lane.is_background() {
                        lanes.idle_latch().finish_one();
                    }
                }
                Popped::Empty | Popped::Closed => {}
            }
        }

        lanes.push(LaneTask::new(1, Lane::Demand, 0));
        lanes.push(LaneTask::new(2, Lane::Demand, 0));
        lanes.push(LaneTask::new(10, Lane::Prefetch, 0));

        let owner = {
            let lanes = Arc::clone(&lanes);
            let deque = Arc::clone(&deque);
            let ran = Arc::clone(&ran);
            thread::spawn(move || {
                // Batch-pop: take one demand task plus a stealable overflow
                // batch into the private deque, then drain what's left of it.
                let (popped, batch) = lanes.pop_with_overflow(0, 2);
                deque.push_many(batch);
                retire(&lanes, &ran, popped);
                while let Some(task) = deque.pop() {
                    retire(&lanes, &ran, lanes.vet(task, 0));
                }
            })
        };
        let thief = {
            let lanes = Arc::clone(&lanes);
            let deque = Arc::clone(&deque);
            let ran = Arc::clone(&ran);
            thread::spawn(move || {
                // Steal the oldest batched task, then fall back to the
                // injector — the work-stealing worker's idle path.
                if let Some(task) = deque.steal() {
                    retire(&lanes, &ran, lanes.vet(task, 0));
                }
                let verdict = lanes.pop(0);
                retire(&lanes, &ran, verdict);
            })
        };
        let canceller = {
            let lanes = Arc::clone(&lanes);
            thread::spawn(move || lanes.cancel_lane(Lane::Prefetch))
        };
        owner.join().unwrap();
        thief.join().unwrap();
        let cancelled = canceller.join().unwrap();

        // Main drains whatever the racing workers left behind, exactly like
        // a worker observing the close.
        while let Some(task) = deque.pop() {
            retire(&lanes, &ran, lanes.vet(task, 0));
        }
        loop {
            match lanes.pop(0) {
                Popped::Empty | Popped::Closed => break,
                verdict => retire(&lanes, &ran, verdict),
            }
        }

        let mut ran = ran.lock().clone();
        ran.sort_unstable();
        let demand: Vec<u64> = ran.iter().copied().filter(|&p| p < 10).collect();
        assert_eq!(demand, vec![1, 2], "demand tasks must each run exactly once: {ran:?}");
        let prefetch_runs = ran.iter().filter(|&&p| p == 10).count();
        assert!(prefetch_runs <= 1, "the prefetch task ran twice");
        assert_eq!(
            prefetch_runs + cancelled,
            1,
            "the prefetch task must run once XOR be cancelled ({prefetch_runs} runs, \
             {cancelled} cancelled)"
        );
        assert_eq!(lanes.idle_latch().backlog(), 0, "the idle latch never drained");
        assert_eq!(lanes.depths(), [0, 0, 0], "a task was stranded in a lane");
    });
}
