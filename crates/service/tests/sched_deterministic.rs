//! Deterministic scheduler-lane semantics under a [`ManualClock`]: demand
//! deadlines fire exactly when the (frozen, hand-advanced) clock says so,
//! and cancelled prefetch tasks never publish to the cache.

use std::sync::Arc;
use std::time::Duration;

use steady_service::obs::ManualClock;
use steady_service::{query_mix, SchedulerKind, ServeError, ServedVia, Service, ServiceConfig};

fn start(
    kind: SchedulerKind,
    clock: &Arc<ManualClock>,
    demand_deadline: Option<Duration>,
) -> Service {
    Service::start_with_clock(
        ServiceConfig { workers: 1, scheduler: kind, demand_deadline, ..ServiceConfig::default() },
        Arc::clone(clock) as Arc<dyn steady_service::Clock>,
    )
}

/// With a zero demand deadline and a frozen manual clock, every demand
/// task's deadline has already passed at vetting time (`now == enqueue ==
/// deadline`), so the lane sheds it deterministically: the caller sees
/// [`ServeError::Shed`], the timeout counter ticks, and no solve runs.
#[test]
fn demand_lane_timeouts_fire_on_the_manual_clock() {
    for kind in [SchedulerKind::ThreadPerWorker, SchedulerKind::WorkStealing] {
        let clock = Arc::new(ManualClock::new());
        let service = start(kind, &clock, Some(Duration::ZERO));
        let mix = query_mix(4, 7);
        for query in &mix[..3] {
            match service.query(query.clone()) {
                Err(ServeError::Shed) => {}
                other => panic!("{kind:?}: expected a deadline shed, got {other:?}"),
            }
        }
        let stats = service.stats();
        assert_eq!(stats.demand_timeouts, 3, "{kind:?}: every demand task must time out");
        assert_eq!(stats.solves, 0, "{kind:?}: a timed-out task must never solve");
    }
}

/// With a generous deadline the same frozen clock never sheds: queries are
/// served normally, the timeout counter stays zero, and the demand lane's
/// wait histogram records the (zero-width) enqueue-to-pickup spans.
#[test]
fn unexpired_deadlines_never_shed() {
    let clock = Arc::new(ManualClock::new());
    let service = start(SchedulerKind::WorkStealing, &clock, Some(Duration::from_secs(3600)));
    let mix = query_mix(4, 7);
    let first = service.query(mix[0].clone()).expect("an unexpired query must be served");
    assert_eq!(first.via, ServedVia::Solve);
    // Advancing the clock between submissions must not expire anything:
    // deadlines are relative to each task's own enqueue stamp.
    clock.advance(Duration::from_secs(7200).as_nanos() as u64);
    let again = service.query(mix[0].clone()).expect("served after the clock advanced");
    assert_eq!(again.via, ServedVia::Cache);
    let stats = service.stats();
    assert_eq!(stats.demand_timeouts, 0);
    let metrics = service.metrics();
    let lane_wait = metrics
        .histogram("lane_demand_wait_nanos")
        .expect("the demand-lane wait histogram is always registered");
    assert!(lane_wait.count() >= 2, "both demand tasks must record a lane wait");
}

/// Cancelled prefetch tasks never publish: the single worker is pinned to a
/// backlog of higher-priority demand solves, so prefetch jobs scheduled
/// behind them are still queued when `cancel_prefetch` runs — all of them
/// are cancelled, none ever solves, and the cache gains no entries.
#[test]
fn cancelled_prefetch_tasks_never_publish() {
    for kind in [SchedulerKind::ThreadPerWorker, SchedulerKind::WorkStealing] {
        let clock = Arc::new(ManualClock::new());
        let service = start(kind, &clock, None);
        let mix = query_mix(12, 99);

        // Pin the lone worker: three cold demand solves it must fully
        // drain (strict lane priority) before it could reach any prefetch.
        let replies: Vec<_> = mix[..3].iter().map(|q| service.submit(q.clone())).collect();

        let scheduled = service.schedule_prefetch(
            mix[3..9]
                .iter()
                .map(|q| steady_service::PrefetchJob { query: q.clone(), predicted_exit: false }),
        );
        assert_eq!(scheduled, 6, "{kind:?}: every prefetch job must queue");
        let cancelled = service.cancel_prefetch();
        assert_eq!(cancelled, 6, "{kind:?}: all queued prefetch jobs must cancel");

        for reply in replies {
            reply.recv().expect("demand reply").expect("{kind:?}: demand query failed");
        }
        assert!(service.await_prefetch_idle(Duration::from_secs(10)));

        let stats = service.stats();
        assert_eq!(stats.prefetch_cancelled, 6, "{kind:?}: cancel count must stick");
        assert_eq!(stats.prefetched, 0, "{kind:?}: a cancelled prefetch ran anyway");
        assert_eq!(
            stats.cached_entries, 3,
            "{kind:?}: a cancelled prefetch published to the cache"
        );
    }
}
