//! Property tests for warm-started solves.
//!
//! The warm-start contract: seeding the simplex with the solved basis of a
//! *structurally identical* problem must never change the answer — the
//! throughput is bit-identical to a cold solve under arbitrary edge-cost
//! perturbations (an unusable basis silently falls back) — and on the
//! unperturbed problem the warm solve spends no more pivots than the cold
//! one (the installed basis is already optimal).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use steady_core::problem::solve_steady_warm;
use steady_core::scatter::ScatterProblem;
use steady_platform::generators::{random_connected, RandomConfig};
use steady_platform::{NodeId, Platform};
use steady_rational::rat;

/// A random connected 6-node platform, deterministic in `seed`.
fn platform_for(seed: u64) -> Platform {
    let config = RandomConfig { nodes: 6, ..RandomConfig::default() };
    random_connected(&config, &mut StdRng::seed_from_u64(seed))
}

/// Rebuilds `platform` with every edge cost scaled by a random positive
/// rational, deterministic in `seed`.
fn perturbed(platform: &Platform, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Platform::new();
    for id in platform.node_ids() {
        let node = platform.node(id);
        out.add_node(node.name.clone(), node.speed.clone());
    }
    for id in platform.edge_ids() {
        let e = platform.edge(id);
        let scale = rat(rng.gen_range(1i64..=5), rng.gen_range(1i64..=5));
        out.add_edge(e.from, e.to, &e.cost * &scale);
    }
    out
}

fn scatter_on(platform: Platform) -> ScatterProblem {
    ScatterProblem::new(platform, NodeId(0), vec![NodeId(1), NodeId(2)]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn warm_start_is_exact_and_no_slower_on_the_same_platform(
        seed in 0u64..10_000,
        drift_seed in 0u64..10_000,
    ) {
        let platform = platform_for(seed);
        let problem = scatter_on(platform.clone());
        let (cold, cold_report) = solve_steady_warm(&problem, None).expect("cold solve");
        let basis = cold_report.basis.clone().expect("cold solve yields a basis");

        // Unperturbed: the optimal basis re-installs, so the warm solve may
        // not spend more pivots than the cold one did.
        let (rewarm, rewarm_report) = solve_steady_warm(&problem, Some(&basis)).expect("re-solve");
        prop_assert_eq!(rewarm.throughput(), cold.throughput());
        prop_assert!(
            rewarm_report.iterations <= cold_report.iterations,
            "warm {} pivots > cold {}",
            rewarm_report.iterations,
            cold_report.iterations
        );

        // Perturbed edge costs: warm-started and cold solves must agree on
        // the exact rational throughput, whether or not the seed installs.
        let drifted = scatter_on(perturbed(&platform, drift_seed));
        let (drift_cold, _) = solve_steady_warm(&drifted, None).expect("drift cold solve");
        let (drift_warm, _) = solve_steady_warm(&drifted, Some(&basis)).expect("drift warm solve");
        prop_assert_eq!(drift_warm.throughput(), drift_cold.throughput());
    }
}
