//! Scheduler parity: the work-stealing executor must be answer-identical
//! to the thread-per-worker pool.
//!
//! The scheduler seam moves *when and where* a task runs, never *what it
//! computes*: both pools drive the same engine hooks over the same exact
//! rational arithmetic, so every served value must be `Ratio`-equal across
//! schedulers — cache hits, warm solves and cold solves alike.

use steady_service::{query_mix, run_load, LoadConfig, SchedulerKind, Service, ServiceConfig};

/// Replays the full loadgen query mix (every family, with repeats so the
/// cache/hit path is exercised) through a service on `kind` and returns
/// every served throughput, in replay order.
fn served_values(kind: SchedulerKind) -> Vec<steady_rational::Ratio> {
    let service =
        Service::start(ServiceConfig { workers: 3, scheduler: kind, ..ServiceConfig::default() });
    let mix = query_mix(16, 0xA11CE);
    // Two passes: the first solves everything cold, the second re-serves
    // the same queries from the cache — both paths must agree across
    // schedulers.
    let mut values = Vec::new();
    for pass in 0..2 {
        for query in &mix {
            let served = service
                .query(query.clone())
                .unwrap_or_else(|e| panic!("pass {pass}: query failed under {kind:?}: {e:?}"));
            values.push(served.answer.throughput.clone());
        }
    }
    values
}

/// Every served value is `Ratio`-equal between the two schedulers.
#[test]
fn schedulers_agree_on_every_served_value() {
    let tpw = served_values(SchedulerKind::ThreadPerWorker);
    let ws = served_values(SchedulerKind::WorkStealing);
    assert_eq!(tpw.len(), ws.len());
    for (i, (a, b)) in tpw.iter().zip(ws.iter()).enumerate() {
        assert_eq!(a, b, "served value {i} differs between schedulers: {a} vs {b}");
    }
}

/// The concurrent loadgen replay runs clean on the work-stealing executor:
/// no errors, every query accounted, and the scheduler's own counters stay
/// coherent (no demand task ever times out — no deadline is configured).
#[test]
fn work_stealing_survives_the_concurrent_loadgen_replay() {
    let service = Service::start(ServiceConfig {
        workers: 4,
        scheduler: SchedulerKind::WorkStealing,
        ..ServiceConfig::default()
    });
    let config = LoadConfig { queries: 400, clients: 4, distinct: 24, seed: 42 };
    let report = run_load(&service, &config).expect("loadgen replay failed");
    assert_eq!(report.queries, 400);
    assert_eq!(report.stats.errors, 0, "the replay produced errors");
    assert_eq!(report.stats.demand_timeouts, 0, "no deadline was configured");
    assert_eq!(service.scheduler_kind(), SchedulerKind::WorkStealing);
}
